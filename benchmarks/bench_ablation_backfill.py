"""Ablation — site scheduling discipline: FIFO vs backfill.

The paper assumes plain space-shared site schedulers; Grid3-era sites
increasingly ran EASY-style backfill.  This bench reruns the canonical
GT3 10-DP configuration (the high-throughput regime where site queues
actually form) with both disciplines.

Expected shape: backfill cuts queue time (small jobs no longer wait
behind blocked wide jobs) and lifts utilization slightly; brokering
metrics (throughput/response) are broker-bound and barely move.
"""

from benchmarks.conftest import DURATION_S, bench_once
from repro.experiments import canonical_gt3, run_experiment
from repro.metrics.report import format_table


def test_ablation_backfill(benchmark):
    def sweep():
        fifo = run_experiment(canonical_gt3(10, duration_s=DURATION_S,
                                            name="fifo"))
        bf = run_experiment(canonical_gt3(10, duration_s=DURATION_S,
                                          backfill=True, name="backfill"))
        return fifo, bf

    fifo, bf = bench_once(benchmark, sweep)

    rows = []
    for label, r in (("FIFO", fifo), ("backfill", bf)):
        rows.append([label,
                     round(r.qtime("all"), 1),
                     round(100 * r.utilization("all"), 1),
                     round(100 * r.accuracy("handled"), 1),
                     round(r.diperf().throughput_stats().peak, 2)])
    print("\n" + format_table(
        ["Scheduler", "QTime (s)", "Util %", "Accuracy %", "Peak Thr"],
        rows, title="Site scheduling discipline (GT3, 10 DPs)",
        col_width=13))

    # Backfill cuts queueing delay materially (head-of-line blocking is
    # only part of the queueing — the herded top sites are simply full)...
    assert bf.qtime("all") < 0.85 * fifo.qtime("all")
    # ...without changing broker-side throughput.
    t_fifo = fifo.diperf().throughput_stats().peak
    t_bf = bf.diperf().throughput_stats().peak
    assert abs(t_bf - t_fifo) / t_fifo < 0.10
