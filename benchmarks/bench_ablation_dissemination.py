"""Ablation — the three information-dissemination strategies (§2.5).

The paper describes three approaches: exchange USLAs + usage, exchange
usage only (the one it evaluates), and no exchange at all.  This bench
runs the same 3-DP deployment under each strategy.

Expected shape: no-exchange degrades accuracy relative to usage-only
(peer placements stay invisible until a monitor sweep); usage+USLA
matches usage-only on these workloads (no USLA churn) while moving
strictly more bytes over the overlay.
"""

from benchmarks.conftest import DURATION_S, bench_once
from repro.core import DisseminationStrategy
from repro.experiments import canonical_gt3, run_experiment
from repro.metrics.report import format_table

STRATEGIES = (DisseminationStrategy.USAGE_AND_USLA,
              DisseminationStrategy.USAGE_ONLY,
              DisseminationStrategy.NONE)


def test_ablation_dissemination_strategies(benchmark):
    def sweep():
        out = {}
        for strategy in STRATEGIES:
            cfg = canonical_gt3(3, duration_s=DURATION_S, strategy=strategy,
                                name=f"gt3-3dp-{strategy.value}")
            out[strategy] = run_experiment(cfg)
        return out

    results = bench_once(benchmark, sweep)

    rows = []
    for strategy in STRATEGIES:
        r = results[strategy]
        sync_kb = sum(dp.sync.records_sent for dp
                      in r.deployment.decision_points.values())
        rows.append([strategy.value,
                     round(100 * r.accuracy("handled"), 1),
                     round(r.qtime("all"), 1),
                     round(100 * r.utilization("all"), 1),
                     sync_kb])
    print("\n" + format_table(
        ["Strategy", "Accuracy %", "QTime (s)", "Util %", "Records Sent"],
        rows, title="Dissemination-strategy ablation (GT3, 3 DPs)",
        col_width=15))

    acc = {s: results[s].accuracy("handled") for s in STRATEGIES}
    assert acc[DisseminationStrategy.USAGE_ONLY] >= \
        acc[DisseminationStrategy.NONE]
    # USLA exchange adds traffic, not accuracy, on this workload.
    assert abs(acc[DisseminationStrategy.USAGE_AND_USLA]
               - acc[DisseminationStrategy.USAGE_ONLY]) < 0.05
    none_sent = sum(dp.sync.records_sent for dp in
                    results[DisseminationStrategy.NONE]
                    .deployment.decision_points.values())
    assert none_sent == 0
