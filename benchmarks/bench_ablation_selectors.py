"""Ablation — site-selector task-assignment policies (§3.2).

GRUBER's site selectors "can implement various task assignment
policies, such as round robin, least used, or least recently used";
the experiments use least-used.  This bench compares all four policies
on the same 3-DP deployment.

Expected shape: least-used places jobs most accurately (it targets
free capacity); round-robin and LRU cycle blindly through sites, so
more of their placements queue; random is the floor.
"""

from benchmarks.conftest import DURATION_S, bench_once
from repro.experiments import canonical_gt3, run_experiment
from repro.metrics.report import format_table

SELECTORS = ("least_used", "round_robin", "lru", "random")


def test_ablation_selector_policies(benchmark):
    def sweep():
        out = {}
        for name in SELECTORS:
            cfg = canonical_gt3(3, duration_s=DURATION_S, selector=name,
                                name=f"gt3-3dp-{name}")
            out[name] = run_experiment(cfg)
        return out

    results = bench_once(benchmark, sweep)

    rows = [[name,
             round(100 * results[name].accuracy("handled"), 1),
             round(results[name].qtime("handled"), 1),
             round(100 * results[name].utilization("all"), 1)]
            for name in SELECTORS]
    print("\n" + format_table(
        ["Selector", "Accuracy %", "QTime (s)", "Util %"], rows,
        title="Site-selector ablation (GT3, 3 DPs)", col_width=14))

    acc = {n: results[n].accuracy("handled") for n in SELECTORS}
    assert acc["least_used"] >= max(acc["round_robin"], acc["lru"],
                                    acc["random"]) - 0.02
    qt = {n: results[n].qtime("handled") for n in SELECTORS}
    assert qt["least_used"] <= qt["random"] + 1.0
