"""Ablation — S-PEP site-level enforcement (§3.1, scoped out of the
paper's experiments, implemented here).

The paper's runs "assumed the decision points have total control over
scheduling decisions" with no site-level enforcement.  This bench adds
S-PEPs at every site, capping one greedy VO's share of each site, and
compares delivered shares with and without enforcement under an
identical workload in which that VO submits half of all jobs.

Expected shape: without S-PEPs the greedy VO takes its offered share
(~62% of delivered CPU time).  The cap must sit *below* the VO's
per-site demand to bind (the grid runs at ~20% utilization, so a 30%
cap would never trigger); at 8% per site the S-PEPs hold jobs
continuously and press the delivered share down.
"""

from benchmarks.conftest import DURATION_S, bench_once
from repro.experiments import canonical_gt3, run_experiment
from repro.grid import SitePolicyEnforcementPoint
from repro.metrics.report import format_table
from repro.usla import PolicyEngine, parse_policy

GREEDY_VO = "vo0"
CAP_PCT = 8.0


def _skewed_config(name):
    cfg = canonical_gt3(3, duration_s=DURATION_S, n_vos=4, name=name)
    return cfg


def _skew_workload(result_clients):
    """Rewrite half of each client's jobs to the greedy VO (pre-run)."""
    for client in result_clients:
        wl = client.workload
        for i in range(0, len(wl.vo_names), 2):
            wl.vo_names[i] = GREEDY_VO
            wl.group_names[i] = f"{GREEDY_VO}-g0"
            wl.user_names[i] = f"{GREEDY_VO}-g0-u0"


def _delivered_shares(result):
    totals = {}
    for site in result.grid.sites.values():
        for vo, cpu_s in site.vo_cpu_seconds.items():
            totals[vo] = totals.get(vo, 0.0) + cpu_s
    total = sum(totals.values()) or 1.0
    return {vo: v / total for vo, v in totals.items()}


def _hook_factory(state, enforce):
    def hook(sim, deployment, grid, **_):
        _skew_workload(deployment.clients)
        if enforce:
            rules = "\n".join(f"{s}:{GREEDY_VO}={CAP_PCT:g}%+"
                              for s in grid.site_names)
            policy = PolicyEngine(parse_policy(rules))
            state["speps"] = [SitePolicyEnforcementPoint(site, policy)
                              for site in grid.sites.values()]
    return hook


def test_ablation_spep_enforcement(benchmark):
    def sweep():
        state = {}
        off = run_experiment(_skewed_config("spep-off"),
                             deployment_hook=_hook_factory({}, False))
        on = run_experiment(_skewed_config("spep-on"),
                            deployment_hook=_hook_factory(state, True))
        return off, on, state

    off, on, state = bench_once(benchmark, sweep)

    shares_off = _delivered_shares(off)
    shares_on = _delivered_shares(on)
    holds = sum(s.holds for s in state["speps"])
    rows = [["S-PEPs off", round(100 * shares_off.get(GREEDY_VO, 0), 1), 0],
            ["S-PEPs on", round(100 * shares_on.get(GREEDY_VO, 0), 1), holds]]
    print("\n" + format_table(
        [f"Config", f"{GREEDY_VO} share %", "Policy holds"], rows,
        title=f"S-PEP enforcement ({GREEDY_VO} capped at {CAP_PCT:g}% "
              "per site)", col_width=16))

    # Without enforcement the greedy VO takes well over its cap.
    assert shares_off.get(GREEDY_VO, 0) > 0.40
    # With S-PEPs its delivered share is pressed down and holds occur.
    assert shares_on.get(GREEDY_VO, 0) < shares_off[GREEDY_VO] - 0.05
    assert holds > 0
