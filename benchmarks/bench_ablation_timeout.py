"""Ablation — the client timeout (§4.3's graceful-degradation knob).

"Each client was configured to apply a [15] s timeout to the requests
that it dispatched ... If this timeout expires, the client's site
selector then selects a site at random" — so site selection degrades
gracefully when a decision point saturates.

Expected shape, on a saturated single decision point: a short timeout
turns most placements into random ones (low handled fraction); a long
timeout keeps placements brokered but delays every job behind the slow
queries.  Total request flow is pinned by the brokering channel either
way — the timeout only decides *how* the job is placed while the
channel waits.
"""

from benchmarks.conftest import DURATION_S, bench_once
from repro.experiments import canonical_gt3, run_experiment
from repro.metrics.report import format_table

TIMEOUTS_S = (5.0, 15.0, 60.0, 240.0)


def test_ablation_client_timeout(benchmark):
    def sweep():
        out = {}
        for timeout in TIMEOUTS_S:
            cfg = canonical_gt3(1, duration_s=DURATION_S, timeout_s=timeout,
                                name=f"gt3-1dp-to{timeout:g}")
            out[timeout] = run_experiment(cfg)
        return out

    results = bench_once(benchmark, sweep)

    rows = []
    for timeout in TIMEOUTS_S:
        r = results[timeout]
        handled_frac = r.n_requests("handled") / max(r.n_jobs, 1)
        rows.append([f"{timeout:g} s",
                     round(100 * handled_frac, 1),
                     r.n_jobs,
                     round(100 * r.accuracy("all"), 1),
                     round(r.qtime("all"), 1)])
    print("\n" + format_table(
        ["Timeout", "Handled %", "Requests", "Accuracy %", "QTime (s)"],
        rows, title="Client-timeout ablation (GT3, 1 DP, saturated)",
        col_width=13))

    frac = {t: results[t].n_requests("handled") / max(results[t].n_jobs, 1)
            for t in TIMEOUTS_S}
    # Longer timeouts mean more requests wait for the broker's answer.
    assert frac[5.0] <= frac[15.0] <= frac[60.0] <= frac[240.0] + 0.01
    assert frac[240.0] > frac[5.0] + 0.2
    # Request flow is channel-limited, not timeout-limited — but timed-out
    # operations skip the report_dispatch phase, so aggressive timeouts
    # free a sliver of container capacity (~query/(query+report), +19%
    # on the GT3 profile) and push slightly more (randomly placed) jobs.
    n = [results[t].n_jobs for t in TIMEOUTS_S]
    assert max(n) <= 1.35 * min(n)
    assert results[5.0].n_jobs >= results[240.0].n_jobs
