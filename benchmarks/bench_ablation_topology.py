"""Ablation — decision-point overlay topologies.

The paper connects decision points "in a mesh, a simple configuration
that is adopted to simplify analysis and understanding".  This bench
compares mesh, ring, and star overlays at 6 decision points.

Expected shape: the mesh floods state in one exchange; ring/star need
multiple hops, so peer placements stay stale longer and accuracy drops
(or at best matches) — while throughput is topology-independent (the
overlay only carries sync traffic, not queries).
"""

from benchmarks.conftest import DURATION_S, bench_once
from repro.experiments import canonical_gt3, run_experiment
from repro.metrics.report import format_table

TOPOLOGIES = ("mesh", "ring", "star")


def test_ablation_overlay_topologies(benchmark):
    def sweep():
        out = {}
        for kind in TOPOLOGIES:
            cfg = canonical_gt3(6, duration_s=DURATION_S, topology=kind,
                                name=f"gt3-6dp-{kind}")
            out[kind] = run_experiment(cfg)
        return out

    results = bench_once(benchmark, sweep)

    rows = []
    for kind in TOPOLOGIES:
        r = results[kind]
        rows.append([kind,
                     round(100 * r.accuracy("handled"), 1),
                     round(r.diperf().throughput_stats().peak, 2),
                     round(r.qtime("all"), 1)])
    print("\n" + format_table(
        ["Topology", "Accuracy %", "Peak Thr (q/s)", "QTime (s)"], rows,
        title="Overlay-topology ablation (GT3, 6 DPs)", col_width=15))

    thr = {k: results[k].diperf().throughput_stats().peak for k in TOPOLOGIES}
    # Query throughput does not depend on the sync overlay.
    assert max(thr.values()) / min(thr.values()) < 1.15
    acc = {k: results[k].accuracy("handled") for k in TOPOLOGIES}
    # Mesh accuracy is at least on par with the multi-hop overlays.
    assert acc["mesh"] >= min(acc["ring"], acc["star"]) - 0.02
