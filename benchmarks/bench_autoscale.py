"""Autoscale bench — closed-loop convergence to the paper's Table 3.

GRUB-SIM answered "how many decision points does a 10x/100x grid
need?" offline by replaying traces against calibrated performance
models; ``repro.control`` answers it *online*.  This bench runs the
closed loop against live load and pins the same numbers:

* **10x-OSG** (the canonical GT3 environment: 120 submission hosts,
  the paper's 10x-Grid3 question) on the diurnal profile, starting
  from a single decision point: the planner must converge to the
  paper's 4-5 decision points;
* **100x** (``scale_config(multiplier=10)``: 1200 hosts) must converge
  to strictly more than the 10x cell;
* **determinism** — two same-seed autoscaled runs must produce
  bit-identical event journals (control actions are journaled as
  ``ctl.scale`` entries), with the strict invariant checker riding
  both runs.

Each cell reports response-time stats (the DiPerF view) and migration
cost (clients moved, moves deferred by the ceil(K/N) bound, total
client rebinds) so elasticity is priced, not just counted.

Environment knobs:

* ``REPRO_AUTOSCALE_DURATION`` — simulated seconds for the 10x cell
  (default 3600, the paper's experiment length; the 100x cell runs
  half that).
"""

import os

from benchmarks.conftest import bench_once
from repro.check.digest import EventJournal, install_probes
from repro.control import AutoscaleConfig
from repro.experiments import run_experiment
from repro.experiments.configs import canonical_gt3, scale_config
from repro.metrics.report import format_table

DURATION_S = float(os.environ.get("REPRO_AUTOSCALE_DURATION", "3600"))

#: The paper's GRUB-SIM answer for a 10x-Grid3/OSG grid (Table 3).
TARGET_10X = (4, 5)


def _autoscale_config(max_dps: int = 64) -> AutoscaleConfig:
    return AutoscaleConfig(policy="model", placement="consistent_hash",
                           interval_s=60.0, cooldown_s=120.0,
                           max_step_up=8, max_dps=max_dps)


def run_cell(name: str, config) -> dict:
    """One autoscaled run, distilled to the report row."""
    result = run_experiment(config)
    stats = result.control_stats()
    d = result.diperf()
    rt = d.response_stats()
    m = result.sim.metrics
    return {
        "cell": name,
        "clients": config.n_clients,
        "duration_s": config.duration_s,
        "initial_dps": config.decision_points,
        "converged_dps": stats["converged_dps"],
        "final_dps": stats["final_dps"],
        "scale_ups": stats["scale_ups"],
        "scale_downs": stats["scale_downs"],
        "rebalances": stats["rebalances"],
        "ticks": stats["ticks"],
        "response_median_s": round(rt.median, 3),
        "response_avg_s": round(rt.average, 3),
        "response_peak_s": round(rt.peak, 3),
        "queries_answered": d.n_answered,
        "clients_moved": stats["clients_moved"],
        "moves_deferred": stats["moves_deferred"],
        "client_rebinds": m.counter_value("client.rebinds"),
        "check_violations": m.counter_value("check.violations"),
        "unhandled_failures": m.counter_value("kernel.unhandled_failures"),
    }


def run_10x(duration_s: float = DURATION_S) -> dict:
    config = canonical_gt3(1).with_(
        duration_s=duration_s, workload_profile="diurnal",
        autoscale=_autoscale_config(),
        check_enabled=True, check_strict=True,
        name="autoscale-10x-osg")
    return run_cell("10x-osg", config)


def run_100x(duration_s: float = DURATION_S / 2) -> dict:
    config = scale_config(multiplier=10, decision_points=1,
                          duration_s=duration_s).with_(
        workload_profile="diurnal",
        autoscale=_autoscale_config(),
        check_enabled=True, check_strict=True,
        name="autoscale-100x")
    return run_cell("100x", config)


def run_determinism(duration_s: float = 900.0) -> dict:
    """Two same-seed autoscaled journaled runs: digests must match."""
    digests = []
    for _ in range(2):
        journal = EventJournal()

        def hook(sim=None, deployment=None, network=None, grid=None,
                 rng=None, journal=journal):
            install_probes(journal, deployment=deployment,
                           sites=grid.sites.values(), sim=sim)

        config = canonical_gt3(1).with_(
            duration_s=duration_s, workload_profile="diurnal",
            autoscale=_autoscale_config(),
            check_enabled=True, check_strict=True,
            name="autoscale-determinism")
        run_experiment(config, deployment_hook=hook)
        ctl_entries = sum(1 for e in journal.entries
                          if e.kind == "ctl.scale")
        digests.append({"events": len(journal), "digest": journal.digest,
                        "ctl_entries": ctl_entries})
    return {
        "duration_s": duration_s,
        "run_a": digests[0],
        "run_b": digests[1],
        "identical": digests[0] == digests[1],
        "ctl_entries_journaled": digests[0]["ctl_entries"],
    }


def check_invariants(report: dict) -> list[str]:
    """Violated autoscale claims, human-readable (empty = pass)."""
    problems = []
    c10, c100 = report["cells"]["10x-osg"], report["cells"]["100x"]
    lo, hi = TARGET_10X
    if not (lo <= c10["converged_dps"] <= hi):
        problems.append(
            f"10x-osg converged to {c10['converged_dps']} decision points, "
            f"outside the paper's [{lo}, {hi}]")
    if c100["converged_dps"] <= c10["converged_dps"]:
        problems.append(
            f"100x converged to {c100['converged_dps']} <= 10x's "
            f"{c10['converged_dps']}")
    for cell in (c10, c100):
        if cell["check_violations"]:
            problems.append(f"{cell['cell']}: {cell['check_violations']} "
                            f"invariant violations")
        if cell["unhandled_failures"]:
            problems.append(f"{cell['cell']}: kernel leaked "
                            f"{cell['unhandled_failures']} failures")
        if cell["scale_ups"] < 1:
            problems.append(f"{cell['cell']}: the planner never scaled up")
    det = report["determinism"]
    if not det["identical"]:
        problems.append(
            f"same-seed journals differ: {det['run_a']} vs {det['run_b']}")
    if det["ctl_entries_journaled"] < 1:
        problems.append("no ctl.scale entries reached the event journal")
    return problems


def run_bench(duration_s: float = DURATION_S,
              determinism_duration_s: float = 900.0) -> dict:
    cells = {}
    for row in (run_10x(duration_s), run_100x(duration_s / 2)):
        cells[row["cell"]] = row
    report = {
        "target_10x_dps": list(TARGET_10X),
        "cells": cells,
        "determinism": run_determinism(determinism_duration_s),
    }
    report["problems"] = check_invariants(report)
    report["pass_autoscale"] = not report["problems"]
    return report


def test_autoscale_convergence(benchmark):
    report = bench_once(benchmark, run_bench)

    rows = [[c["cell"], c["clients"], c["initial_dps"], c["converged_dps"],
             c["response_median_s"], c["clients_moved"],
             c["moves_deferred"], c["client_rebinds"]]
            for c in report["cells"].values()]
    print("\n" + format_table(
        ["Cell", "Clients", "DPs(t0)", "Converged", "RespMed(s)", "Moved",
         "Deferred", "Rebinds"],
        rows, title=f"Autoscale convergence vs paper Table 3 "
                    f"(target {TARGET_10X[0]}-{TARGET_10X[1]} at 10x)",
        col_width=12))
    assert not report["problems"], "\n".join(report["problems"])
