"""Chaos matrix bench — scenario x policy sweep over repro.faults.

Every named fault scenario (DP crash/restart, 2-way partition, flaky
and slow brokers, duplication/reordering, asymmetric cuts) runs twice
on the same seed and schedule: once with the paper's timeout-only
client (§4.3: one attempt, then random placement) and once with the
full resilience stack (retry + backoff, per-DP circuit breakers,
probe-driven failover, bounded-queue shedding).

Invariants this bench pins:

* **no kernel leaks** — ``kernel.unhandled_failures`` and
  ``kernel.periodic_errors`` are zero in every cell: faults must fail
  *jobs*, never the simulator;
* **graceful degradation** — brokered throughput never collapses to
  zero, in any scenario, under either policy;
* **the policy stack earns its keep** — on the recoverable scenarios
  (crash/restart, partition, flaky broker) the resilient client ends
  with strictly more brokered placements than the baseline.

``run_matrix`` is also the substrate for ``run_all.py``'s
``BENCH_faults.json`` regression baseline.

Environment knobs:

* ``REPRO_CHAOS_DURATION`` — simulated seconds per cell (default 600,
  the chaos smoke configuration's native length).
"""

import os

from benchmarks.conftest import bench_once
from repro.experiments import run_experiment
from repro.experiments.configs import chaos_smoke_config
from repro.faults.scenarios import scenario_names
from repro.metrics.report import format_table

CHAOS_DURATION_S = float(os.environ.get("REPRO_CHAOS_DURATION", "600"))

#: Scenarios where the fault is recoverable by retry/failover, so the
#: resilient stack must strictly beat the timeout-only baseline.
RECOVERABLE = ("dp_crash_restart", "partition2", "flaky_dp")

#: Policy-action tallies worth pinning per cell.
_POLICY_KEYS = ("retries", "breaker_fastfail", "failovers", "rebinds",
                "shed", "dp_crashes", "dp_restarts", "resync_records",
                "faults_injected")


def run_cell(scenario: str, resilient: bool,
             duration_s: float = CHAOS_DURATION_S,
             autoscale: bool = False) -> dict:
    """One (scenario, policy) cell: run it and distill the numbers."""
    config = chaos_smoke_config(
        scenario=scenario, resilient=resilient, duration_s=duration_s)
    if autoscale:
        # Elasticity under fire: the closed-loop controller rides the
        # crash/restart scenario on a breathing (diurnal) workload, so
        # planner-driven membership changes interleave with
        # chaos-driven ones on the same topology stream.
        from repro.control import AutoscaleConfig
        config = config.with_(
            autoscale=AutoscaleConfig(interval_s=30.0, cooldown_s=60.0,
                                      max_dps=4),
            workload_profile="diurnal",
            name=config.name + "-autoscale")
    result = run_experiment(config)
    fb = result.client_fallbacks()
    stats = result.resilience_stats()
    m = result.sim.metrics
    cell = {
        "requests": result.n_jobs,
        "handled": fb["handled"],
        "timeout": fb["timeout"],
        "qtime_s": round(result.qtime("all"), 2),
        "util_pct": round(100 * result.utilization("all"), 2),
        **{k: stats[k] for k in _POLICY_KEYS},
        "unhandled_failures": m.counter_value("kernel.unhandled_failures"),
        "periodic_errors": m.counter_value("kernel.periodic_errors"),
    }
    cs = result.control_stats()
    if cs is not None:
        cell["autoscale_actions"] = cs["actions"]
        cell["autoscale_final_dps"] = cs["final_dps"]
        cell["autoscale_moved"] = cs["clients_moved"]
    return cell


#: Scenario that additionally runs a third, autoscaled cell: elastic
#: control must coexist with chaos-driven membership churn.
AUTOSCALED_SCENARIO = "dp_crash_restart"


def run_matrix(scenarios=None, duration_s: float = CHAOS_DURATION_S) -> dict:
    """The full sweep: ``{scenario: {"baseline": ..., "resilient": ...}}``
    plus an ``autoscale`` cell on the crash/restart scenario."""
    scenarios = list(scenarios) if scenarios else scenario_names()
    matrix = {}
    for s in scenarios:
        cells = {"baseline": run_cell(s, resilient=False,
                                      duration_s=duration_s),
                 "resilient": run_cell(s, resilient=True,
                                       duration_s=duration_s)}
        if s == AUTOSCALED_SCENARIO:
            cells["autoscale"] = run_cell(s, resilient=True,
                                          duration_s=duration_s,
                                          autoscale=True)
        matrix[s] = cells
    return matrix


def check_invariants(matrix: dict) -> list[str]:
    """Violated chaos invariants, as human-readable strings (empty = pass)."""
    problems = []
    for scenario, cells in matrix.items():
        for policy, cell in cells.items():
            where = f"{scenario}/{policy}"
            if cell["unhandled_failures"] or cell["periodic_errors"]:
                problems.append(f"{where}: kernel leaks "
                                f"({cell['unhandled_failures']} unhandled, "
                                f"{cell['periodic_errors']} periodic)")
            if cell["handled"] == 0:
                problems.append(f"{where}: brokered throughput collapsed")
            if cell["faults_injected"] == 0:
                problems.append(f"{where}: schedule injected nothing")
        if scenario in RECOVERABLE and \
                cells["resilient"]["handled"] <= cells["baseline"]["handled"]:
            problems.append(
                f"{scenario}: resilient handled "
                f"{cells['resilient']['handled']} <= baseline "
                f"{cells['baseline']['handled']}")
    return problems


def test_chaos_matrix(benchmark):
    matrix = bench_once(benchmark, run_matrix)

    rows = []
    for scenario, cells in matrix.items():
        base, res = cells["baseline"], cells["resilient"]
        rows.append([scenario, base["handled"], res["handled"],
                     res["handled"] - base["handled"], res["retries"],
                     res["failovers"], res["shed"],
                     res["faults_injected"]])
    print("\n" + format_table(
        ["Scenario", "Base", "Resilient", "Gain", "Retries", "Failovers",
         "Shed", "Faults"],
        rows, title=f"Chaos matrix: brokered placements, baseline vs "
                    f"resilient ({CHAOS_DURATION_S:.0f} s)",
        col_width=14))

    problems = check_invariants(matrix)
    assert not problems, "\n".join(problems)
