"""§4.1's architecture-analysis question, answered as a bench.

"In particular, we wanted to determine whether CPU resources could be
allocated in a fair manner across multiple VOs, and across multiple
groups within a VO, when using DI-GRUBER configurations that feature
multiple loosely coupled GRUBER instances rather than a single
centralized instance."

Setup: an oversubscribed grid governed by per-site USLAs — three VOs at
50% / 30%+ / 20%+, and within vo0 two groups capped at 30%+ / 20%+ of
each site (i.e. a 60/40 split of vo0's half) — enforced by S-PEPs, with USLA-aware decision points recommending
within shares.  The same demand-heavy workload runs against one
centralized decision point and against three loosely synchronized ones.

Expected shape: delivered CPU-time shares track the policy in *both*
configurations — distributing the brokering does not break fairness
(the paper's affirmative finding).
"""

from benchmarks.conftest import DURATION_S, bench_once
from repro.experiments import ExperimentConfig, run_experiment
from repro.grid import SitePolicyEnforcementPoint
from repro.metrics.report import format_table
from repro.net import GT4C_PROFILE
from repro.usla import (
    Agreement,
    AgreementContext,
    PolicyEngine,
    ServiceTerm,
    parse_policy,
)
from repro.workloads import JobModel

VO_SHARES = {"vo0": "50%", "vo1": "30%+", "vo2": "20%+"}
GROUP_SHARES = {"vo0-g0": "30%+", "vo0-g1": "20%+"}


def _policy_text(site):
    lines = [f"{site}:{vo}={share}" for vo, share in VO_SHARES.items()]
    lines += [f"{site}:vo0.{grp}={share}"
              for grp, share in GROUP_SHARES.items()]
    return "\n".join(lines)


def _config(name, dps):
    return ExperimentConfig(
        name=name, profile=GT4C_PROFILE, decision_points=dps,
        n_clients=30, duration_s=DURATION_S,
        n_sites=20, total_cpus=800, n_vos=3, groups_per_vo=2,
        usla_aware=True, sync_interval_s=60.0,
        job_model=JobModel(duration_mean_s=600.0,
                           cpu_choices=(1, 2, 4), cpu_weights=(0.5, 0.3, 0.2)),
    )


def _hook(state):
    def hook(sim, deployment, grid, **_):
        # Publish the grid's USLAs to every decision point...
        rules = parse_policy("\n".join(_policy_text(s)
                                       for s in grid.site_names))
        ag = Agreement("grid-policy", AgreementContext("grid", "everyone"),
                       terms=[ServiceTerm(f"t{i}", r)
                              for i, r in enumerate(rules)])
        deployment.publish_usla(ag)
        # ...and enforce them at the sites with S-PEPs.
        policy = PolicyEngine(rules)
        state["speps"] = [SitePolicyEnforcementPoint(site, policy)
                          for site in grid.sites.values()]
    return hook


def _delivered(result):
    """CPU-seconds by VO (sites) and by vo0 group (client jobs)."""
    by_vo = {}
    for site in result.grid.sites.values():
        for vo, s in site.vo_cpu_seconds.items():
            by_vo[vo] = by_vo.get(vo, 0.0) + s
    by_group = {}
    for client in result.clients:
        for job in client.jobs:
            if job.vo == "vo0" and job.cpu_seconds:
                by_group[job.group] = (by_group.get(job.group, 0.0)
                                       + job.cpu_seconds)
    return by_vo, by_group


def test_fairness_across_vos_and_groups(benchmark):
    def sweep():
        out = {}
        for dps in (1, 3):
            state = {}
            out[dps] = (run_experiment(_config(f"fair-{dps}dp", dps),
                                       deployment_hook=_hook(state)), state)
        return out

    results = bench_once(benchmark, sweep)

    rows = []
    shares = {}
    for dps, (result, state) in sorted(results.items()):
        by_vo, by_group = _delivered(result)
        vo_total = sum(by_vo.values()) or 1.0
        g_total = sum(by_group.values()) or 1.0
        shares[dps] = ({v: s / vo_total for v, s in by_vo.items()},
                       {g: s / g_total for g, s in by_group.items()})
        rows.append([
            dps,
            round(100 * shares[dps][0].get("vo0", 0), 1),
            round(100 * shares[dps][0].get("vo1", 0), 1),
            round(100 * shares[dps][0].get("vo2", 0), 1),
            round(100 * shares[dps][1].get("vo0-g0", 0), 1),
            round(100 * shares[dps][1].get("vo0-g1", 0), 1),
            sum(s.holds for s in state["speps"]),
        ])
    print("\n" + format_table(
        ["DPs", "vo0 %", "vo1 %", "vo2 %", "g0|vo0 %", "g1|vo0 %", "Holds"],
        rows, title="Delivered CPU-time shares under USLAs "
                    "(vo0 50 / vo1 30+ / vo2 20+; g0 30+ / g1 20+ of site)",
        col_width=11))

    for dps in (1, 3):
        vo_shares, group_shares = shares[dps]
        # Capped VOs stay near their upper limits (oversubscribed grid).
        assert vo_shares["vo1"] <= 0.30 + 0.06
        assert vo_shares["vo2"] <= 0.20 + 0.06
        assert vo_shares["vo0"] >= 0.40
        # Group split within vo0 tracks the 60/40 cap ratio.
        ratio = group_shares["vo0-g0"] / max(group_shares["vo0-g1"], 1e-9)
        assert 1.1 < ratio < 2.2  # around 30/20 = 1.5

    # Fairness is preserved when brokering is distributed: shares match
    # the centralized configuration closely.
    for vo in VO_SHARES:
        assert abs(shares[1][0].get(vo, 0) - shares[3][0].get(vo, 0)) < 0.08
