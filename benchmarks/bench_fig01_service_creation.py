"""Fig 1 — GT3 service instance creation under a DiPerF ramp.

Paper shape: throughput rises with the client ramp and plateaus at the
container's capacity; response time grows from ~2 s under light load to
tens of seconds under heavy load.
"""

import numpy as np

from benchmarks.conftest import bench_once
from repro.experiments import run_fig1_service_creation
from repro.net import GT3_PROFILE


def test_fig01_instance_creation(benchmark):
    result = bench_once(
        benchmark,
        lambda: run_fig1_service_creation(n_clients=300, duration_s=1800.0))

    print("\n" + result.summary())
    times, thr = result.throughput_series()
    _, resp = result.response_series()
    print("\nThroughput series (per minute, q/s):")
    print("  " + " ".join(f"{v:5.1f}" for v in thr[::3]))
    print("Response series (per minute, s):")
    print("  " + " ".join(f"{v:5.1f}" for v in resp[::3]))

    # Shape assertions (paper Fig 1).
    cap = GT3_PROFILE.instance_capacity_qps
    assert thr.max() <= cap * 1.3
    assert thr.max() >= cap * 0.7                  # plateau reaches capacity
    light = resp[~np.isnan(resp)][0]
    heavy = np.nanmax(resp)
    assert heavy > 5 * light                       # response grows with load
    assert result.response_stats().minimum < 3.0   # ~2 s when unloaded
