"""Figs 5-7 — GT3 DI-GRUBER scalability: 1, 3, and 10 decision points.

Paper shape: a single decision point plateaus just under ~2 queries/s
with response time climbing steeply; three decision points improve
throughput 2-3x; ten improve it ~5x, with response time roughly
halving at each step.
"""

from benchmarks.conftest import bench_once
from repro.metrics import render_diperf_figure
from repro.metrics.report import format_table


def _print_fig(result, caption):
    d = result.diperf()
    print(f"\n--- {caption} ---")
    print(render_diperf_figure(d))
    print(d.summary())


def test_fig05_07_gt3_scalability(benchmark, gt3_sweep):
    results = bench_once(benchmark, lambda: gt3_sweep)

    peaks = {}
    for k in sorted(results):
        _print_fig(results[k], f"Fig {4 + [1, 3, 10].index(k) + 1}: "
                               f"GT3 DI-GRUBER, {k} decision point(s)")
        peaks[k] = results[k].diperf().throughput_stats().peak

    rows = [[k,
             round(results[k].diperf().response_stats().average, 1),
             round(peaks[k], 2),
             round(peaks[k] / peaks[1], 2)] for k in sorted(results)]
    print("\n" + format_table(
        ["DPs", "Avg Resp (s)", "Peak Thr (q/s)", "Speedup"], rows,
        title="GT3 scalability summary"))

    # Shape assertions (paper: "two to three times" at 3 DPs, "almost
    # five times" at 10; single DP "a little less than 2 q/s").
    assert 1.5 <= peaks[1] <= 3.0
    assert 2.0 <= peaks[3] / peaks[1] <= 3.5
    assert 3.5 <= peaks[10] / peaks[1] <= 6.5
    r = {k: results[k].diperf().response_stats().average for k in results}
    assert r[1] > r[3] > r[10]
