"""Fig 8 — GT3 scheduling accuracy vs state-exchange interval (3 DPs).

Paper shape: "for the workloads considered, a three minute exchange
interval is sufficient to achieve [high] Accuracy"; accuracy declines
as the exchange interval grows.
"""

from benchmarks.conftest import DURATION_S, bench_once
from repro.experiments import canonical_gt3
from repro.experiments.figures import (
    accuracy_vs_interval_table,
    run_accuracy_sweep,
)

INTERVALS_MIN = (1.0, 3.0, 10.0, 30.0)


def test_fig08_gt3_accuracy_vs_sync_interval(benchmark):
    base = canonical_gt3(duration_s=DURATION_S)
    results = bench_once(
        benchmark,
        lambda: run_accuracy_sweep(base, intervals_min=INTERVALS_MIN,
                                   decision_points=3))

    print("\nFig 8 (GT3, 3 decision points):")
    print(accuracy_vs_interval_table(results))

    acc = {m: results[m].accuracy("handled") for m in INTERVALS_MIN}
    # Three-minute sync achieves high accuracy...
    assert acc[3.0] >= 0.93
    # ...and accuracy does not improve as exchanges get rarer.
    assert acc[30.0] <= acc[3.0] + 0.01
    assert acc[30.0] <= acc[1.0]
    # The decline is measurable.
    assert acc[1.0] - acc[30.0] >= 0.01
