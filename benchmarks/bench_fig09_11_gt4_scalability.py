"""Figs 9-11 — GT4 DI-GRUBER scalability: 1, 3, and 10 decision points.

Paper shape: the GT4 prerelease container is slower per request than
GT3 (single-DP plateau just above ~1 query/s); throughput and response
improve ~3x from one to three decision points and ~5x toward ten; in
the three- and ten-DP configurations GT4 handles almost all requests
(unlike GT3 — Table 2 vs Table 1).
"""

from benchmarks.conftest import bench_once
from repro.metrics.report import format_table


def test_fig09_11_gt4_scalability(benchmark, gt4_sweep, gt3_sweep):
    results = bench_once(benchmark, lambda: gt4_sweep)

    peaks = {}
    for k in sorted(results):
        d = results[k].diperf()
        print(f"\n--- Fig {8 + [1, 3, 10].index(k) + 1}: GT4 DI-GRUBER, "
              f"{k} decision point(s) ---")
        from repro.metrics import render_diperf_figure
        print(render_diperf_figure(d))
        print(d.summary())
        peaks[k] = d.throughput_stats().peak

    rows = [[k,
             round(results[k].diperf().response_stats().average, 1),
             round(peaks[k], 2),
             round(peaks[k] / peaks[1], 2)] for k in sorted(results)]
    print("\n" + format_table(
        ["DPs", "Avg Resp (s)", "Peak Thr (q/s)", "Speedup"], rows,
        title="GT4 scalability summary"))

    # Shape assertions.
    assert 0.9 <= peaks[1] <= 2.0                      # just above ~1 q/s
    assert 2.0 <= peaks[3] / peaks[1] <= 3.6           # "factor of three"
    assert 3.0 <= peaks[10] / peaks[1] <= 6.0          # toward "five"
    # GT4 is slower than GT3 at every deployment size.
    for k in (1, 3, 10):
        gt3_peak = gt3_sweep[k].diperf().throughput_stats().peak
        assert peaks[k] < gt3_peak
    r = {k: results[k].diperf().response_stats().average for k in results}
    assert r[1] > r[3] > r[10]
