"""Fig 12 — GT4 scheduling accuracy vs state-exchange interval (3 DPs).

Paper shape: "for a three decision point infrastructure a three to ten
minutes exchange interval is sufficient for achieving almost [full]
Accuracy."
"""

from benchmarks.conftest import DURATION_S, bench_once
from repro.experiments import canonical_gt4
from repro.experiments.figures import (
    accuracy_vs_interval_table,
    run_accuracy_sweep,
)

INTERVALS_MIN = (1.0, 3.0, 10.0, 30.0)


def test_fig12_gt4_accuracy_vs_sync_interval(benchmark):
    base = canonical_gt4(duration_s=DURATION_S)
    results = bench_once(
        benchmark,
        lambda: run_accuracy_sweep(base, intervals_min=INTERVALS_MIN,
                                   decision_points=3))

    print("\nFig 12 (GT4, 3 decision points):")
    print(accuracy_vs_interval_table(results))

    acc = {m: results[m].accuracy("handled") for m in INTERVALS_MIN}
    # Three-to-ten-minute exchanges keep accuracy nearly full.
    assert acc[3.0] >= 0.93
    assert acc[10.0] >= 0.90
    # No improvement from syncing less often.
    assert acc[30.0] <= max(acc[1.0], acc[3.0]) + 0.01
