"""Future-work bench — the paper's §7 performance predictions, tested.

The conclusions make three forward-looking claims:

1. "DI-GRUBER performance can be improved further by porting it to a
   C-based Web services core, such as is supported in GT4."
2. "The performance ... could also be enhanced further simply by
   deploying it in a different environment that would have a tighter
   coupling between the resource broker and the job manager; this
   approach would reduce the complexity of the communication from two
   layers to one layer."
3. "We expect that performance will be significantly better in a LAN
   environment."

All three are implemented (``GT4C_PROFILE``, the one-phase ``broker_job``
protocol, and the LAN deployment mode) and compared here against the
canonical GT3 WAN two-phase baseline at **10 decision points** — the
unsaturated regime, where response time is protocol- and
latency-dominated.  (At 3 DPs the container queue dominates and the
closed-loop equilibrium pins response at clients/capacity, masking any
latency win — itself a finding worth the ablation.)
"""

from benchmarks.conftest import DURATION_S, bench_once
from repro.experiments import canonical_gt3, run_experiment
from repro.metrics.report import format_table
from repro.net import GT4C_PROFILE

VARIANTS = (
    ("baseline (GT3, WAN, 2-phase)", {}),
    ("C WS-core (GT4-C)", {"profile": GT4C_PROFILE}),
    ("one-phase protocol", {"one_phase": True}),
    ("LAN deployment", {"lan": True}),
    ("all three", {"profile": GT4C_PROFILE, "one_phase": True, "lan": True}),
)


def test_futurework_optimizations(benchmark):
    def sweep():
        out = {}
        for label, overrides in VARIANTS:
            cfg = canonical_gt3(10, duration_s=DURATION_S,
                                name=label.split(" ")[0], **overrides)
            out[label] = run_experiment(cfg)
        return out

    results = bench_once(benchmark, sweep)

    base_label = VARIANTS[0][0]
    base = results[base_label].diperf()
    rows = []
    for label, _ in VARIANTS:
        d = results[label].diperf()
        rows.append([label,
                     round(d.throughput_stats().peak, 2),
                     round(d.response_stats().average, 2),
                     d.n_timed_out])
    print("\n" + format_table(
        ["Variant", "Peak Thr (q/s)", "Avg Resp (s)", "Timeouts"], rows,
        title="Future-work optimizations (GT3 baseline, 10 DPs)",
        col_width=16))

    base_resp = base.response_stats().average
    base_thr = base.throughput_stats().peak
    # 1. The C core lifts throughput (its container is ~2x faster).
    c = results["C WS-core (GT4-C)"].diperf()
    assert c.throughput_stats().peak > 1.3 * base_thr
    # 2. One phase cuts response (one RTT + no bulk state on the wire).
    one = results["one-phase protocol"].diperf()
    assert one.response_stats().average < 0.9 * base_resp
    # 3. LAN is significantly better, as the paper expects.
    lan = results["LAN deployment"].diperf()
    assert lan.response_stats().average < 0.8 * base_resp
    # Combined: a ~5x response improvement and zero timeouts.
    best = results["all three"].diperf()
    assert best.response_stats().average < 0.25 * base_resp
    assert best.n_timed_out == 0
