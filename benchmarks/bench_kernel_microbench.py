"""Micro-benchmarks of the simulation substrate itself.

Unlike the paper-artifact benches (deterministic one-shot simulations),
these measure the kernel's raw event throughput with pytest-benchmark's
repeated timing — they are the numbers that bound how large a grid this
reproduction can emulate per wall-clock second.
"""

from repro.sim import RngRegistry, Server, Simulator


def test_event_scheduling_throughput(benchmark):
    """Schedule + dispatch 100k bare callbacks."""

    def run():
        sim = Simulator()
        for i in range(100_000):
            sim.schedule(float(i % 977), lambda: None)
        sim.run()
        return sim.events_executed

    executed = benchmark(run)
    assert executed == 100_000


def test_process_switching_throughput(benchmark):
    """Drive 1k generator processes through 100 yields each."""

    def run():
        sim = Simulator()
        done = []

        def proc():
            for _ in range(100):
                yield 1.0
            done.append(1)

        for _ in range(1_000):
            sim.process(proc())
        sim.run()
        return len(done)

    completed = benchmark(run)
    assert completed == 1_000


def test_server_queue_throughput(benchmark):
    """Push 20k jobs through a capacity-4 server."""

    def run():
        sim = Simulator()
        srv = Server(sim, capacity=4)
        served = []

        def job():
            yield srv.acquire()
            try:
                yield 0.5
            finally:
                srv.release()
            served.append(1)

        for _ in range(20_000):
            sim.process(job())
        sim.run()
        return len(served)

    served = benchmark(run)
    assert served == 20_000


def test_workload_generation_throughput(benchmark):
    """Vectorized generation of one host-hour of jobs."""
    from repro.grid import VORegistry
    from repro.workloads import JobModel, WorkloadGenerator

    vos = VORegistry()
    for v in range(10):
        vos.create(f"vo{v}", n_groups=10, users_per_group=3)

    def run():
        gen = WorkloadGenerator(vos, JobModel(),
                                RngRegistry(0).stream("bench"))
        wl = gen.host_workload("h", duration_s=3600.0, interarrival_s=1.0)
        return len(wl)

    n = benchmark(run)
    assert n == 3600
