"""Tracing-overhead micro-benchmarks: the observability layer's budget.

Three workloads, each run with tracing disabled (the default) and
enabled, measuring kernel event throughput:

* **callbacks** — bare scheduled callbacks; no trace points fire, so
  this pins the cost of the ``if tracer.enabled`` guards themselves
  (the "~0 when disabled" claim);
* **processes** — generator processes with start/finish lifecycle
  events (the kernel's per-process trace points);
* **rpc** — request/response round trips with full per-RPC spans
  (send → handle → respond → complete), the densest emission path;
* **spans** — a whole smoke experiment with causal span tracing
  (``repro.obs.spans``) off vs on at the budgeted operating point
  (head sampling, ``--trace-sample=4``): the realistic cost of
  per-job lifecycle spans, decide-staleness annotation, and context
  propagation, measured as kernel events per wall-clock second;
* **check** — the same smoke experiment with the online invariant
  checker (``run --check``) off vs on: the cost of the periodic
  conservation/accounting checkpoint pass, held to the same <10%
  enabled budget as tracing;
* **telemetry** — the same smoke experiment with the timeline sampler
  (``run --telemetry``) off vs on: one unified
  ``MetricsRegistry.collect()`` pass per 30 simulated seconds, held to
  the same <10% budget.

``measure_all()`` is what ``benchmarks/run_all.py`` calls to produce
``BENCH_kernel.json``; the pytest wrappers below assert *lenient*
bounds (CI boxes are noisy) while the JSON records the actual ratios
against the <10% enabled-overhead budget.
"""

from __future__ import annotations

import time

from repro.net import ConstantLatency, Endpoint, Network
from repro.sim import Simulator


# -- workloads -----------------------------------------------------------------

def run_callbacks(n: int = 100_000, tracing: bool = False) -> float:
    """Schedule + dispatch ``n`` bare callbacks; returns events/sec."""
    sim = Simulator()
    sim.trace.enabled = tracing
    noop = lambda: None  # noqa: E731
    for i in range(n):
        sim.schedule(float(i % 977), noop)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert sim.events_executed == n
    return n / elapsed


def run_processes(n_procs: int = 1_000, yields: int = 100,
                  tracing: bool = False) -> float:
    """Drive generator processes; returns kernel events/sec."""
    sim = Simulator()
    sim.trace.enabled = tracing
    done = []

    def proc():
        for _ in range(yields):
            yield 1.0
        done.append(1)

    for _ in range(n_procs):
        sim.process(proc())
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert len(done) == n_procs
    return sim.events_executed / elapsed


def run_rpcs(n: int = 5_000, tracing: bool = False) -> float:
    """Round-trip RPCs with per-RPC spans enabled; returns RPCs/sec."""
    sim = Simulator()
    sim.trace.enabled = tracing
    net = Network(sim, ConstantLatency(0.01))
    Endpoint(net, "client")
    server = Endpoint(net, "server")
    server.register_handler("echo", lambda payload, src: payload)
    for i in range(n):
        net.rpc("client", "server", "echo", i)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert net.stats.rpcs_completed == n
    return n / elapsed


def run_spans_experiment(duration_s: int = 1800, n_clients: int = 24,
                         sample_every: int = 1, tracing: bool = False) -> float:
    """End-to-end smoke run, span tracing off vs on; kernel events/sec.

    Spans are job-granular (a handful per brokered job), so their
    honest budget test is a full experiment — container service draws,
    WAN transfers, site scheduling — not a micro-loop that times
    nothing but the recorder.  ``sample_every`` is the head-sampling
    rate under test: the budgeted operating point records every 4th
    trace (``--trace-sample=4``); full fidelity (1) costs more and is
    what you opt into for a debugging run, not for always-on tracing.
    """
    from repro.experiments.configs import smoke_config
    from repro.experiments.runner import run_experiment

    config = smoke_config(duration_s=float(duration_s),
                          n_clients=max(int(n_clients), 1),
                          spans_enabled=tracing,
                          spans_sample=max(int(sample_every), 1))
    t0 = time.perf_counter()
    result = run_experiment(config)
    elapsed = time.perf_counter() - t0
    assert result.sim.events_executed > 0
    if tracing:
        assert len(result.sim.spans) > 0
    return result.sim.events_executed / elapsed


def run_telemetry_experiment(duration_s: int = 1800, n_clients: int = 24,
                             tracing: bool = False) -> float:
    """End-to-end smoke run, telemetry timeline off vs on; events/sec.

    ``tracing=True`` means ``telemetry_enabled=True``: the
    :class:`~repro.obs.timeline.TimelineSampler` takes one unified
    ``MetricsRegistry.collect()`` pass (one-pass histogram summaries,
    SignalBus gauges, grid + kernel levels) every 30 simulated seconds.
    The honest budget test is a full experiment — the per-tick cost is
    dominated by walking real site tables and client fleets, not the
    registry loop.
    """
    from repro.experiments.configs import smoke_config
    from repro.experiments.runner import run_experiment

    config = smoke_config(duration_s=float(duration_s),
                          n_clients=max(int(n_clients), 1),
                          telemetry_enabled=tracing,
                          telemetry_interval_s=30.0)
    t0 = time.perf_counter()
    result = run_experiment(config)
    elapsed = time.perf_counter() - t0
    assert result.sim.events_executed > 0
    if tracing:
        assert result.sampler is not None
        assert result.sampler.samples_taken > 0
    return result.sim.events_executed / elapsed


def run_check_experiment(duration_s: int = 1800, n_clients: int = 24,
                         tracing: bool = False) -> float:
    """End-to-end smoke run, invariant checker off vs on; events/sec.

    ``tracing=True`` here means ``check_enabled=True``: the checker
    rides the run as periodic checkpoints over every site, client and
    decision point.  Like spans, its honest budget test is a full
    experiment — the checkpoint pass walks real running-job maps and
    dispatch-record views, not synthetic structures.
    """
    from repro.experiments.configs import smoke_config
    from repro.experiments.runner import run_experiment

    config = smoke_config(duration_s=float(duration_s),
                          n_clients=max(int(n_clients), 1),
                          check_enabled=tracing,
                          check_interval_s=30.0)
    t0 = time.perf_counter()
    result = run_experiment(config)
    elapsed = time.perf_counter() - t0
    assert result.sim.events_executed > 0
    if tracing:
        assert result.checker is not None
        assert result.checker.checks_run > 0
        assert result.checker.violations == []
    return result.sim.events_executed / elapsed


# -- harness -------------------------------------------------------------------

def measure_all(quick: bool = False, repeats: int | None = None) -> dict:
    """Measure every workload tracing-off vs tracing-on.

    Returns ``{workload: {disabled, enabled, overhead_pct}}`` where the
    rates are events (or RPCs) per wall-clock second and
    ``overhead_pct`` is the enabled slowdown relative to disabled
    (negative values = noise, clamped at 0 in the pass check).
    Off/on runs are *interleaved* and the best of each taken, so slow
    drift (thermal, scheduler) cancels instead of biasing one side.
    """
    if repeats is None:
        repeats = 5
    sizes = {
        "callbacks": {"n": 20_000 if quick else 100_000},
        "processes": {"n_procs": 200 if quick else 1_000,
                      "yields": 50 if quick else 100},
        "rpc": {"n": 1_000 if quick else 5_000},
        "spans": {"duration_s": 600 if quick else 1800,
                  "n_clients": 8 if quick else 24,
                  "sample_every": 4},
        "check": {"duration_s": 600 if quick else 1800,
                  "n_clients": 8 if quick else 24},
        "telemetry": {"duration_s": 600 if quick else 1800,
                      "n_clients": 8 if quick else 24},
    }
    workloads = {
        "callbacks": run_callbacks,
        "processes": run_processes,
        "rpc": run_rpcs,
        "spans": run_spans_experiment,
        "check": run_check_experiment,
        "telemetry": run_telemetry_experiment,
    }
    out = {}
    for name, fn in workloads.items():
        # Warm both code paths (CPython's adaptive interpreter makes the
        # first traced run ~2x slower than steady state).
        warm = {k: max(v // 10, 1) for k, v in sizes[name].items()}
        fn(tracing=False, **warm)
        fn(tracing=True, **warm)
        disabled = enabled = 0.0
        for _ in range(repeats):
            disabled = max(disabled, fn(tracing=False, **sizes[name]))
            enabled = max(enabled, fn(tracing=True, **sizes[name]))
        out[name] = {
            "disabled_per_s": disabled,
            "enabled_per_s": enabled,
            "overhead_pct": 100.0 * (disabled - enabled) / disabled,
        }
        if "sample_every" in sizes[name]:
            # Pin the operating point in the JSON: the spans budget is
            # met *with* head sampling, not at full fidelity.
            out[name]["sample_every"] = sizes[name]["sample_every"]
    return out


# -- pytest wrappers (lenient bounds; exact numbers go to BENCH_kernel.json) --

def test_tracing_disabled_is_default():
    sim = Simulator()
    assert sim.trace.enabled is False
    assert len(sim.trace) == 0


def test_tracing_overhead_within_budget():
    results = measure_all(quick=True)
    # The <10% budget is enforced on the quiet benchmark box via
    # run_all.py; shared CI runners get slack for scheduler noise.
    for name, r in results.items():
        assert r["overhead_pct"] < 50.0, (name, r)


def test_disabled_tracer_records_nothing():
    sim = Simulator()
    done = []

    def proc():
        yield 1.0
        done.append(1)

    sim.process(proc())
    sim.run()
    assert done and len(sim.trace) == 0 and sim.trace.counts == {}
