"""Reliability bench — §2.2: "We cannot afford for this infrastructure
to fail."

A 3-decision-point deployment loses one broker mid-run.  Three
scenarios:

* **healthy** — no failure (control);
* **crash, no observer** — the dead broker's clients degrade
  gracefully (timeout → random placement), exactly the §4.3 design;
* **crash + observer** — the third-party observer detects the liveness
  failure, evacuates the orphaned clients to live brokers, and grows
  the deployment when the survivors saturate.

Expected shape: the crash costs brokered (handled) placements; the
observer recovers them (evacuation *plus* added capacity — evacuation
alone onto saturated survivors makes things worse, which an earlier
version of this bench demonstrated); total job flow never collapses in
any scenario (graceful degradation).
"""

from benchmarks.conftest import DURATION_S, bench_once
from repro.core import ReconfigurationObserver, SaturationDetector
from repro.experiments import canonical_gt3, run_experiment
from repro.metrics.report import format_table


def _hook(with_observer, state):
    def hook(sim, deployment, **_):
        sim.schedule(DURATION_S / 2, deployment.dp("dp0").crash)
        if with_observer:
            detector = SaturationDetector(
                sim, deployment.decision_points.values(), interval_s=60.0,
                queue_threshold=20)
            detector.start()
            state["observer"] = ReconfigurationObserver(
                sim, deployment, detector, cooldown_s=300.0,
                max_decision_points=6)
    return hook


def test_reliability_failover(benchmark):
    def sweep():
        state = {}
        healthy = run_experiment(canonical_gt3(3, duration_s=DURATION_S,
                                               name="healthy"))
        crash = run_experiment(canonical_gt3(3, duration_s=DURATION_S,
                                             name="crash"),
                               deployment_hook=_hook(False, {}))
        failover = run_experiment(canonical_gt3(3, duration_s=DURATION_S,
                                                name="failover"),
                                  deployment_hook=_hook(True, state))
        return healthy, crash, failover, state

    healthy, crash, failover, state = bench_once(benchmark, sweep)

    def handled_frac(r):
        return r.n_requests("handled") / max(r.n_jobs, 1)

    rows = []
    for label, r in (("healthy", healthy), ("crash, no observer", crash),
                     ("crash + failover", failover)):
        fb = r.client_fallbacks()
        rows.append([label, r.n_jobs, round(100 * handled_frac(r), 1),
                     fb["timeout"],
                     sum(c.n_abandoned for c in r.clients)])
    print("\n" + format_table(
        ["Scenario", "Requests", "Handled %", "Timeouts", "Abandoned"],
        rows, title="Decision-point failure at t = T/2 (GT3, 3 DPs)",
        col_width=16))
    events = state["observer"].events
    print("Observer events: "
          + str([(e.action, round(e.time), e.clients_moved) for e in events]))

    # The crash costs brokered placements (the orphaned third of the
    # fleet stops being handled — and, cycling through timeout + grace,
    # submits fewer requests, so the *count* is the honest measure)...
    assert crash.n_requests("handled") < 0.92 * healthy.n_requests("handled")
    # ...the adaptive deployment recovers them and then some (it also
    # fixed the pre-existing 3-DP saturation)...
    assert failover.n_requests("handled") > 1.2 * crash.n_requests("handled")
    assert handled_frac(failover) > handled_frac(crash) + 0.05
    # ...and in no scenario does job flow collapse (graceful degradation).
    assert crash.n_jobs > 0.6 * healthy.n_jobs
    assert any(e.action == "failover" for e in events)
