#!/usr/bin/env python
"""Scale sweep: does the simulator survive a 10x-Grid3/OSG grid?

Sweeps grid multiplier k in {1, 3, 10} x decision-point count, running
every cell three ways — the pre-change cost model (``fast_paths=False``,
flood sync; ``baseline``), the scale-plane fast paths + delta sync with
batch dispatch and vectorized sites pinned OFF (``optimized`` — the
PR-3 stack; the pins matter because both knobs now default on), and the
full stack with event-batch dispatch + vectorized site drains
(``batch``) — and records:

* ``events_per_s``  — kernel events executed per wall second;
* ``heap_peak``     — peak ``len(sim._heap)`` (boundedness evidence);
* ``rss_peak_mb``   — peak resident set size of the (isolated) run;
* ``sync_kb``       — total sync payload shipped, in KB.

Each cell runs in a fresh subprocess so peak-RSS numbers are per-cell,
not a process-wide high-water mark.  The committed ``BENCH_scale.json``
is the regression baseline: ``--check`` compares a fresh sweep's
optimized-over-baseline *speedups* cell-by-cell (speedups are robust to
absolute machine speed where raw events/sec are not) and fails on a
>15% regression, and holds the batch stack to the parity floor
(``batch_speedup_vs_opt``).

Honest framing of the batch columns: at the experiment level the
dispatch loop is ~15% of runtime (callback bodies and the generator
machinery dominate), so ``batch`` lands at parity with ``optimized``
within 1-core scheduler noise (±20%).  Where batching does pay is the
dispatch loop itself: the ``kernel_dispatch`` microbenchmark measures
it in isolation, in CPU time, at ~1M events/s with batched dispatch a
few percent ahead on multi-event timestamps.  The gate is therefore a
*parity* floor (batching must never cost real throughput), not a
speedup claim the profile cannot support.

The full sweep also measures the *shard axis*: the space-parallel
sharded runtime (``repro.sim.sharded``) on the headline (k=10, 10 DP)
cell at 1/2/4 shards plus a k=100 row, recording events/s, the
run digest per shard count (they must all agree — grouping
independence), and speedups against both serial variants
(``speedup_vs_base``, ``speedup_vs_opt``).

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_scale.py --quick   # CI subset
    PYTHONPATH=src python benchmarks/bench_scale.py --quick \
        --check BENCH_scale.json                              # regression gate
    PYTHONPATH=src python benchmarks/bench_scale.py --quick \
        --shards-only                                         # CI shard gate
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

# Allow running from a source checkout without installing.
_ROOT = Path(__file__).resolve().parent.parent
for _p in (str(_ROOT / "src"), str(_ROOT)):
    if _p not in sys.path:
        sys.path.insert(0, _p)

#: Simulated seconds per cell.  Long enough for several sync rounds
#: (so delta vs flood payload sizes actually diverge) and for dead heap
#: entries and record backlogs to accumulate, short enough that a full
#: sweep stays benchable.
CELL_DURATION_S = 900.0
#: The full sweep: grid multiplier x decision points.
FULL_CELLS = tuple((k, dps) for k in (1, 3, 10) for dps in (3, 10))
#: CI subset — same per-cell parameters (so --check can compare against
#: a full-sweep baseline), fewer cells.
QUICK_CELLS = ((1, 3), (10, 3))
#: Regression gate: fresh speedup must be >= this fraction of committed.
REGRESSION_TOLERANCE = 0.85
#: Acceptance floor: the optimized stack must be at least this much
#: faster than the pre-change baseline at k=10.
K10_SPEEDUP_FLOOR = 2.0
#: Parity floor for the batch stack vs the PR-3 optimized path.  The
#: two are equal within noise (the dispatch loop is ~15% of experiment
#: runtime), but 1-core wall-clock jitters by double-digit
#: percentages, so the floor is set where only a real slowdown — not
#: scheduler noise — can breach it.
BATCH_PARITY_FLOOR = 0.6
#: Sharded axis: shard counts measured on the headline (k=10, 10 DP)
#: cell, plus a 4-shard worker-mode row for the parallel path.
SHARD_COUNTS = (1, 2, 4)
#: Acceptance floor for the sharded runtime on the k=10 cell: events/s
#: at 4 shards vs the *serial baseline* cost model (the same
#: denominator every ``speedup`` column in this file uses).  The
#: structural ratio — neighborhood-local views, epoch-batched sync —
#: is core-count independent, so CI can gate on it from a 1-core
#: runner.
SHARD4_SPEEDUP_FLOOR = 2.0


def _cell_env() -> dict:
    """Subprocess environment for measured cells, pinned.

    Committed BENCH numbers must not drift with the invoking shell:
    ``PYTHONHASHSEED`` is pinned (hash-dependent set/dict iteration
    order in *any* future code path would otherwise vary per process),
    and the repo's ``REPRO_*`` toggles (bench durations, obs/trace
    switches) are stripped so a cell measures exactly what the sweep
    parameters say.
    """
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("REPRO_")}
    env["PYTHONHASHSEED"] = "0"
    return env


def run_cell(multiplier: int, dps: int, duration_s: float,
             optimized: bool, batch: bool = False) -> dict:
    """One measured run; returns the metrics dict (JSON-safe).

    ``batch=True`` measures the full stack (fast paths + delta sync +
    event-batch dispatch + vectorized sites).  With ``batch=False``
    both kernel knobs are pinned off explicitly — they default on in
    ``ExperimentConfig``, so an unpinned "optimized" cell would
    silently include the batching it is supposed to be the reference
    for.
    """
    import resource

    from repro.experiments import run_experiment
    from repro.experiments.configs import scale_config

    mode = "batch" if batch else ("opt" if optimized else "base")
    config = scale_config(
        multiplier=multiplier, decision_points=dps, duration_s=duration_s,
        fast_paths=optimized or batch, sync_delta=optimized or batch,
        batch_dispatch=batch, vectorized_sites=batch,
        name=f"scale-{multiplier}x-{dps}dp-{mode}")
    t0 = time.perf_counter()
    result = run_experiment(config)
    wall_s = time.perf_counter() - t0
    sim = result.sim
    sync_kb = sum(dp.sync.kb_sent
                  for dp in result.deployment.decision_points.values())
    sync_records = sum(dp.sync.records_sent
                       for dp in result.deployment.decision_points.values())
    ru = resource.getrusage(resource.RUSAGE_SELF)
    return {
        "multiplier": multiplier,
        "dps": dps,
        "duration_s": duration_s,
        "optimized": optimized,
        "batch": batch,
        "vector_drains": sum(site.vector_drains
                             for site in result.grid.sites.values()),
        "wall_s": round(wall_s, 3),
        "events": sim.events_executed,
        "events_per_s": round(sim.events_executed / wall_s, 1),
        "heap_peak": sim.heap_peak,
        "compactions": sim.compactions,
        "sync_kb": round(sync_kb, 1),
        "sync_records": sync_records,
        "requests": result.n_jobs,
        "rss_peak_mb": round(ru.ru_maxrss / 1024.0, 1),  # Linux: KB
    }


def _run_cell_isolated(params: dict, entry: str = "--cell") -> dict:
    """Run one cell in a fresh interpreter (honest per-cell peak RSS)."""
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         entry, json.dumps(params)],
        capture_output=True, text=True, env=_cell_env())
    if proc.returncode != 0:
        # Isolation failed (constrained environments): fall back inline.
        sys.stderr.write(proc.stderr)
        runner = run_shard_cell if entry == "--shard-cell" else run_cell
        return runner(**params)
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_shard_cell(multiplier: int, dps: int, duration_s: float,
                   n_shards: int, mode: str = "lockstep") -> dict:
    """One sharded run of the k-scaled grid; returns metrics + digest."""
    import resource

    from repro.experiments.configs import scale_config
    from repro.sim.sharded import run_sharded

    config = scale_config(
        multiplier=multiplier, decision_points=dps, duration_s=duration_s,
        name=f"scale-{multiplier}x-{dps}dp-sharded")
    result = run_sharded(config, n_shards=n_shards, mode=mode)
    ru = resource.getrusage(resource.RUSAGE_SELF)
    return {
        "multiplier": multiplier,
        "dps": dps,
        "duration_s": duration_s,
        "n_shards": n_shards,
        "mode": mode,
        "wall_s": round(result.wall_s, 3),
        "events": result.total_events,
        "events_per_s": round(result.events_per_s, 1),
        "heap_peak": result.heap_peak,
        "requests": result.n_jobs,
        "digest": result.digest,
        "rss_peak_mb": round(ru.ru_maxrss / 1024.0, 1),  # Linux: KB
    }


def run_shard_sweep(shard_rows, duration_s: float, serial_rows=(),
                    isolate: bool = True) -> list[dict]:
    """The shard-count axis: one row per (k, dps) with all shard runs.

    ``serial_rows`` supplies the serial reference cells already
    measured by :func:`run_sweep`; a (k, dps) row without a serial
    reference gets one fresh optimized serial run for its
    ``speedup_vs_opt`` (the k=100 cell, where a serial *baseline*
    run is unaffordable by construction — that is the point).
    """
    by_cell = {(c["multiplier"], c["dps"]): c for c in serial_rows}
    rows = []
    for multiplier, dps, shard_specs in shard_rows:
        runs = []
        for n_shards, mode in shard_specs:
            params = dict(multiplier=multiplier, dps=dps,
                          duration_s=duration_s, n_shards=n_shards,
                          mode=mode)
            r = (_run_cell_isolated(params, entry="--shard-cell")
                 if isolate else run_shard_cell(**params))
            runs.append(r)
            print(f"k={multiplier:>3} dps={dps:>2} shards={n_shards} "
                  f"[{mode:>8}]: {r['events_per_s']:>9,.0f} ev/s   "
                  f"events {r['events']:,}   digest {r['digest']}")
        row: dict = {"multiplier": multiplier, "dps": dps, "runs": runs}
        row["digest_consistent"] = len({r["digest"] for r in runs}) == 1
        serial = by_cell.get((multiplier, dps))
        best4 = max((r["events_per_s"] for r in runs
                     if r["n_shards"] == max(s for s, _ in shard_specs)),
                    default=None)
        if serial is None and best4 is not None:
            # No serial cell in this sweep: measure an optimized serial
            # reference so the row still carries a comparable ratio.
            params = dict(multiplier=multiplier, dps=dps,
                          duration_s=duration_s, optimized=True)
            opt = (_run_cell_isolated(params) if isolate
                   else run_cell(**params))
            row["serial_opt"] = opt
            serial = {"optimized": opt}
        if serial is not None and best4 is not None:
            opt_eps = serial["optimized"]["events_per_s"]
            row["speedup_vs_opt"] = round(best4 / opt_eps, 2)
            if "baseline" in serial:
                base_eps = serial["baseline"]["events_per_s"]
                row["speedup_vs_base"] = round(best4 / base_eps, 2)
        rows.append(row)
        msg = [f"k={multiplier:>3} dps={dps:>2} shard row:",
               f"digests {'consistent' if row['digest_consistent'] else 'DIVERGED'}"]
        if "speedup_vs_base" in row:
            msg.append(f"vs serial-base {row['speedup_vs_base']:.2f}x")
        if "speedup_vs_opt" in row:
            msg.append(f"vs serial-opt {row['speedup_vs_opt']:.2f}x")
        print("  " + "   ".join(msg))
    return rows


def run_sweep(cells, duration_s: float, isolate: bool = True) -> list[dict]:
    modes = (("baseline", dict(optimized=False)),
             ("optimized", dict(optimized=True)),
             ("batch", dict(optimized=True, batch=True)))
    rows = []
    for multiplier, dps in cells:
        cell: dict = {"multiplier": multiplier, "dps": dps}
        for key, flags in modes:
            params = dict(multiplier=multiplier, dps=dps,
                          duration_s=duration_s, **flags)
            cell[key] = (_run_cell_isolated(params) if isolate
                         else run_cell(**params))
        opt, base, bat = cell["optimized"], cell["baseline"], cell["batch"]
        cell["speedup"] = round(opt["events_per_s"] / base["events_per_s"], 2)
        cell["batch_speedup"] = round(
            bat["events_per_s"] / base["events_per_s"], 2)
        cell["batch_speedup_vs_opt"] = round(
            bat["events_per_s"] / opt["events_per_s"], 2)
        cell["sync_kb_ratio"] = (
            round(opt["sync_kb"] / base["sync_kb"], 3)
            if base["sync_kb"] > 0 else None)
        rows.append(cell)
        print(f"k={multiplier:>2} dps={dps:>2}: "
              f"base {base['events_per_s']:>9,.0f} ev/s   "
              f"opt {opt['events_per_s']:>9,.0f} ev/s   "
              f"batch {bat['events_per_s']:>9,.0f} ev/s   "
              f"speedup {cell['speedup']:.2f}x "
              f"(batch {cell['batch_speedup']:.2f}x, "
              f"vs opt {cell['batch_speedup_vs_opt']:.2f}x)   "
              f"heap {base['heap_peak']}->{bat['heap_peak']}   "
              f"vec drains {bat['vector_drains']}")
    return rows


def measure_heap_bound(n_rpcs: int = 10_000) -> dict:
    """Kernel-level boundedness evidence: heap growth per completed RPC.

    The experiment cells cannot isolate this (under saturation most
    timeouts *fire* instead of being cancelled), so measure it
    directly: a healthy client completing ``n_rpcs`` RPCs whose long
    timeouts would all still be armed at the end of the run.  Pre-change
    the heap grows with every completed RPC; with compaction it stays
    O(live).
    """
    from repro.net import ConstantLatency, Endpoint, Network
    from repro.sim import Simulator

    out: dict = {}
    for fast in (True, False):
        sim = Simulator(fast=fast)
        net = Network(sim, ConstantLatency(0.01))
        Endpoint(net, "client")
        server = Endpoint(net, "server")
        server.register_handler("echo", lambda payload, src: payload)

        def driver():
            for _ in range(n_rpcs):
                yield net.rpc("client", "server", "echo", {}, timeout=600.0)

        sim.process(driver())
        sim.run()
        out["optimized" if fast else "baseline"] = {
            "completed_rpcs": n_rpcs,
            "heap_peak": sim.heap_peak,
            "heap_end": len(sim._heap),
            "compactions": sim.compactions,
        }
    out["bounded"] = (out["optimized"]["heap_peak"] * 10
                      < out["baseline"]["heap_peak"])
    return out


def measure_dispatch_rate(n_events: int = 200_000, per_ts: int = 8) -> dict:
    """Kernel-level dispatch throughput, batched vs scalar, in CPU time.

    The experiment cells cannot see the dispatch loop — callback bodies
    dominate — so measure it bare: ``n_events`` no-op events, ``per_ts``
    per timestamp (the density where batch dispatch amortizes its
    per-instant head peek).  CPU time (``time.process_time``) is used
    because the loop runs ~1M events/s and wall-clock jitter on a
    shared 1-core runner would swamp a few-percent effect.
    """
    from repro.sim import Simulator

    out: dict = {}
    for batched in (True, False):
        sim = Simulator(batch_dispatch=batched)
        noop = lambda: None  # noqa: E731
        for i in range(n_events):
            sim.schedule(float(i // per_ts), noop)
        t0 = time.process_time()
        sim.run()
        cpu_s = time.process_time() - t0
        out["batched" if batched else "scalar"] = {
            "events": n_events,
            "per_ts": per_ts,
            "cpu_s": round(cpu_s, 3),
            "events_per_s": round(n_events / cpu_s, 1),
        }
    out["ratio"] = round(out["batched"]["events_per_s"]
                         / out["scalar"]["events_per_s"], 3)
    return out


def shard_gate(shard_rows: list[dict]) -> tuple[bool, list[str]]:
    """The sharded acceptance gate: digest equality + speedup floor."""
    problems = []
    for row in shard_rows:
        key = f"k={row['multiplier']} dps={row['dps']}"
        if not row["digest_consistent"]:
            problems.append(f"{key}: shard-count digests diverged")
        floor_ratio = row.get("speedup_vs_base")
        if floor_ratio is not None and floor_ratio < SHARD4_SPEEDUP_FLOOR:
            problems.append(
                f"{key}: sharded {floor_ratio:.2f}x vs serial baseline, "
                f"below the {SHARD4_SPEEDUP_FLOOR:.0f}x floor")
    return (not problems), problems


def build_report(rows: list[dict], quick: bool,
                 shard_rows: list[dict] | None = None) -> dict:
    k10 = [c for c in rows if c["multiplier"] == 10]
    k10_speedup = min((c["speedup"] for c in k10), default=None)
    batch_parity = min((c["batch_speedup_vs_opt"] for c in rows
                        if "batch_speedup_vs_opt" in c), default=None)
    heap_bound = measure_heap_bound()
    kernel_dispatch = measure_dispatch_rate()
    ok = ((k10_speedup is None or k10_speedup >= K10_SPEEDUP_FLOOR)
          and (batch_parity is None or batch_parity >= BATCH_PARITY_FLOOR)
          and heap_bound["bounded"])
    report = {
        "bench": "scale",
        "quick": quick,
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "cell_duration_s": CELL_DURATION_S,
        "cells": rows,
        "heap_bound": heap_bound,
        "kernel_dispatch": kernel_dispatch,
        "k10_speedup_min": k10_speedup,
        "k10_speedup_floor": K10_SPEEDUP_FLOOR,
        "batch_parity_min": batch_parity,
        "batch_parity_floor": BATCH_PARITY_FLOOR,
        "pass_scale_floor": ok,
    }
    if shard_rows is not None:
        shard_ok, shard_problems = shard_gate(shard_rows)
        report["shard_cells"] = shard_rows
        report["shard4_speedup_floor"] = SHARD4_SPEEDUP_FLOOR
        report["pass_shard_gate"] = shard_ok
        report["shard_gate_problems"] = shard_problems
    return report


def check_regression(rows: list[dict], committed_path: Path) -> list[str]:
    """Compare fresh speedups to the committed baseline; returns problems.

    Only cells with multiplier >= 3 are gated: that is where the
    optimized-over-baseline gap is large (3x+) and stable, so a 15%
    tolerance separates real regressions from scheduler noise.  The
    k=1 cells are recorded for information — their ~2x speedups drift
    by double-digit percentages with background machine load.
    """
    committed = json.loads(committed_path.read_text(encoding="utf-8"))
    by_cell = {(c["multiplier"], c["dps"]): c for c in committed["cells"]}
    problems = []
    compared = 0
    for cell in rows:
        key = (cell["multiplier"], cell["dps"])
        ref = by_cell.get(key)
        if cell["multiplier"] < 3:
            continue
        if ref is None or ref["baseline"]["duration_s"] != \
                cell["baseline"]["duration_s"]:
            continue
        compared += 1
        floor = ref["speedup"] * REGRESSION_TOLERANCE
        if cell["speedup"] < floor:
            problems.append(
                f"k={key[0]} dps={key[1]}: speedup {cell['speedup']:.2f}x "
                f"< {floor:.2f}x (committed {ref['speedup']:.2f}x "
                f"- {100 * (1 - REGRESSION_TOLERANCE):.0f}% tolerance)")
        if cell["multiplier"] == 10 and cell["speedup"] < K10_SPEEDUP_FLOOR:
            problems.append(
                f"k=10 dps={key[1]}: speedup {cell['speedup']:.2f}x below "
                f"the {K10_SPEEDUP_FLOOR:.0f}x acceptance floor")
        # Batch-stack parity: an absolute floor, not a ratio against
        # the committed cell — the committed value is ~1.0 (parity) and
        # a relative gate at that level would flake on 1-core noise.
        parity = cell.get("batch_speedup_vs_opt")
        if parity is not None and parity < BATCH_PARITY_FLOOR:
            problems.append(
                f"k={key[0]} dps={key[1]}: batch stack at {parity:.2f}x "
                f"the optimized path, below the {BATCH_PARITY_FLOOR:.1f}x "
                f"parity floor")
    if not compared:
        problems.append(f"no comparable cells in {committed_path}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="scale sweep: k x Grid3/OSG, optimized vs baseline")
    parser.add_argument("--quick", action="store_true",
                        help="CI subset of cells (same per-cell sizes)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="report path (default: BENCH_scale.json in "
                             "the repo root; not written in --check mode)")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare against a committed report and exit "
                             "1 on a >15%% speedup regression")
    parser.add_argument("--no-isolate", action="store_true",
                        help="run cells in-process (faster, but peak RSS "
                             "becomes a process-wide high-water mark)")
    parser.add_argument("--shards-only", action="store_true",
                        help="run only the shard axis (CI shard job): "
                             "serial k=10 reference + sharded runs, "
                             "gating on digest equality and the shard "
                             "speedup floor")
    parser.add_argument("--cell", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--shard-cell", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.cell:  # subprocess entry: one cell, JSON on stdout
        print(json.dumps(run_cell(**json.loads(args.cell))))
        return 0
    if args.shard_cell:
        print(json.dumps(run_shard_cell(**json.loads(args.shard_cell))))
        return 0

    isolate = not args.no_isolate

    if args.shards_only:
        serial_rows = run_sweep([(10, 10)], CELL_DURATION_S, isolate=isolate)
        specs = ([(10, 10, [(1, "lockstep"), (4, "lockstep")])]
                 if args.quick else
                 [(10, 10, [(n, "lockstep") for n in SHARD_COUNTS]
                   + [(4, "workers")])])
        shard_rows = run_shard_sweep(specs, CELL_DURATION_S,
                                     serial_rows=serial_rows,
                                     isolate=isolate)
        shard_ok, problems = shard_gate(shard_rows)
        for problem in problems:
            print(f"  SHARD GATE: {problem}")
        print(f"shard gate (digest equality + >= "
              f"{SHARD4_SPEEDUP_FLOOR:.0f}x vs serial baseline) -> "
              f"{'PASS' if shard_ok else 'FAIL'}")
        return 0 if shard_ok else 1

    cells = QUICK_CELLS if args.quick else FULL_CELLS
    rows = run_sweep(cells, CELL_DURATION_S, isolate=isolate)

    if args.check:
        problems = check_regression(rows, Path(args.check))
        for problem in problems:
            print(f"  REGRESSION: {problem}")
        verdict = "PASS" if not problems else "FAIL"
        print(f"scale regression gate vs {args.check} -> {verdict}")
        return 1 if problems else 0

    shard_rows = None
    if not args.quick:
        shard_specs = [
            (10, 10, [(n, "lockstep") for n in SHARD_COUNTS]
             + [(4, "workers")]),
            # The k=100 row: a grid one hundred times Grid3/OSG.  No
            # serial-baseline reference — that run is unaffordable,
            # which is what the sharded runtime exists to fix — so the
            # row carries a fresh optimized-serial reference instead.
            (100, 10, [(4, "lockstep")]),
        ]
        shard_rows = run_shard_sweep(shard_specs, CELL_DURATION_S,
                                     serial_rows=rows, isolate=isolate)
    report = build_report(rows, quick=args.quick, shard_rows=shard_rows)

    out = Path(args.out) if args.out else _ROOT / "BENCH_scale.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    verdict = "PASS" if report["pass_scale_floor"] else "FAIL"
    print(f"k=10 speedup floor ({K10_SPEEDUP_FLOOR:.0f}x): "
          f"min {report['k10_speedup_min']} -> {verdict}")
    passed = report["pass_scale_floor"]
    if shard_rows is not None:
        shard_verdict = "PASS" if report["pass_shard_gate"] else "FAIL"
        print(f"shard gate: {shard_verdict}")
        passed = passed and report["pass_shard_gate"]
    print(f"wrote {out}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
