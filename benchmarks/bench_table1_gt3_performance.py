"""Table 1 — GT3 DI-GRUBER overall performance.

Rows: requests handled by GRUBER / NOT handled / all, for 1, 3, and 10
decision points; columns: % of requests, request count, QTime,
Normalized QTime, Utilization, Accuracy.

Paper shape: the single decision point handles a small fraction of
requests (timeouts dominate); handled requests show better Accuracy
than the random-fallback ones; utilization grows with the deployment
size; the 1-DP QTime is deceivingly low (few jobs entered the grid),
which Normalized QTime exposes.
"""

import numpy as np

from benchmarks.conftest import bench_once
from repro.experiments.figures import table_overall_performance


def test_table1_gt3_overall_performance(benchmark, gt3_sweep):
    table = bench_once(benchmark,
                       lambda: table_overall_performance(gt3_sweep))
    print("\nTable 1 (GT3):\n" + table)

    r1, r3, r10 = (gt3_sweep[k] for k in (1, 3, 10))

    # Handled fraction grows with decision points.
    frac = [r.n_requests("handled") / max(r.n_jobs, 1) for r in (r1, r3, r10)]
    assert frac[0] < 0.5                      # 1 DP: timeouts dominate
    assert frac[0] < frac[1] < frac[2]
    assert frac[2] > 0.9                      # 10 DPs: nearly all handled

    # Handled requests are scheduled more accurately than fallbacks.
    for r in (r1, r3):
        if r.n_requests("not_handled") > 100:
            assert r.accuracy("handled") >= r.accuracy("not_handled") - 0.02

    # Utilization grows with deployment size (more brokered work).
    utils = [r.utilization("all") for r in (r1, r3, r10)]
    assert utils[0] < utils[1] < utils[2]

    # The 1-DP run processed far fewer requests overall.
    assert r1.n_jobs < 0.5 * r10.n_jobs
