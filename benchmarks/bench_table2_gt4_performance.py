"""Table 2 — GT4 DI-GRUBER overall performance.

Paper shape: as Table 1, but "in the three and ten decision point
cases, GT4 DI-GRUBER was able to handle almost all requests
successfully, which is different from the GT3 DI-GRUBER."
"""

from benchmarks.conftest import bench_once
from repro.experiments.figures import table_overall_performance


def test_table2_gt4_overall_performance(benchmark, gt4_sweep, gt3_sweep):
    table = bench_once(benchmark,
                       lambda: table_overall_performance(gt4_sweep))
    print("\nTable 2 (GT4):\n" + table)

    frac = {k: gt4_sweep[k].n_requests("handled") / max(gt4_sweep[k].n_jobs, 1)
            for k in (1, 3, 10)}

    # 1 DP saturates; 3 and 10 DPs handle almost everything.
    assert frac[1] < 0.6
    assert frac[3] > 0.85
    assert frac[10] > 0.95

    # The contrast with GT3 at 3 DPs (the paper's explicit remark).
    gt3_frac3 = (gt3_sweep[3].n_requests("handled")
                 / max(gt3_sweep[3].n_jobs, 1))
    assert frac[3] > gt3_frac3

    # Utilization still grows with the deployment size.
    utils = [gt4_sweep[k].utilization("all") for k in (1, 3, 10)]
    assert utils[0] < utils[1] < utils[2]
