"""Table 3 — GRUB-SIM: required decision points.

GRUB-SIM replays the query traces recorded in the scalability runs,
identifies saturation, and provisions decision points on the fly.

Paper shape: "for the GT3-based implementation, a total of [~5]
decision points was necessary.  On the other hand, for the GT4
DI-GRUBER, a total of [~4] decision points were needed" — i.e., "about
4 or 5 ... are enough to handle the scheduling for a grid that is [10]
times larger than today's Grid3."
"""

from benchmarks.conftest import bench_once
from repro.grubsim import DPPerformanceModel, GrubSim
from repro.metrics.report import format_table
from repro.net import GT3_PROFILE, GT4_PROFILE


def test_table3_grubsim_required_dps(benchmark, gt3_sweep, gt4_sweep):
    def size_both():
        gt3_model = DPPerformanceModel.from_profile(GT3_PROFILE)
        gt4_model = DPPerformanceModel.from_profile(GT4_PROFILE)
        gt3 = GrubSim(gt3_model).replay(gt3_sweep[1].trace, initial_dps=1,
                                        name="GT3-based")
        gt4 = GrubSim(gt4_model).replay(gt4_sweep[1].trace, initial_dps=1,
                                        name="GT4-based")
        return gt3, gt4

    gt3, gt4 = bench_once(benchmark, size_both)

    rows = [[r.name, r.initial_dps, r.additional_dps, r.final_dps,
             len(r.overloads)] for r in (gt3, gt4)]
    print("\nTable 3:\n" + format_table(
        ["Trace", "Initial DPs", "Additional DPs", "Total DPs", "Overloads"],
        rows, col_width=15))

    # The paper's conclusion: only a few decision points — about 4 or 5 —
    # are enough for a grid ten times larger than Grid3.
    assert 4 <= gt3.final_dps <= 6
    assert 3 <= gt4.final_dps <= 5
    assert gt3.overloads and gt4.overloads  # saturation was identified
