"""Shared fixtures for the paper-reproduction benchmark harness.

Each paper table/figure has a bench module; the expensive experiment
runs are session-cached here because the paper derives its tables from
the same executions as its figures (Table 1 <- Figs 5-7, Table 2 <-
Figs 9-11, Table 3 <- replaying those traces).

Environment knobs:

* ``REPRO_BENCH_DURATION`` — simulated seconds per run (default 1800;
  the paper ran 3600 s experiments — set 3600 for the full-length
  reproduction; shapes are stable from ~1200 s on).
"""

import os

import pytest

from repro.experiments import canonical_gt3, canonical_gt4
from repro.experiments.figures import run_scalability_sweep

DURATION_S = float(os.environ.get("REPRO_BENCH_DURATION", "1800"))

DP_COUNTS = (1, 3, 10)


def bench_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    These are simulations of fixed workloads — repeating them measures
    the same deterministic run, so one round is the honest protocol.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def gt3_sweep():
    """Figs 5-7 / Table 1 substrate: GT3 runs at 1, 3, 10 DPs."""
    base = canonical_gt3(duration_s=DURATION_S)
    return run_scalability_sweep(base, dp_counts=DP_COUNTS)


@pytest.fixture(scope="session")
def gt4_sweep():
    """Figs 9-11 / Table 2 substrate: GT4 runs at 1, 3, 10 DPs."""
    base = canonical_gt4(duration_s=DURATION_S)
    return run_scalability_sweep(base, dp_counts=DP_COUNTS)
