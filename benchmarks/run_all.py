#!/usr/bin/env python
"""Benchmark regression driver: pin kernel throughput + tracing overhead.

Runs the observability/kernel micro-benchmarks and writes
``BENCH_kernel.json`` — the perf-regression baseline the ROADMAP's
"as fast as the hardware allows" goal is tracked against.  Compare a
fresh run to the committed baseline before merging kernel or transport
changes.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # full sizes
    PYTHONPATH=src python benchmarks/run_all.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/run_all.py --strict   # nonzero exit
                                                           # if overhead
                                                           # budget missed

The JSON records, per workload (bare callbacks / generator processes /
RPC round trips), the events-per-second with tracing disabled and
enabled plus the enabled-overhead percentage; ``pass_overhead_budget``
asserts the enabled overhead stays under 10% and the disabled guards
under 2%.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

# Allow running from a source checkout without installing.
_ROOT = Path(__file__).resolve().parent.parent
for _p in (str(_ROOT / "src"), str(_ROOT)):
    if _p not in sys.path:
        sys.path.insert(0, _p)

ENABLED_BUDGET_PCT = 10.0
DISABLED_BUDGET_PCT = 2.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="kernel/observability benchmark regression harness")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sizes + fewer repeats (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override best-of repeat count")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="output path (default: BENCH_kernel.json in "
                             "the repo root)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when the overhead budget is missed")
    args = parser.parse_args(argv)

    from benchmarks.bench_obs_overhead import measure_all

    t0 = time.time()
    results = measure_all(quick=args.quick, repeats=args.repeats)
    wall_s = time.time() - t0

    # The "callbacks" workload has no trace points: its enabled-vs-
    # disabled delta is pure guard cost, i.e. the disabled overhead.
    guard_pct = max(results["callbacks"]["overhead_pct"], 0.0)
    emitting = {k: v for k, v in results.items() if k != "callbacks"}
    worst = max(max(v["overhead_pct"], 0.0) for v in emitting.values())
    ok = worst < ENABLED_BUDGET_PCT and guard_pct < DISABLED_BUDGET_PCT

    report = {
        "bench": "kernel",
        "quick": args.quick,
        "unix_time": int(t0),
        "wall_s": round(wall_s, 2),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {name: {k: round(v, 2) for k, v in r.items()}
                      for name, r in results.items()},
        "tracing": {
            "disabled_guard_overhead_pct": round(guard_pct, 2),
            "enabled_overhead_worst_pct": round(worst, 2),
            "enabled_budget_pct": ENABLED_BUDGET_PCT,
            "disabled_budget_pct": DISABLED_BUDGET_PCT,
        },
        "pass_overhead_budget": ok,
    }

    out = Path(args.out) if args.out else \
        Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    for name, r in results.items():
        print(f"{name:>10}: disabled {r['disabled_per_s']:>12,.0f}/s   "
              f"enabled {r['enabled_per_s']:>12,.0f}/s   "
              f"overhead {r['overhead_pct']:+.1f}%")
    verdict = "PASS" if ok else "FAIL"
    print(f"tracing overhead: worst enabled {worst:.1f}% "
          f"(budget {ENABLED_BUDGET_PCT:.0f}%), disabled guards "
          f"{guard_pct:.1f}% (budget {DISABLED_BUDGET_PCT:.0f}%) -> {verdict}")
    print(f"wrote {out}")
    return 1 if (args.strict and not ok) else 0


if __name__ == "__main__":
    sys.exit(main())
