#!/usr/bin/env python
"""Benchmark regression driver: kernel throughput + chaos invariants.

Runs two regression baselines and writes one JSON file each:

* ``BENCH_kernel.json`` — the observability/kernel micro-benchmarks:
  events-per-second with tracing disabled and enabled per workload,
  plus the enabled-overhead percentage and a sampled wall-clock
  profile attributing CPU time to subsystem buckets (dispatch,
  site-drain, sync, decide, control, ...).  ``pass_overhead_budget``
  asserts the enabled overhead stays under 10% and the disabled guards
  under 2%.
* ``BENCH_faults.json`` — the chaos matrix (``bench_chaos_matrix``):
  every fault scenario x {timeout-only baseline, resilient stack},
  with brokered/timeout counts, policy-action tallies, and kernel leak
  counters per cell.  ``pass_chaos_invariants`` asserts zero kernel
  leaks, non-zero brokered throughput everywhere, and a strict
  resilient-over-baseline gain on the recoverable scenarios.
* ``BENCH_scale.json`` — the k x Grid3/OSG scale sweep
  (``bench_scale``): optimized (fast paths + delta sync) vs pre-change
  baseline per cell; ``pass_scale_floor`` asserts the optimized stack
  is at least 2x faster at k=10.
* ``BENCH_autoscale.json`` — the closed-loop autoscale bench
  (``bench_autoscale``): 10x-OSG and 100x diurnal runs starting from
  one decision point; ``pass_autoscale`` asserts convergence to the
  paper's 4-5 decision points at 10x, strictly more at 100x, and
  bit-identical same-seed event journals.

Compare a fresh run to the committed baselines before merging kernel,
transport, fault, or resilience changes.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # full sizes
    PYTHONPATH=src python benchmarks/run_all.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/run_all.py --strict   # nonzero exit
                                                           # on any missed
                                                           # budget/invariant
    PYTHONPATH=src python benchmarks/run_all.py --skip-kernel  # chaos only
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

# Allow running from a source checkout without installing.
_ROOT = Path(__file__).resolve().parent.parent
for _p in (str(_ROOT / "src"), str(_ROOT)):
    if _p not in sys.path:
        sys.path.insert(0, _p)

ENABLED_BUDGET_PCT = 10.0
DISABLED_BUDGET_PCT = 2.0

#: Quick-mode chaos sweep: one scenario per fault family, shorter runs.
QUICK_CHAOS_SCENARIOS = ("dp_crash_restart", "partition2", "flaky_dp")
QUICK_CHAOS_DURATION_S = 600.0

#: Quick-mode autoscale bench: short horizon, still enough control
#: windows to converge at 10x (the 100x cell runs half of this).
QUICK_AUTOSCALE_DURATION_S = 1200.0


def profile_subsystems(quick: bool) -> dict:
    """One profiled smoke run -> wall-clock attribution by subsystem.

    Samples the experiment thread's stack (``repro.obs.profiler``)
    through a full telemetry-on smoke run and reports where the wall
    clock went: dispatch, site-drain, sync, decide, control, check,
    telemetry, net, workload.
    """
    from benchmarks.bench_obs_overhead import run_telemetry_experiment
    from repro.obs.profiler import SubsystemProfiler

    with SubsystemProfiler(interval_s=0.002) as prof:
        run_telemetry_experiment(duration_s=600 if quick else 1800,
                                 n_clients=8 if quick else 24,
                                 tracing=True)
    return prof.report()


def run_kernel_bench(args) -> bool:
    """Kernel/tracing micro-bench -> BENCH_kernel.json; True on pass."""
    from benchmarks.bench_obs_overhead import measure_all

    t0 = time.time()
    results = measure_all(quick=args.quick, repeats=args.repeats)
    profile = profile_subsystems(quick=args.quick)
    wall_s = time.time() - t0

    # The "callbacks" workload has no trace points: its enabled-vs-
    # disabled delta is pure guard cost, i.e. the disabled overhead.
    guard_pct = max(results["callbacks"]["overhead_pct"], 0.0)
    emitting = {k: v for k, v in results.items() if k != "callbacks"}
    worst = max(max(v["overhead_pct"], 0.0) for v in emitting.values())
    ok = worst < ENABLED_BUDGET_PCT and guard_pct < DISABLED_BUDGET_PCT

    report = {
        "bench": "kernel",
        "quick": args.quick,
        "unix_time": int(t0),
        "wall_s": round(wall_s, 2),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {name: {k: round(v, 2) for k, v in r.items()}
                      for name, r in results.items()},
        "tracing": {
            "disabled_guard_overhead_pct": round(guard_pct, 2),
            "enabled_overhead_worst_pct": round(worst, 2),
            "enabled_budget_pct": ENABLED_BUDGET_PCT,
            "disabled_budget_pct": DISABLED_BUDGET_PCT,
        },
        "profile": profile,
        "pass_overhead_budget": ok,
    }

    out = Path(args.out) if args.out else \
        Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    for name, r in results.items():
        print(f"{name:>10}: disabled {r['disabled_per_s']:>12,.0f}/s   "
              f"enabled {r['enabled_per_s']:>12,.0f}/s   "
              f"overhead {r['overhead_pct']:+.1f}%")
    top = ", ".join(f"{name} {b['pct']:.0f}%"
                    for name, b in list(profile["buckets"].items())[:4])
    print(f"subsystem profile ({profile['samples']} samples over "
          f"{profile['wall_s']:.1f}s): {top}")
    verdict = "PASS" if ok else "FAIL"
    print(f"tracing overhead: worst enabled {worst:.1f}% "
          f"(budget {ENABLED_BUDGET_PCT:.0f}%), disabled guards "
          f"{guard_pct:.1f}% (budget {DISABLED_BUDGET_PCT:.0f}%) -> {verdict}")
    print(f"wrote {out}")
    return ok


def run_chaos_bench(args) -> bool:
    """Chaos matrix sweep -> BENCH_faults.json; True on pass."""
    from benchmarks.bench_chaos_matrix import (
        CHAOS_DURATION_S,
        RECOVERABLE,
        check_invariants,
        run_matrix,
    )

    scenarios = QUICK_CHAOS_SCENARIOS if args.quick else None
    duration_s = QUICK_CHAOS_DURATION_S if args.quick else CHAOS_DURATION_S
    t0 = time.time()
    matrix = run_matrix(scenarios=scenarios, duration_s=duration_s)
    wall_s = time.time() - t0
    problems = check_invariants(matrix)

    report = {
        "bench": "faults",
        "quick": args.quick,
        "unix_time": int(t0),
        "wall_s": round(wall_s, 2),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "duration_s": duration_s,
        "recoverable_scenarios": list(RECOVERABLE),
        "matrix": matrix,
        "recovery_gain": {
            s: cells["resilient"]["handled"] - cells["baseline"]["handled"]
            for s, cells in matrix.items()},
        "problems": problems,
        "pass_chaos_invariants": not problems,
    }

    out = Path(args.chaos_out) if args.chaos_out else \
        Path(__file__).resolve().parent.parent / "BENCH_faults.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    for scenario, cells in matrix.items():
        base, res = cells["baseline"], cells["resilient"]
        print(f"{scenario:>18}: baseline {base['handled']:>4} brokered   "
              f"resilient {res['handled']:>4}   "
              f"gain {res['handled'] - base['handled']:+4}   "
              f"faults {res['faults_injected']}")
    verdict = "PASS" if not problems else "FAIL"
    print(f"chaos invariants (no kernel leaks, throughput > 0, resilient "
          f"beats baseline on {len(RECOVERABLE)} recoverable scenarios) "
          f"-> {verdict}")
    for problem in problems:
        print(f"  VIOLATION: {problem}")
    print(f"wrote {out}")
    return not problems


def run_scale_bench(args) -> bool:
    """Scale sweep -> BENCH_scale.json; True when the floor holds."""
    from benchmarks.bench_scale import (
        CELL_DURATION_S,
        FULL_CELLS,
        QUICK_CELLS,
        build_report,
        run_sweep,
    )

    cells = QUICK_CELLS if args.quick else FULL_CELLS
    rows = run_sweep(cells, CELL_DURATION_S)
    report = build_report(rows, quick=args.quick)

    out = Path(args.scale_out) if args.scale_out else \
        Path(__file__).resolve().parent.parent / "BENCH_scale.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    verdict = "PASS" if report["pass_scale_floor"] else "FAIL"
    print(f"scale floor (k=10 >= {report['k10_speedup_floor']:.0f}x): "
          f"min {report['k10_speedup_min']} -> {verdict}")
    print(f"wrote {out}")
    return report["pass_scale_floor"]


def run_autoscale_bench(args) -> bool:
    """Autoscale convergence -> BENCH_autoscale.json; True on pass."""
    from benchmarks.bench_autoscale import (
        DURATION_S,
        TARGET_10X,
        run_bench,
    )

    duration_s = QUICK_AUTOSCALE_DURATION_S if args.quick else DURATION_S
    det_s = QUICK_AUTOSCALE_DURATION_S if args.quick else 900.0
    t0 = time.time()
    result = run_bench(duration_s=duration_s,
                       determinism_duration_s=det_s)
    wall_s = time.time() - t0

    report = {
        "bench": "autoscale",
        "quick": args.quick,
        "unix_time": int(t0),
        "wall_s": round(wall_s, 2),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "duration_s": duration_s,
        **result,
    }

    out = Path(args.autoscale_out) if args.autoscale_out else \
        Path(__file__).resolve().parent.parent / "BENCH_autoscale.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    for name, cell in result["cells"].items():
        print(f"{name:>10}: {cell['clients']} clients, "
              f"dps {cell['initial_dps']} -> {cell['converged_dps']} "
              f"(resp median {cell['response_median_s']}s, "
              f"moved {cell['clients_moved']})")
    det = result["determinism"]
    print(f"determinism: {'IDENTICAL' if det['identical'] else 'DIVERGED'} "
          f"({det['run_a']['events']} events, "
          f"{det['ctl_entries_journaled']} ctl.scale entries)")
    verdict = "PASS" if result["pass_autoscale"] else "FAIL"
    print(f"autoscale convergence (10x in {TARGET_10X}, 100x strictly "
          f"more, journals identical) -> {verdict}")
    for problem in result["problems"]:
        print(f"  VIOLATION: {problem}")
    print(f"wrote {out}")
    return result["pass_autoscale"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark regression harness (kernel + chaos + scale)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sizes + fewer repeats (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override best-of repeat count (kernel bench)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="kernel report path (default: BENCH_kernel.json "
                             "in the repo root)")
    parser.add_argument("--chaos-out", default=None, metavar="PATH",
                        help="chaos report path (default: BENCH_faults.json "
                             "in the repo root)")
    parser.add_argument("--scale-out", default=None, metavar="PATH",
                        help="scale report path (default: BENCH_scale.json "
                             "in the repo root)")
    parser.add_argument("--autoscale-out", default=None, metavar="PATH",
                        help="autoscale report path (default: "
                             "BENCH_autoscale.json in the repo root)")
    parser.add_argument("--skip-kernel", action="store_true",
                        help="skip the kernel/tracing micro-bench")
    parser.add_argument("--skip-chaos", action="store_true",
                        help="skip the chaos matrix sweep")
    parser.add_argument("--skip-scale", action="store_true",
                        help="skip the scale sweep")
    parser.add_argument("--skip-autoscale", action="store_true",
                        help="skip the autoscale convergence bench")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any budget or invariant is missed")
    args = parser.parse_args(argv)

    ok = True
    if not args.skip_kernel:
        ok = run_kernel_bench(args) and ok
    if not args.skip_chaos:
        ok = run_chaos_bench(args) and ok
    if not args.skip_scale:
        ok = run_scale_bench(args) and ok
    if not args.skip_autoscale:
        ok = run_autoscale_bench(args) and ok
    return 1 if (args.strict and not ok) else 0


if __name__ == "__main__":
    sys.exit(main())
