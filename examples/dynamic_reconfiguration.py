#!/usr/bin/env python
"""Dynamic reconfiguration: growing the decision-point set under load.

The paper's §5 proposes (but does not implement) a third-party observer
that watches decision points for saturation signals and deploys new
decision points on the fly.  This example runs that live: a deployment
starts with ONE decision point, the client fleet ramps up, the
saturation detector fires, and the observer adds decision points and
rebalances clients — watch the throughput recover.

Run:  python examples/dynamic_reconfiguration.py
"""

import numpy as np

from repro.core import ReconfigurationObserver, SaturationDetector
from repro.experiments import smoke_config, run_experiment
from repro.metrics import windowed_rate


def main() -> None:
    config = smoke_config(
        name="dyn-reconfig", decision_points=1, n_clients=48,
        duration_s=1200.0, n_sites=30, total_cpus=1500,
        ramp_fraction=0.3,
    )

    observers = {}

    def install_observer(sim, deployment, **_):
        detector = SaturationDetector(sim, deployment.decision_points.values(),
                                      interval_s=60.0, queue_threshold=8)
        detector.start()
        observer = ReconfigurationObserver(sim, deployment, detector,
                                           cooldown_s=180.0,
                                           max_decision_points=5)
        observers["detector"] = detector
        observers["observer"] = observer

    print("Static run (1 decision point, no reconfiguration)...")
    static = run_experiment(config)

    print("Adaptive run (observer may add decision points)...")
    adaptive = run_experiment(config, deployment_hook=install_observer)

    obs = observers["observer"]
    det = observers["detector"]
    print(f"\nSaturation signals raised: {len(det.signals)}")
    print("Reconfiguration events:")
    for e in obs.events:
        print(f"  t={e.time:7.1f}s {e.action:>9}: {e.saturated_dp} -> "
              f"{e.new_dp} ({e.clients_moved} clients moved)")
    print(f"Final deployment size: "
          f"{len(adaptive.deployment.decision_points)} decision points")

    for name, res in (("static", static), ("adaptive", adaptive)):
        d = res.diperf()
        q = res.trace.query_arrays()
        # Throughput in the final third of the run (post-adaptation).
        _, rates = windowed_rate(q["responded_at"],
                                 config.duration_s * 2 / 3,
                                 config.duration_s, 60.0)
        print(f"\n{name:>9}: mean_thr={d.mean_throughput():5.2f} q/s  "
              f"final-third thr={np.mean(rates):5.2f} q/s  "
              f"avg resp={d.response_stats().average:6.1f} s  "
              f"timeouts={d.n_timed_out}")

    gain = (adaptive.diperf().mean_throughput()
            / max(static.diperf().mean_throughput(), 1e-9))
    print(f"\nAdaptive/static throughput ratio: {gain:.2f}x")


if __name__ == "__main__":
    main()
