#!/usr/bin/env python
"""Euryale: late-binding workflow execution over DI-GRUBER.

Runs a small physics-style DAG (generate → 4 parallel analyses →
merge) through the full Euryale chain: DagMan drives each node's
prescript (GRUBER site selection + input staging + replica
registration), Condor-G submission, and postscript (output collection,
popularity updates).  One analysis job is killed mid-run to show the
late-binding replanning path.

Run:  python examples/euryale_workflow.py
"""

from repro.core import DecisionPoint, LeastUsedSelector
from repro.euryale import (
    CondorGSubmitter,
    DagMan,
    DagNode,
    EuryalePlanner,
    FileSpec,
    PlannerJob,
    ReplicaCatalog,
)
from repro.grid import GridBuilder, Job
from repro.net import GT3_PROFILE, Network, PairwiseWanLatency
from repro.sim import RngRegistry, Simulator


def make_node(name, parents, inputs, outputs, duration, cpus=2):
    job = Job(vo="atlas", group="atlas-higgs", user="analyst",
              cpus=cpus, duration_s=duration)
    return DagNode(name, PlannerJob(job=job,
                                    inputs=[FileSpec(*i) for i in inputs],
                                    outputs=[FileSpec(*o) for o in outputs]),
                   parents=parents)


def main() -> None:
    sim = Simulator()
    rng = RngRegistry(23)
    net = Network(sim, PairwiseWanLatency(rng.stream("wan")),
                  kb_transfer_s=0.01)
    grid = GridBuilder(sim, rng.stream("grid")).build(
        n_sites=12, total_cpus=600, n_vos=1, groups_per_vo=1)

    dp = DecisionPoint(sim, net, "dp0", grid, GT3_PROFILE, rng.stream("dp"),
                       monitor_interval_s=120.0)
    dp.start(neighbors=[])

    catalog = ReplicaCatalog()
    planner = EuryalePlanner(
        sim, net, grid,
        submitter=CondorGSubmitter(sim, net, grid),
        catalog=catalog,
        selector=LeastUsedSelector(rng.stream("sel")),
        rng=rng.stream("fallback"),
        decision_point="dp0", max_retries=3,
        data_aware=True)  # analyses co-locate with events.root

    dag = DagMan(sim, planner)
    dag.add_node(make_node("generate", [], [("config.xml", 1.0)],
                           [("events.root", 200.0)], duration=600.0, cpus=4))
    for i in range(4):
        dag.add_node(make_node(
            f"analysis{i}", ["generate"],
            [("events.root", 200.0)], [(f"histo{i}.root", 20.0)],
            duration=900.0))
    dag.add_node(make_node(
        "merge", [f"analysis{i}" for i in range(4)],
        [(f"histo{i}.root", 20.0) for i in range(4)],
        [("result.root", 5.0)], duration=300.0))

    done = dag.run()

    # Fault injection: kill analysis2 shortly after it starts running.
    def kill_when_running():
        victim = dag.nodes["analysis2"].planner_job.job
        while victim.started_at is None:
            yield 30.0
        yield 60.0
        if victim.state.value == "running":
            grid.site(victim.site).fail_running_job(victim.jid)
            print(f"[t={sim.now:7.1f}] killed analysis2 at {victim.site} "
                  "(Euryale will replan it)")

    sim.process(kill_when_running())
    sim.run(until=30000.0)

    print(f"\nDAG finished: {done.value}")
    print(f"Replans performed: {planner.replans}")
    print("\nNode states and placements:")
    for name, node in dag.nodes.items():
        job = node.planner_job.job
        print(f"  {name:<10} {node.state:<7} site={job.site or '-':<22} "
              f"start={job.started_at if job.started_at is not None else float('nan'):9.1f} "
              f"replans={job.replans}")

    print("\nReplica catalog:")
    print(f"  registered files: {len(catalog)}")
    print(f"  most popular: {catalog.most_popular(3)}")
    assert catalog.has_replica("result.root", "collection-area")


if __name__ == "__main__":
    main()
