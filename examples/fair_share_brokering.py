#!/usr/bin/env python
"""USLA-aware brokering: fair shares across competing VOs.

Three VOs share a grid under grid-level fair-share USLAs (the paper's
Maui-semantics × WS-Agreement representation):

* ``atlas``  — 50% target of every site,
* ``cms``    — 25% upper limit,
* ``cdf``    — 25% upper limit.

Each VO drives jobs through a USLA-aware decision point; a GRUBER
queue manager also throttles cms at the submission host.  At the end,
the delivered CPU shares are verified against the published rules.

Run:  python examples/fair_share_brokering.py
"""

from repro.core import (
    DecisionPoint,
    LeastUsedSelector,
    QueueManager,
)
from repro.grid import GridBuilder, Job
from repro.net import GT3_PROFILE, Network, PairwiseWanLatency
from repro.sim import RngRegistry, Simulator
from repro.usla import (
    Agreement,
    AgreementContext,
    ServiceTerm,
    parse_policy,
    verify_usage,
)

DURATION = 3600.0
VOS = ("atlas", "cms", "cdf")


def publish_shares(dp, grid):
    """Publish per-site fair-share agreements to the decision point."""
    policy_text = "\n".join(
        f"{site}:atlas=50%\n{site}:cms=25%+\n{site}:cdf=25%+"
        for site in grid.site_names)
    rules = parse_policy(policy_text)
    ag = Agreement(
        name="grid-shares",
        context=AgreementContext(provider="grid", consumer="all-vos"),
        terms=[ServiceTerm(f"t{i}", r) for i, r in enumerate(rules)])
    dp.engine.usla_store.publish(ag)
    dp.engine.invalidate_policy_cache()


def vo_submitter(sim, net, grid, dp, vo, rng, rate_s, queue_manager=None):
    """A simple per-VO submission loop using the brokering protocol."""
    selector = LeastUsedSelector(rng)

    def broker_one(job):
        ev = net.rpc(f"{vo}-host", dp.node_id, "get_state",
                     {"vo": job.vo, "cpus": job.cpus})
        try:
            availabilities = yield ev
        except Exception:
            return
        site = selector.select(availabilities, job.cpus)
        if site is None:
            return  # USLA filter says: no headroom anywhere right now
        yield net.rpc(f"{vo}-host", dp.node_id, "report_dispatch",
                      {"site": site, "vo": job.vo, "cpus": job.cpus})
        grid.site(site).submit(job)

    def release(job):
        sim.process(broker_one(job))

    def submit_loop():
        while sim.now < DURATION:
            job = Job(vo=vo, group=f"{vo}-g0", user=f"{vo}-u0",
                      cpus=2, duration_s=float(rng.uniform(300, 900)))
            job.mark_created(sim.now)
            if queue_manager is not None:
                queue_manager.enqueue(job)
            else:
                release(job)
            yield rate_s

    sim.process(submit_loop())
    return release


def main() -> None:
    sim = Simulator()
    rng = RngRegistry(11)
    net = Network(sim, PairwiseWanLatency(rng.stream("wan")),
                  kb_transfer_s=0.01)
    grid = GridBuilder(sim, rng.stream("grid")).build(
        n_sites=20, total_cpus=800, n_vos=3, groups_per_vo=1)

    dp = DecisionPoint(sim, net, "dp0", grid, GT3_PROFILE,
                       rng.stream("dp"), usla_aware=True,
                       monitor_interval_s=120.0)
    publish_shares(dp, grid)
    dp.start(neighbors=[])

    # cms additionally runs a GRUBER queue manager that holds jobs at
    # the submission host while cms exceeds its grid-wide share.
    from repro.net.transport import Endpoint
    for vo in VOS:
        Endpoint(net, f"{vo}-host")

    cms_release = {"fn": None}
    policy = dp.engine.usla_store.policy_engine()

    def cms_usage():
        used = sum(s.vo_cpu_seconds.get("cms", 0.0)
                   for s in grid.sites.values())
        total = sum(sum(s.vo_cpu_seconds.values()) or 1.0
                    for s in grid.sites.values())
        return used / total

    qm = QueueManager(sim, "cms", policy, usage_probe=cms_usage,
                      release=lambda job: cms_release["fn"](job),
                      interval_s=30.0, batch_size=10,
                      provider=grid.site_names[0])

    # atlas and cdf submit directly; cms goes through the queue manager.
    vo_submitter(sim, net, grid, dp, "atlas", rng.stream("atlas"), 4.0)
    cms_release["fn"] = vo_submitter(sim, net, grid, dp, "cms",
                                     rng.stream("cms"), 4.0,
                                     queue_manager=qm)
    vo_submitter(sim, net, grid, dp, "cdf", rng.stream("cdf"), 12.0)
    qm.start()

    sim.run(until=DURATION)

    # Delivered shares, grid-wide.
    delivered = {vo: sum(s.vo_cpu_seconds.get(vo, 0.0)
                         for s in grid.sites.values()) for vo in VOS}
    total = sum(delivered.values())
    print("Delivered CPU-seconds by VO:")
    for vo in VOS:
        print(f"  {vo:<6} {delivered[vo]:12,.0f}  ({delivered[vo] / total:6.1%})")

    usage = {("grid", vo): delivered[vo] / total for vo in VOS}
    report = verify_usage(parse_policy(
        "grid:atlas=50%\ngrid:cms=25%+\ngrid:cdf=25%+"), usage,
        tolerance=0.05)
    print("\nUSLA compliance verification:")
    print(report.summary())
    print(f"\ncms jobs held at the submission host: "
          f"{qm.held_ticks} hold-ticks, {qm.released} released")
    print("compliant:", report.compliant)


if __name__ == "__main__":
    main()
