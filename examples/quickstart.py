#!/usr/bin/env python
"""Quickstart: broker a workload through DI-GRUBER and read the metrics.

Builds a small emulated grid, deploys three cooperating decision
points, attaches a fleet of submission hosts, runs ten simulated
minutes, and prints the DiPerF-style summary plus the paper's five
metrics.

Run:  python examples/quickstart.py
"""

from repro.experiments import ExperimentConfig, run_experiment
from repro.workloads import JobModel


def main() -> None:
    config = ExperimentConfig(
        name="quickstart",
        decision_points=3,        # a small DI-GRUBER mesh
        n_clients=20,             # submission hosts, ramped in slowly
        duration_s=600.0,         # ten simulated minutes
        n_sites=40,               # a Grid3-ish fabric slice
        total_cpus=4000,
        n_vos=4,
        groups_per_vo=3,
        sync_interval_s=60.0,     # decision points exchange state every minute
        job_model=JobModel(duration_mean_s=240.0, min_duration_s=20.0),
        seed=7,
    )

    print("Running DI-GRUBER quickstart (this is simulated time — the "
          "run finishes in a second or two)...\n")
    result = run_experiment(config)

    print(result.summary())
    print()

    diperf = result.diperf(window_s=60.0)
    times, throughput = diperf.throughput_series()
    print("Throughput by minute (queries/s):")
    print("  " + " ".join(f"{v:5.2f}" for v in throughput))

    print("\nPer-decision-point operations served:")
    for dp_id, ops in sorted(result.dp_ops().items()):
        print(f"  {dp_id}: {ops}")

    print("\nTable-style breakdown:")
    for category in ("handled", "not_handled", "all"):
        row = result.table_row(category)
        print(f"  {category:<12} {row['pct_req']:5.1f}% of requests, "
              f"QTime {row['qtime_s']:6.1f} s, Util {row['util_pct']:5.1f}%")


if __name__ == "__main__":
    main()
