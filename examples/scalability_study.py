#!/usr/bin/env python
"""Scalability study: how many decision points does a grid need?

A condensed version of the paper's headline experiment: the same
client fleet is brokered by 1, 3, and 5 decision points; throughput,
response time, and the handled-request fraction are compared, and
GRUB-SIM replays the single-decision-point trace to predict the
required deployment size.

Run:  python examples/scalability_study.py   (~a minute of wall time)
"""

from repro.experiments import smoke_config
from repro.experiments.figures import (
    run_scalability_sweep,
    table_overall_performance,
)
from repro.grubsim import DPPerformanceModel, GrubSim
from repro.net import GT3_PROFILE


def main() -> None:
    base = smoke_config(
        name="study", n_clients=48, duration_s=900.0,
        n_sites=30, total_cpus=1500,
    )
    print(f"Sweeping decision-point counts with {base.n_clients} clients, "
          f"{base.duration_s:.0f} s runs...\n")
    results = run_scalability_sweep(base, dp_counts=(1, 3, 5))

    print(f"{'DPs':>4} {'peak thr':>10} {'avg resp':>10} {'handled':>9} "
          f"{'timeouts':>9} {'util':>7}")
    for k, res in sorted(results.items()):
        d = res.diperf()
        fb = res.client_fallbacks()
        print(f"{k:>4} {d.throughput_stats().peak:>9.2f}q/s "
              f"{d.response_stats().average:>9.1f}s "
              f"{fb['handled']:>9} {fb['timeout']:>9} "
              f"{res.utilization('all'):>6.1%}")

    print("\n" + table_overall_performance(results))

    # GRUB-SIM: replay the 1-DP trace and ask how many DPs were needed.
    model = DPPerformanceModel.from_profile(GT3_PROFILE)
    sized = GrubSim(model).replay(results[1].trace, initial_dps=1,
                                  name="study-1dp")
    print("\n" + sized.summary())
    print(f"\nGRUB-SIM says this load needs {sized.final_dps} decision "
          f"point(s); the sweep above shows the improvement it predicts.")


if __name__ == "__main__":
    main()
