#!/usr/bin/env python
"""Automated USLA negotiation, then enforcement through the broker.

Three VOs negotiate CPU shares with a site provider (Cremona-style
WS-Agreement negotiation):

* atlas asks for 50% — full headroom, accepted as offered;
* cms asks for 40% — only 30% remains under the provider's 80% commit
  cap, so the provider counters and cms accepts the counter;
* cdf asks for 20% — rejected (no headroom left above the floor).

The accepted agreements land in the decision point's USLA store, so the
USLA-aware engine immediately enforces them on availability queries.

Run:  python examples/usla_negotiation.py
"""

from repro.core import DecisionPoint
from repro.grid import GridBuilder
from repro.net import GT3_PROFILE, Network, PairwiseWanLatency
from repro.sim import RngRegistry, Simulator
from repro.usla import Agreement, AgreementContext, FairShareRule, ServiceTerm
from repro.usla.negotiation import ConsumerNegotiator, ProviderNegotiator


def make_offer(site, vo, pct):
    return Agreement(
        name=f"{site}-{vo}",
        context=AgreementContext(provider=site, consumer=vo),
        terms=[ServiceTerm("cpu-share", FairShareRule(site, vo, pct))])


def main() -> None:
    sim = Simulator()
    rng = RngRegistry(31)
    net = Network(sim, PairwiseWanLatency(rng.stream("wan")))
    grid = GridBuilder(sim, rng.stream("grid")).uniform(n_sites=1,
                                                        cpus_per_site=100)
    site = grid.site_names[0]

    # The decision point's store doubles as the provider's agreement
    # repository, so accepted shares are instantly enforceable.
    dp = DecisionPoint(sim, net, "dp0", grid, GT3_PROFILE, rng.stream("dp"),
                       usla_aware=True, monitor_interval_s=600.0)
    dp.start(neighbors=[])
    provider = ProviderNegotiator(net, f"{site}-negotiator",
                                  dp.engine.usla_store,
                                  max_commit_fraction=0.8)

    asks = (("atlas", 50.0, 0.5), ("cms", 40.0, 0.5), ("cdf", 20.0, 0.5))
    outcomes = {}

    def negotiate_all():
        for vo, pct, min_frac in asks:
            consumer = ConsumerNegotiator(net, f"{vo}-negotiator", sim)
            outcome = yield sim.process(consumer.negotiate(
                f"{site}-negotiator", make_offer(site, vo, pct),
                min_fraction=min_frac))
            outcomes[vo] = outcome
            dp.engine.invalidate_policy_cache()

    sim.process(negotiate_all())
    sim.run(until=60.0)

    print("Negotiation outcomes:")
    for vo, pct, _ in asks:
        o = outcomes[vo]
        granted = (f"{o.agreement.terms[0].rule.percent:.0f}%"
                   if o.agreement else "-")
        print(f"  {vo:<6} asked {pct:.0f}%  ->  {o.status:<9} "
              f"granted {granted}  (rounds: {o.rounds})")

    print(f"\nProvider stats: offers={provider.offers_seen} "
          f"accepted={provider.accepted} countered={provider.countered} "
          f"rejected={provider.rejected}")

    # The shares are now live: the USLA-aware engine filters the
    # availability view per VO.
    print("\nUSLA-filtered availability at the decision point "
          f"({site}, 100 CPUs total):")
    for vo in ("atlas", "cms", "cdf", "unlisted-vo"):
        avail = dp.engine.availabilities(vo=vo, now=sim.now)[site]
        print(f"  {vo:<12} sees {avail:5.1f} free CPUs")


if __name__ == "__main__":
    main()
