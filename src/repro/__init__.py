"""DI-GRUBER reproduction (SC 2005).

A production-quality Python reimplementation of the GRUBER / DI-GRUBER
grid USLA resource-brokering system of Dumitrescu, Raicu & Foster,
together with every substrate its evaluation depends on: a
discrete-event simulation kernel, a WAN/service-container model, an
emulated Grid3-scale fabric, the Euryale concrete planner, the DiPerF
performance-testing harness, and the GRUB-SIM trace-driven
decision-point sizing simulator.

Quick start::

    from repro.experiments import ExperimentConfig, run_scalability
    result = run_scalability(ExperimentConfig(decision_points=3))
    print(result.summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
