"""Analytic queueing models used to validate the simulation.

The paper's client/decision-point system is, in queueing terms, a
*machine-repairman* (finite-source) model: N submission hosts each keep
one query in flight, served by a station of rate ``mu`` per decision
point.  Closed forms for that model give the expected throughput and
response time, and the validation tests check the DES against them —
the reproduction's numbers are then model-backed, not just plausible.
"""

from repro.analysis.queueing import (
    closed_loop_equilibrium,
    machine_repairman,
    mmc_metrics,
)

__all__ = ["closed_loop_equilibrium", "machine_repairman", "mmc_metrics"]
