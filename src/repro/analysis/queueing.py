"""Closed-form queueing results.

Three models cover the regimes the experiments traverse:

* :func:`mmc_metrics` — the open M/M/c queue (Erlang C), for the
  service containers under open load;
* :func:`machine_repairman` — the finite-source M/M/c queue ("machine
  repairman"), which *is* the client/decision-point loop: N clients,
  each thinking for ``think_s`` then holding one request until served;
* :func:`closed_loop_equilibrium` — the asymptotic bounds commonly used
  for closed systems, cheap and good enough for sizing checks
  (GRUB-SIM's demand model is its corollary).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["QueueMetrics", "mmc_metrics", "machine_repairman",
           "closed_loop_equilibrium"]


@dataclass(frozen=True)
class QueueMetrics:
    """Steady-state performance of a queueing station."""

    throughput: float       # completions per second
    response_s: float       # mean time in station (wait + service)
    utilization: float      # fraction of server capacity busy
    mean_in_system: float   # jobs at the station (queued + in service)


def mmc_metrics(arrival_rate: float, service_rate: float, c: int
                ) -> QueueMetrics:
    """Open M/M/c steady state (requires ``arrival < c * service``)."""
    if arrival_rate < 0 or service_rate <= 0 or c < 1:
        raise ValueError("need arrival >= 0, service > 0, c >= 1")
    rho = arrival_rate / (c * service_rate)
    if rho >= 1.0:
        raise ValueError(f"unstable queue: rho={rho:.3f} >= 1")
    a = arrival_rate / service_rate
    # Erlang C probability of waiting.
    summation = sum(a ** k / math.factorial(k) for k in range(c))
    last = a ** c / (math.factorial(c) * (1 - rho))
    p_wait = last / (summation + last)
    wq = p_wait / (c * service_rate - arrival_rate)
    response = wq + 1.0 / service_rate
    return QueueMetrics(throughput=arrival_rate, response_s=response,
                        utilization=rho,
                        mean_in_system=arrival_rate * response)


def machine_repairman(n_clients: int, think_s: float, service_rate: float,
                      c: int = 1) -> QueueMetrics:
    """Finite-source M/M/c: N clients cycling think → request → served.

    This is the paper's client/decision-point loop: each submission
    host keeps at most one query outstanding.  ``think_s`` is the mean
    time between receiving a response and issuing the next query
    (client-side stack work + WAN, which consume no server capacity).
    """
    if n_clients < 1 or think_s < 0 or service_rate <= 0 or c < 1:
        raise ValueError("invalid machine-repairman parameters")
    lam = 1.0 / think_s if think_s > 0 else float("inf")
    mu = service_rate

    if think_s == 0:
        # Degenerate: clients resubmit instantly; the station is
        # saturated whenever N >= c.
        thr = min(n_clients, c) * mu
        mean_in_system = float(n_clients)
        response = n_clients / thr
        return QueueMetrics(throughput=thr, response_s=response,
                            utilization=min(n_clients / c, 1.0),
                            mean_in_system=mean_in_system)

    # Birth-death chain on k = requests at the station (0..N).
    # birth rate (k -> k+1): (N - k) * lam ; death rate: min(k, c) * mu.
    weights = [1.0]
    for k in range(1, n_clients + 1):
        birth = (n_clients - (k - 1)) * lam
        death = min(k, c) * mu
        weights.append(weights[-1] * birth / death)
    total = sum(weights)
    probs = [w / total for w in weights]
    mean_in_system = sum(k * p for k, p in enumerate(probs))
    busy = sum(min(k, c) * p for k, p in enumerate(probs))
    throughput = busy * mu
    # Little's law over the station.
    response = mean_in_system / throughput if throughput > 0 else 0.0
    return QueueMetrics(throughput=throughput, response_s=response,
                        utilization=busy / c,
                        mean_in_system=mean_in_system)


def closed_loop_equilibrium(n_clients: int, think_s: float,
                            service_rate: float, c: int = 1
                            ) -> QueueMetrics:
    """Asymptotic bounds for the closed loop (cheap sizing estimate).

    ``X = min(c * mu, N / (think + 1/mu))`` and ``R = N/X - think`` —
    the textbook balanced bounds; exact values come from
    :func:`machine_repairman`.
    """
    if n_clients < 1 or think_s < 0 or service_rate <= 0 or c < 1:
        raise ValueError("invalid closed-loop parameters")
    service_s = 1.0 / service_rate
    x = min(c * service_rate, n_clients / (think_s + service_s))
    r = n_clients / x - think_s
    return QueueMetrics(throughput=x, response_s=r,
                        utilization=min(x / (c * service_rate), 1.0),
                        mean_in_system=x * r)
