"""Correctness plane: online invariants, differential replay, lint.

Three enforcement layers for claims the rest of the codebase makes but
nothing previously verified continuously:

* :mod:`repro.check.invariants` — an online :class:`InvariantChecker`
  registered on the simulator (``run --check``): conservation and
  accounting invariants asserted at every checkpoint, not just at the
  end of a run.
* :mod:`repro.check.differ` — differential replay: run a config pair
  (fast paths on/off, indexed vs legacy view, delta vs flood sync,
  spans on/off, 1 vs N workers) and bisect to the *first divergent
  event* instead of a bare "results differ".
* :mod:`repro.check.lint` — AST determinism lint: wall-clock, ambient
  ``random``, unordered-set iteration, and unseeded-numpy use have no
  place in simulation paths.
"""

from repro.check.differ import PAIRS, DiffReport, run_pair
from repro.check.digest import EventJournal, JournalEntry, first_divergence
from repro.check.invariants import (
    InvariantChecker,
    InvariantViolation,
    Violation,
    check_snapshot_invariants,
)
from repro.check.lint import Finding, lint_paths, lint_source

__all__ = [
    "EventJournal",
    "JournalEntry",
    "first_divergence",
    "InvariantChecker",
    "InvariantViolation",
    "Violation",
    "check_snapshot_invariants",
    "DiffReport",
    "PAIRS",
    "run_pair",
    "Finding",
    "lint_paths",
    "lint_source",
]
