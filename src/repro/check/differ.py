"""Differential replay: run a config pair, bisect the first divergence.

PRs past made equivalence claims that a bare "results differ" cannot
debug: fast paths are result-preserving, the indexed view is
semantically identical to the legacy one, spans on/off leaves runs
event-identical, ``run_parallel`` is worker-count independent, and
delta sync converges to the same views as flooding.  Each claim maps to
a named **pair** here; both sides run with journal probes installed
(:func:`repro.check.digest.install_probes`) and the chained digests are
compared, bisecting to the first divergent semantic event with its span
context.

Pair semantics:

* ``fast-paths`` — kernel fast paths on vs off, state-view index pinned
  on both sides (the kernel claim in isolation);
* ``indexed-view`` — indexed vs legacy ``GridStateView`` under
  identical kernel configuration;
* ``spans`` — span tracing off vs on (ctx rides outside the digest, so
  equality is exact);
* ``telemetry`` — timeline sampler off vs on: periodic
  ``MetricsRegistry.collect()`` sampling (with JSONL streaming) must
  be strictly read-only, so both sides replay event-for-event;
* ``workers`` — ``run_parallel`` with 1 vs 4 workers over the same
  config batch, comparing per-run summary digests;
* ``delta-sync`` — flood vs per-peer delta dissemination.  Delta
  changes payload sizes (hence simulated transfer timing), so full
  experiments are *expected* to differ event-for-event; the claim is
  **convergence**, checked on a scripted harness with no clients:
  scripted dispatches, then quiescence, then every decision point's
  final live record set must match between the two modes.
* ``sharded-2`` / ``sharded-4`` — the space-parallel kernel's
  partition-independence claim: ``run_sharded`` over one shard vs two
  (or four), comparing the canonically merged per-neighborhood event
  journals.  Any shard grouping must replay to the same chained digest.
* ``batch-dispatch`` — the kernel's event-batch dispatch loop vs the
  scalar one-event-at-a-time loop, everything else pinned;
* ``resume`` / ``resume-sharded`` — checkpoint/restore equivalence: an
  uninterrupted run vs one killed mid-flight and restored from its
  newest checkpoint (monolithic: verified replay with chaos and the
  strict checker riding; sharded: epoch-barrier checkpoints verified
  during a lockstep rerun);
* ``vectorized-sites`` — numpy FIFO drain + bucketed completion timers
  vs the scalar site scheduler, on a congested grid so deep queues
  actually engage the vectorized path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.check.digest import EventJournal, JournalEntry, first_divergence

__all__ = ["DiffReport", "PAIRS", "run_pair", "inject_divergence"]


@dataclass
class DiffReport:
    """Outcome of one differential replay."""

    pair: str
    label_a: str
    label_b: str
    journal_a: EventJournal
    journal_b: EventJournal
    divergence: Optional[tuple[Optional[JournalEntry],
                               Optional[JournalEntry]]]

    @property
    def identical(self) -> bool:
        return self.divergence is None

    def describe(self) -> str:
        head = (f"diff {self.pair}: {self.label_a} "
                f"({len(self.journal_a)} events, "
                f"digest {self.journal_a.digest:#010x}) vs {self.label_b} "
                f"({len(self.journal_b)} events, "
                f"digest {self.journal_b.digest:#010x})")
        if self.identical:
            return head + "\n  IDENTICAL"
        a, b = self.divergence
        lines = [head, "  DIVERGED at first differing event:"]
        lines.append(f"    {self.label_a}: "
                     + (a.describe() if a is not None else "<journal ended>"))
        lines.append(f"    {self.label_b}: "
                     + (b.describe() if b is not None else "<journal ended>"))
        return "\n".join(lines)


def _report(pair: str, label_a: str, journal_a: EventJournal,
            label_b: str, journal_b: EventJournal) -> DiffReport:
    return DiffReport(pair=pair, label_a=label_a, label_b=label_b,
                      journal_a=journal_a, journal_b=journal_b,
                      divergence=first_divergence(journal_a, journal_b))


def inject_divergence(journal: EventJournal, index: int) -> EventJournal:
    """A copy of ``journal`` with the entry at ``index`` corrupted.

    Exercises the report path on demand: the rebuilt journal differs in
    exactly one payload, so the bisection must name that entry.
    """
    if not 0 <= index < len(journal):
        raise ValueError(f"inject index {index} outside journal "
                         f"[0, {len(journal)})")
    mutated = EventJournal()
    for e in journal.entries:
        detail = e.detail + "|INJECTED" if e.index == index else e.detail
        mutated.record(e.time, e.kind, detail, ctx=e.ctx)
    return mutated


# ---------------------------------------------------------------------------
# Experiment-pair plumbing


def _diff_config(duration_s: float, seed: int, spans: bool = True):
    """The canonical differential smoke: 3 decision points (so the sync
    plane actually carries traffic), short but multi-round, spans on by
    default so divergence reports carry causal context."""
    from repro.experiments.configs import smoke_config
    return smoke_config(
        decision_points=3, n_clients=10, duration_s=duration_s,
        sync_interval_s=30.0, monitor_interval_s=60.0,
        spans_enabled=spans, seed=seed, name="diff")


def _run_journaled(config) -> EventJournal:
    from repro.check.digest import install_probes
    from repro.experiments.runner import run_experiment

    journal = EventJournal()

    def hook(sim=None, deployment=None, network=None, grid=None, rng=None):
        install_probes(journal, deployment=deployment,
                       sites=grid.sites.values(), sim=sim)

    run_experiment(config, deployment_hook=hook)
    return journal


def _pair_fast_paths(duration_s: float, seed: int) -> DiffReport:
    # State index pinned on both sides: this pair isolates the kernel
    # fast paths (heap compaction, pooled timeouts, process pinning).
    base = _diff_config(duration_s, seed).with_(seed=seed, state_index=True)
    return _report(
        "fast-paths",
        "fast", _run_journaled(base.with_(fast_paths=True)),
        "legacy", _run_journaled(base.with_(fast_paths=False)))


def _pair_batch_dispatch(duration_s: float, seed: int) -> DiffReport:
    # Everything but the run loop pinned: same fast paths, same state
    # index, same site scheduler — the pair isolates the claim that
    # draining a timestamp as one batch replays the scalar pop order.
    base = _diff_config(duration_s, seed).with_(seed=seed, state_index=True)
    return _report(
        "batch-dispatch",
        "batched", _run_journaled(base.with_(batch_dispatch=True)),
        "scalar", _run_journaled(base.with_(batch_dispatch=False)))


def _pair_vectorized_sites(duration_s: float, seed: int) -> DiffReport:
    # Congested variant of the diff smoke (many clients, few CPUs) so
    # site queues outgrow the vectorization threshold and the numpy
    # drain prefix path really runs on side A.
    base = _diff_config(duration_s, seed).with_(
        seed=seed, state_index=True, n_clients=16, n_sites=6,
        total_cpus=72, name="diff-vec")
    return _report(
        "vectorized-sites",
        "vectorized", _run_journaled(base.with_(vectorized_sites=True)),
        "scalar-sites", _run_journaled(base.with_(vectorized_sites=False)))


def _pair_indexed_view(duration_s: float, seed: int) -> DiffReport:
    base = _diff_config(duration_s, seed).with_(seed=seed, fast_paths=True)
    return _report(
        "indexed-view",
        "indexed", _run_journaled(base.with_(state_index=True)),
        "legacy-view", _run_journaled(base.with_(state_index=False)))


def _pair_spans(duration_s: float, seed: int) -> DiffReport:
    base = _diff_config(duration_s, seed, spans=False).with_(seed=seed)
    return _report(
        "spans",
        "spans-off", _run_journaled(base),
        "spans-on", _run_journaled(base.with_(spans_enabled=True)))


def _pair_workers(duration_s: float, seed: int) -> DiffReport:
    """1 vs 4 workers over the same config batch: per-run summary
    digests, in input order, must match exactly."""
    from repro.experiments.parallel import run_parallel, summary_digest

    configs = [_diff_config(duration_s, seed).with_(seed=seed + i,
                                                    spans_enabled=False,
                                                    name=f"diff-w{i}")
               for i in range(3)]
    ja, jb = EventJournal(), EventJournal()
    for journal, workers in ((ja, 1), (jb, 4)):
        for i, summary in enumerate(run_parallel(configs,
                                                 max_workers=workers)):
            journal.record(float(i), "run.summary",
                           f"{summary.config.name}|{summary_digest(summary)}")
    return _report("workers", "1-worker", ja, "4-workers", jb)


def _pair_sharded(n_shards: int, duration_s: float, seed: int) -> DiffReport:
    """1 shard vs ``n_shards`` over the same 4-neighborhood config.

    ``run_sharded`` journals every neighborhood and merges the streams
    canonically (sorted by time, hood, per-hood index), so the chained
    digests must match entry-for-entry regardless of grouping.  Spans
    stay off: hood sub-configs force per-sim observability off anyway.
    """
    from repro.experiments.configs import smoke_config
    from repro.sim.sharded import run_sharded

    config = smoke_config(
        decision_points=4, n_clients=16, n_sites=16, total_cpus=800,
        duration_s=duration_s, sync_interval_s=30.0,
        monitor_interval_s=60.0, seed=seed, name="diff-sharded")
    serial = run_sharded(config, n_shards=1, journal=True)
    sharded = run_sharded(config, n_shards=n_shards, journal=True)
    return _report(f"sharded-{n_shards}",
                   "1-shard", serial.journal,
                   f"{n_shards}-shards", sharded.journal)


def _pair_autoscale_frozen(duration_s: float, seed: int) -> DiffReport:
    """Frozen controller vs no controller at all.

    The elastic-plane safety claim: the control loop's *observation*
    path (SignalBus sampling, gauges, hysteresis bookkeeping) draws no
    randomness and schedules only its own tick, so a controller that
    never acts (policy ``frozen``) must be event-identical to a run
    with no controller.  Any divergence means sampling perturbed the
    simulation — exactly the class of bug this pair exists to catch.
    """
    from repro.control import AutoscaleConfig
    base = _diff_config(duration_s, seed).with_(seed=seed)
    frozen = base.with_(autoscale=AutoscaleConfig(policy="frozen",
                                                  interval_s=30.0))
    return _report(
        "autoscale-frozen",
        "no-controller", _run_journaled(base),
        "frozen-controller", _run_journaled(frozen))


def _pair_telemetry(duration_s: float, seed: int) -> DiffReport:
    """Telemetry timeline off vs on.

    The telemetry plane's safety claim: a
    :class:`~repro.obs.timeline.TimelineSampler` tick is strictly
    read-only (no RNG draws, no semantic state mutation; the only
    events it schedules are its own) — so a ``--telemetry`` run must be
    event-identical to a bare one.  JSONL streaming rides along on
    side B to cover the sink path too.
    """
    base = _diff_config(duration_s, seed).with_(seed=seed)
    telemetry = base.with_(telemetry_enabled=True,
                           telemetry_interval_s=30.0,
                           telemetry_path="/tmp/diff-telemetry.jsonl")
    return _report(
        "telemetry",
        "telemetry-off", _run_journaled(base),
        "telemetry-on", _run_journaled(telemetry))


def _pair_delta_sync(duration_s: float, seed: int) -> DiffReport:
    ja = _scripted_sync_run(duration_s, seed, delta=False)
    jb = _scripted_sync_run(duration_s, seed, delta=True)
    return _report("delta-sync", "flood", ja, "delta", jb)


def _scripted_sync_run(duration_s: float, seed: int,
                       delta: bool) -> EventJournal:
    """Scripted convergence harness for the delta-sync claim.

    No clients, no WAN jitter in the dispatch script: each decision
    point on a ring records a deterministic stream of local dispatches;
    the overlay disseminates them (flood or delta); after a quiescence
    window every decision point journals its final live record set and
    per-site usage estimate.  Flood and delta must agree on all of it —
    per-event timing is allowed to differ (payload sizes differ by
    design), final knowledge is not.
    """
    from repro.core.broker import DIGruberDeployment
    from repro.grid.builder import GridBuilder
    from repro.net.container import GT3_PROFILE
    from repro.net.latency import LanLatency
    from repro.net.transport import Network
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RngRegistry

    n_dps = 4
    interval_s = 20.0
    sim = Simulator()
    rng = RngRegistry(seed)
    network = Network(sim, LanLatency(), kb_transfer_s=0.0)
    grid = GridBuilder(sim, rng.stream("grid")).build(
        n_sites=6, total_cpus=240, n_vos=2, groups_per_vo=2,
        users_per_group=2, name="delta-diff")
    deployment = DIGruberDeployment(
        sim=sim, network=network, grid=grid, rng=rng,
        profile=GT3_PROFILE,
        n_decision_points=n_dps, topology_kind="ring",
        sync_interval_s=interval_s, monitor_interval_s=duration_s * 10,
        sync_delta=delta)
    deployment.start()

    sites = sorted(grid.sites)
    dps = list(deployment.decision_points.values())
    # Scripted dispatch plan: spread across DPs, sites, and VOs over the
    # first half of the run; the second half is the convergence window.
    for i in range(24):
        t = 1.0 + i * (duration_s / 2) / 24
        dp = dps[i % n_dps]
        site = sites[i % len(sites)]
        sim.schedule(
            t, lambda dp=dp, site=site, i=i: dp.engine.record_local_dispatch(
                site=site, vo=f"vo{i % 2}", cpus=1 + i % 3,
                now=dp.sim.now))
    sim.run(until=duration_s)

    journal = EventJournal()
    for dp_id in sorted(deployment.decision_points):
        view = deployment.decision_points[dp_id].engine.view
        keys = ",".join(f"{o}:{s}" for o, s in sorted(view._seen))
        usage = ";".join(f"{site}={int(view._extra_busy[site])}"
                         for site in sorted(view._extra_busy))
        journal.record(sim.now, "dp.final", f"{dp_id}|{keys}|{usage}")
    return journal


def _pair_resume(duration_s: float, seed: int) -> DiffReport:
    """Uninterrupted run vs killed-and-restored run (the tentpole claim).

    Both sides checkpoint on the same cadence — checkpoint ticks are
    simulation events, so event-identity requires identical scheduling.
    Side A runs to completion.  Side B runs just past the half-way
    point, is aborted as a mid-run kill would abort it, and is then
    restored from its newest on-disk checkpoint (verified deterministic
    replay — see :mod:`repro.sim.snapshot`).  Chaos
    (``dp_crash_restart``) and the strict invariant checker ride along,
    so the equality claim covers fault injection and periodic checking
    too.  The restored side's journal regenerates from t=0 during
    replay, so the two journals must chain to the same digest
    entry-for-entry.
    """
    import tempfile

    from repro.check.digest import install_probes
    from repro.experiments.runner import abort_experiment, build_experiment
    from repro.sim.snapshot import newest_checkpoint, resume_experiment

    with tempfile.TemporaryDirectory() as dir_a, \
            tempfile.TemporaryDirectory() as dir_b:
        base = _diff_config(duration_s, seed).with_(
            seed=seed, chaos_scenario="dp_crash_restart",
            check_enabled=True, check_strict=True, name="diff-resume")
        every = duration_s / 5
        ja = _run_journaled(base.with_(checkpoint_every_s=every,
                                       checkpoint_dir=dir_a))

        config_b = base.with_(checkpoint_every_s=every,
                              checkpoint_dir=dir_b)
        partial = EventJournal()
        built = build_experiment(config_b)
        install_probes(partial, deployment=built.deployment,
                       sites=built.grid.sites.values(), sim=built.sim)
        built.sim.run(until=duration_s * 0.55)
        abort_experiment(built, RuntimeError("simulated mid-run kill"))
        checkpoint = newest_checkpoint(dir_b)
        if checkpoint is None:
            raise RuntimeError(
                "resume pair found no checkpoint after the partial leg; "
                f"expected one in {dir_b}")

        jb = EventJournal()

        def hook(sim=None, deployment=None, network=None, grid=None,
                 rng=None):
            install_probes(jb, deployment=deployment,
                           sites=grid.sites.values(), sim=sim)

        resume_experiment(checkpoint, deployment_hook=hook)
    return _report("resume", "uninterrupted", ja, "restored", jb)


def _pair_resume_sharded(duration_s: float, seed: int) -> DiffReport:
    """Sharded (4 shards) uninterrupted vs barrier-checkpoint-restored.

    Sharded checkpoints land on epoch barriers (runner-level, never a
    simulation event), so a checkpointing run journals identically to a
    bare one; the restore is a lockstep rerun that must re-derive every
    neighborhood's barrier digest before continuing (see
    :func:`repro.sim.sharded.run_sharded`).
    """
    import tempfile

    from repro.experiments.configs import smoke_config
    from repro.sim.sharded import run_sharded
    from repro.sim.snapshot import newest_checkpoint

    config = smoke_config(
        decision_points=4, n_clients=16, n_sites=16, total_cpus=800,
        duration_s=duration_s, sync_interval_s=30.0,
        monitor_interval_s=60.0, seed=seed, name="diff-resume-sharded")
    reference = run_sharded(config, n_shards=4, journal=True)
    with tempfile.TemporaryDirectory() as ckdir:
        ckpt_config = config.with_(checkpoint_every_s=duration_s / 5,
                                   checkpoint_dir=ckdir)
        run_sharded(ckpt_config, n_shards=4, journal=True)
        checkpoint = newest_checkpoint(ckdir)
        if checkpoint is None:
            raise RuntimeError(
                "sharded resume pair wrote no barrier checkpoint; "
                f"expected one in {ckdir}")
        restored = run_sharded(ckpt_config, n_shards=4, journal=True,
                               restore=checkpoint)
    return _report("resume-sharded",
                   "uninterrupted", reference.journal,
                   "restored", restored.journal)


PAIRS: dict[str, Callable[[float, int], DiffReport]] = {
    "fast-paths": _pair_fast_paths,
    "batch-dispatch": _pair_batch_dispatch,
    "vectorized-sites": _pair_vectorized_sites,
    "indexed-view": _pair_indexed_view,
    "spans": _pair_spans,
    "telemetry": _pair_telemetry,
    "workers": _pair_workers,
    "delta-sync": _pair_delta_sync,
    "autoscale-frozen": _pair_autoscale_frozen,
    "sharded-2": lambda d, s: _pair_sharded(2, d, s),
    "sharded-4": lambda d, s: _pair_sharded(4, d, s),
    "resume": _pair_resume,
    "resume-sharded": _pair_resume_sharded,
}


def run_pair(pair: str, duration_s: float = 300.0,
             seed: int = 20050101, inject: Optional[int] = None
             ) -> DiffReport:
    """Run one named pair; optionally corrupt side B at ``inject``."""
    try:
        runner = PAIRS[pair]
    except KeyError:
        raise ValueError(f"unknown pair {pair!r}; expected one of "
                         f"{sorted(PAIRS)}") from None
    report = runner(duration_s, seed)
    if inject is not None:
        mutated = inject_divergence(report.journal_b, inject)
        report = _report(report.pair, report.label_a, report.journal_a,
                         report.label_b + "+injected", mutated)
    return report
