"""Incremental state digests and divergence bisection.

An :class:`EventJournal` records semantic simulation events — dispatch
decisions, record adoptions, site transitions — as a chain of CRC32
digests: every entry's digest covers its own payload *and* the digest
of the entry before it.  Two runs that executed the same semantic
events therefore end with the same final digest, and any divergence is
locatable by **binary search over digest prefixes**
(:func:`first_divergence`, O(log n) comparisons) instead of a linear
walk.

Design constraints, learned the hard way:

* Journal entries hash *semantic* state transitions, not kernel event
  ids or heap ordering — fast mode elides sleep Events and the indexed
  view returns the same record sets in a different internal order, and
  neither may register as divergence.
* Span/trace context rides along as an ``ctx`` side-field **excluded**
  from the digest and from comparison — a spans-on run must compare
  equal to a spans-off run, but a divergence report should still name
  the span that covered the first divergent event.
* Payload details must be order-independent where the underlying
  collection is (adopted record batches are hashed as sorted key
  tuples).

Probes are installed by :func:`install_probes` and are strictly
read-only with respect to the simulation: no RNG draws, no scheduled
events, no query that mutates view state.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.decision_point import DecisionPoint
    from repro.grid.site import Site

__all__ = ["EventJournal", "JournalEntry", "first_divergence",
           "install_probes"]


@dataclass(frozen=True)
class JournalEntry:
    """One semantic event in the digest chain.

    ``crc`` is the chained digest *up to and including* this entry;
    ``ctx`` (span context or other provenance) is excluded from the
    digest and from equality so observability toggles never register
    as divergence.
    """

    index: int
    time: float
    kind: str
    detail: str
    crc: int
    ctx: str = ""

    def describe(self) -> str:
        s = f"#{self.index} t={self.time:.6f} {self.kind} {self.detail}"
        if self.ctx:
            s += f"  [{self.ctx}]"
        return s


class EventJournal:
    """Append-only chained-CRC journal of semantic events."""

    def __init__(self) -> None:
        self.entries: list[JournalEntry] = []
        self._crc = 0

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def digest(self) -> int:
        """Chained digest over everything recorded so far."""
        return self._crc

    def record(self, time: float, kind: str, detail: str,
               ctx: str = "") -> JournalEntry:
        # repr() of the float keeps full precision and is stable across
        # processes (unlike str() of ints vs numpy scalars upstream —
        # callers are expected to hand in plain types).
        payload = f"{time!r}|{kind}|{detail}".encode()
        self._crc = zlib.crc32(payload, self._crc)
        entry = JournalEntry(index=len(self.entries), time=time, kind=kind,
                             detail=detail, crc=self._crc, ctx=ctx)
        self.entries.append(entry)
        return entry

    def crc_at(self, n: int) -> int:
        """Digest of the first ``n`` entries (0 => empty chain)."""
        if n <= 0:
            return 0
        return self.entries[min(n, len(self.entries)) - 1].crc


def first_divergence(a: EventJournal, b: EventJournal
                     ) -> Optional[tuple[Optional[JournalEntry],
                                         Optional[JournalEntry]]]:
    """Locate the first entry where two journals part ways.

    Returns ``None`` when the journals are identical, else the pair of
    entries at the first divergent index (an element is ``None`` when
    that journal is a strict prefix of the other).  Because each
    entry's crc digests the whole prefix, equality of ``crc_at(n)``
    means equality of the first ``n`` entries, so a binary search over
    prefix digests finds the split point in O(log n) comparisons.
    """
    common = min(len(a), len(b))
    if a.crc_at(common) == b.crc_at(common):
        if len(a) == len(b):
            return None
        # One journal is a clean prefix of the other; the first extra
        # entry is the divergence.
        longer = a if len(a) > len(b) else b
        extra = longer.entries[common]
        return (extra, None) if longer is a else (None, extra)
    lo, hi = 0, common  # crc_at(lo) equal, crc_at(hi) differs
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if a.crc_at(mid) == b.crc_at(mid):
            lo = mid
        else:
            hi = mid
    return a.entries[hi - 1], b.entries[hi - 1]


# ---------------------------------------------------------------------------
# Probe installation


def _fmt_cpu(x: Any) -> str:
    # Site CPU counts are ints; keep the formatting explicit so a
    # numpy int on one side and a python int on the other can never
    # produce different reprs.
    return str(int(x))


def install_probes(journal: EventJournal, *, deployment=None,
                   sites=None, sim=None) -> None:
    """Wire a journal into a constructed (not yet run) experiment.

    Hooks installed:

    * each decision point's engine gets ``engine.journal = journal`` —
      the engine emits ``rec.local`` per local dispatch record and
      ``rec.adopt`` per remote merge (sorted key sets, so indexed and
      legacy views hash identically);
    * each site's lifecycle observer lists get start/complete probes
      hashing the job id, VO, CPU delta, and resulting busy level.

    Probes never draw randomness and never schedule events, so an
    instrumented run executes the exact same event sequence as a bare
    one.
    """
    if deployment is not None:
        for dp in deployment.decision_points.values():
            dp.engine.journal = journal
        # Decision points created mid-run (observer growth, autoscale)
        # pick the journal up from here — see ``_create_dp``.
        deployment.journal = journal
        controller = getattr(deployment, "controller", None)
        if controller is not None:
            controller.journal = journal

    def _job_ctx(job) -> str:
        # The dispatch span context the client stamped on the job, when
        # span tracing is on.  Excluded from the digest; surfaces in
        # divergence reports so the first divergent event names its
        # causal chain.
        ctx = getattr(job, "trace_ctx", None)
        if ctx is not None:
            return f"trace={ctx[0]} span={ctx[1]}"
        return ""

    for site in (sites or []):
        def _on_started(job, *, _site=site):
            journal.record(
                _site.sim.now, "site.start",
                f"{_site.name}|{job.jid}|{job.vo}|cpus={_fmt_cpu(job.cpus)}"
                f"|busy={_fmt_cpu(_site.busy_cpus)}",
                ctx=_job_ctx(job))

        def _on_completed(job, *, _site=site):
            journal.record(
                _site.sim.now, "site.done",
                f"{_site.name}|{job.jid}|{job.state.name}"
                f"|busy={_fmt_cpu(_site.busy_cpus)}",
                ctx=_job_ctx(job))

        site.on_job_started.append(_on_started)
        site.on_job_completed.append(_on_completed)
