"""Online invariant checking for running simulations.

The :class:`InvariantChecker` rides the simulator as a periodic
checkpoint pass over everything it was told to watch — sites, clients,
decision points, the kernel itself — asserting the conservation and
accounting invariants the rest of the codebase merely claims:

* **job conservation** — per client, every workload arrival is in the
  backlog, materialized, or terminal; materialized jobs are brokered
  exactly once (at most one in flight per host channel);
* **site CPU accounting** — ``0 <= busy <= capacity``, busy equals the
  sum over running jobs, dispatch counters balance against terminal
  counters plus work in the pipeline, and the busy-CPU integral
  decomposes exactly into delivered per-VO CPU-seconds plus the
  still-running remainder;
* **view accounting** — each decision point's
  :meth:`~repro.core.state.GridStateView.audit` (incremental sums vs
  ground truth, dedup-index agreement, free-cache coherence);
* **USLA share bounds** — published fair-share fractions stay in
  ``[0, 1]`` and per-consumer usage never exceeds the site estimate;
* **sync monotonicity** — learn-sequence watermarks only advance and
  per-peer delta marks never pass the view's learn counter;
* **kernel sanity** — monotone clock, monotone executed-event count,
  no pending event behind the clock.

The checker is strictly **read-only**: it never calls any query that
triggers record expiry (that would perturb subsequent sync payloads,
making a checked run diverge from an unchecked one), never draws from
any RNG, and schedules only its own checkpoint callbacks — so a run
with the checker is the same run, plus checkpoints.

Violations *raise* in tests (``strict=True``) and are counted + traced
in runs (``check.violations`` counter, ``check.violation`` trace
events), matching how the rest of the observability plane reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.client import GruberClient
    from repro.core.decision_point import DecisionPoint
    from repro.grid.site import Site
    from repro.sim.kernel import Simulator

__all__ = ["InvariantChecker", "InvariantViolation", "Violation",
           "check_snapshot_invariants"]

#: Relative tolerance for float integrals (CPU-second decompositions).
_REL_TOL = 1e-9
_ABS_TOL = 1e-6


class InvariantViolation(AssertionError):
    """Raised in strict mode the moment an invariant fails."""


@dataclass(frozen=True)
class Violation:
    """One failed invariant at one checkpoint."""

    time: float
    rule: str       # e.g. "site.busy_bounds"
    subject: str    # the watched object (site/client/dp name)
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"[t={self.time:.3f}] {self.rule}({self.subject}): {self.detail}"


class InvariantChecker:
    """Periodic checkpoint pass over watched simulation objects."""

    def __init__(self, sim: "Simulator", interval_s: float = 30.0,
                 strict: bool = False):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.sim = sim
        self.interval_s = interval_s
        self.strict = strict
        self.violations: list[Violation] = []
        self.checks_run = 0
        self._handle = None
        self._sites: list["Site"] = []
        self._clients: list["GruberClient"] = []
        self._dps: list["DecisionPoint"] = []
        self._deployments: list = []
        self._controllers: list = []
        # Monotonicity baselines, keyed per watched object.
        self._last_now = -float("inf")
        self._last_events = -1
        self._last_integral: dict[str, float] = {}
        self._last_learn_count: dict[str, int] = {}
        self._last_marks: dict[tuple[str, str], int] = {}

    # -- wiring ------------------------------------------------------------
    def watch_site(self, site: "Site") -> None:
        self._sites.append(site)

    def watch_client(self, client: "GruberClient") -> None:
        self._clients.append(client)

    def watch_dp(self, dp: "DecisionPoint") -> None:
        self._dps.append(dp)

    def watch_deployment(self, deployment) -> None:
        """Track the deployment's decision-point set *live*.

        Dynamic reconfiguration adds decision points mid-run; re-reading
        ``deployment.decision_points`` at every checkpoint picks those
        up, where a one-shot snapshot would silently leave them
        unchecked.
        """
        self._deployments.append(deployment)

    def watch_controller(self, planner) -> None:
        """Gate the autoscale planner like any other simulation object."""
        self._controllers.append(planner)

    def install(self) -> None:
        """Schedule the checkpoint chain on the simulator.

        No jitter and no RNG: checker events interleave at fixed times
        and never perturb any stream another component draws from.
        """
        if self._handle is not None:
            raise RuntimeError("checker already installed")
        self._handle = self.sim.every(self.interval_s, self.check,
                                      name="invariant-check")

    def uninstall(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # -- reporting ---------------------------------------------------------
    def _flag(self, rule: str, subject: str, detail: str) -> None:
        v = Violation(time=self.sim.now, rule=rule, subject=str(subject),
                      detail=detail)
        self.violations.append(v)
        self.sim.metrics.counter("check.violations").inc()
        if self.sim.trace.enabled:
            self.sim.trace.emit("check.violation", node=subject, rule=rule,
                                detail=detail)
        if self.strict:
            raise InvariantViolation(str(v))

    # -- checkpoint --------------------------------------------------------
    def check(self) -> list[Violation]:
        """Run every invariant once; returns violations found this pass."""
        before = len(self.violations)
        self.checks_run += 1
        self.sim.metrics.counter("check.passes").inc()
        self._check_kernel()
        for site in self._sites:
            self._check_site(site)
        for client in self._clients:
            self._check_client(client)
        for dp in self._dps:
            self._check_dp(dp)
        for deployment in self._deployments:
            for dp in deployment.decision_points.values():
                self._check_dp(dp)
        for planner in self._controllers:
            self._check_controller(planner)
        return self.violations[before:]

    # -- kernel ------------------------------------------------------------
    def _check_kernel(self) -> None:
        sim = self.sim
        if sim.now < self._last_now:
            self._flag("kernel.clock_monotone", "sim",
                       f"now={sim.now} moved backward from {self._last_now}")
        self._last_now = sim.now
        if sim._event_count < self._last_events:
            self._flag("kernel.events_monotone", "sim",
                       f"executed={sim._event_count} < {self._last_events}")
        self._last_events = sim._event_count
        heap = sim._heap
        if heap and heap[0][0] < sim.now:
            self._flag("kernel.heap_order", "sim",
                       f"pending event at t={heap[0][0]} behind "
                       f"now={sim.now}")
        if sim._dead > len(heap):
            self._flag("kernel.heap_dead", "sim",
                       f"dead count {sim._dead} exceeds heap size "
                       f"{len(heap)}")
        if sim.heap_peak < len(heap):
            self._flag("kernel.heap_peak", "sim",
                       f"peak {sim.heap_peak} below current size "
                       f"{len(heap)}")

    # -- controller --------------------------------------------------------
    def _check_controller(self, planner) -> None:
        cfg = planner.config
        deployment = planner.deployment
        n_live = len(deployment.live_dp_ids)
        if not (cfg.min_dps <= n_live <= cfg.max_dps):
            self._flag("control.fleet_bounds", "autoscale",
                       f"live decision points {n_live} outside "
                       f"[{cfg.min_dps}, {cfg.max_dps}]")
        known = set(deployment.decision_points)
        for client in deployment.clients:
            if str(client.decision_point) not in known:
                self._flag("control.client_binding", str(client.node_id),
                           f"bound to unknown decision point "
                           f"{client.decision_point!r}")
        for dp_id in deployment.retired:
            dp = deployment.decision_points.get(dp_id)
            if dp is not None and dp.online:
                self._flag("control.retired_online", dp_id,
                           "retired decision point is still online")
        recorded = sum(a.clients_moved for a in planner.actuator.actions)
        if planner.actuator.clients_moved != recorded:
            self._flag("control.migration_accounting", "autoscale",
                       f"actuator moved {planner.actuator.clients_moved} "
                       f"clients but actions record {recorded}")

    # -- sites -------------------------------------------------------------
    def _check_site(self, site: "Site") -> None:
        name = site.name
        if not (0 <= site.busy_cpus <= site.total_cpus):
            self._flag("site.busy_bounds", name,
                       f"busy={site.busy_cpus} outside "
                       f"[0, {site.total_cpus}]")
        running = sum(j.cpus for j in site._running.values())
        if running != site.busy_cpus:
            self._flag("site.busy_sum", name,
                       f"busy={site.busy_cpus} but running jobs hold "
                       f"{running} CPUs")
        pipeline = (site.jobs_completed + site.jobs_failed
                    + site.running_jobs + site.queue_length)
        if site.jobs_dispatched != pipeline:
            self._flag("site.job_conservation", name,
                       f"dispatched={site.jobs_dispatched} != completed="
                       f"{site.jobs_completed} + failed={site.jobs_failed}"
                       f" + running={site.running_jobs} + queued="
                       f"{site.queue_length}")
        # Busy integral must only grow, and must decompose exactly into
        # CPU-seconds already credited per VO plus the still-accruing
        # share of running jobs.  A preempted job whose partial run is
        # never credited breaks the equality (that bug is how this rule
        # earned its place).
        now = self.sim.now
        integral = site._busy_integral + site.busy_cpus * (now - site._last_change)
        last = self._last_integral.get(name, 0.0)
        if integral < last - _ABS_TOL:
            self._flag("site.integral_monotone", name,
                       f"busy integral {integral} fell below {last}")
        self._last_integral[name] = integral
        credited = sum(site.vo_cpu_seconds.values())
        accruing = sum((now - j.started_at) * j.cpus
                       for j in site._running.values()
                       if j.started_at is not None)
        expected = credited + accruing
        if abs(integral - expected) > max(_ABS_TOL, _REL_TOL * integral):
            self._flag("site.cpu_seconds", name,
                       f"busy integral {integral:.6f} != credited "
                       f"{credited:.6f} + running {accruing:.6f}")
        for vo, secs in site.vo_cpu_seconds.items():
            if secs < 0.0:
                self._flag("site.vo_cpu_seconds", name,
                           f"negative CPU-seconds for {vo}: {secs}")

    # -- clients -----------------------------------------------------------
    def _check_client(self, client: "GruberClient") -> None:
        name = str(client.node_id)
        terminal = client.n_handled + client.n_fallback_timeout
        in_flight = len(client.jobs) - terminal
        if in_flight not in (0, 1):
            self._flag("client.job_conservation", name,
                       f"{len(client.jobs)} materialized jobs vs "
                       f"{terminal} terminal (in-flight={in_flight})")
        elif in_flight == 1 and not client.busy:
            self._flag("client.channel_state", name,
                       "one job in flight but channel not busy")
        # Arrival conservation: every workload arrival at or before the
        # checkpoint is either materialized or backlogged.  Arrivals at
        # exactly the checkpoint instant may still be pending in the
        # event queue (same-timestamp ordering), hence the left/right
        # searchsorted tolerance.
        arrivals = client.workload.arrivals
        seen = len(client.jobs) + client.backlog_len
        lo = int(np.searchsorted(arrivals, self.sim.now, side="left"))
        hi = int(np.searchsorted(arrivals, self.sim.now, side="right"))
        if not (lo <= seen <= hi):
            self._flag("client.arrival_conservation", name,
                       f"{seen} jobs+backlog vs {lo}..{hi} arrivals due "
                       f"at t={self.sim.now}")
        for counter in ("n_handled", "n_fallback_timeout", "n_abandoned",
                        "n_retries", "backlog_peak"):
            if getattr(client, counter) < 0:
                self._flag("client.counter_bounds", name,
                           f"{counter}={getattr(client, counter)} < 0")
        # A completed job ran for exactly its duration.  A stale
        # completion timer surviving a preempt-and-replan cycle
        # truncated the second run to the first run's deadline — this
        # rule is the in-vivo detector for that class.
        for job in client.jobs:
            et = job.execution_time_s
            if (et is not None and not job.state.name == "FAILED"
                    and abs(et - job.duration_s) > _ABS_TOL):
                self._flag("client.job_duration", name,
                           f"job {job.jid} ran {et:.6f}s, duration "
                           f"{job.duration_s:.6f}s")

    # -- decision points -----------------------------------------------------
    def _check_dp(self, dp: "DecisionPoint") -> None:
        name = str(dp.node_id)
        view = dp.engine.view
        for problem in view.audit():
            self._flag("view.audit", name, problem)
        # Learn-sequence monotonicity, and per-peer delta watermarks
        # bounded by (and never outrunning) the learn counter.
        count = view._learn_count
        last = self._last_learn_count.get(name, 0)
        if count < last:
            self._flag("sync.learn_seq_monotone", name,
                       f"learn count {count} fell below {last}")
        self._last_learn_count[name] = count
        for peer, mark in dp.sync._peer_marks.items():
            if mark > count:
                self._flag("sync.watermark_bound", name,
                           f"mark for {peer} is {mark} > learn count "
                           f"{count}")
            key = (name, str(peer))
            if mark < self._last_marks.get(key, 0):
                self._flag("sync.watermark_monotone", name,
                           f"mark for {peer} fell from "
                           f"{self._last_marks.get(key)} to {mark}")
            self._last_marks[key] = mark
        if dp.sync.records_adopted > dp.sync.records_received:
            self._flag("sync.adoption_bound", name,
                       f"adopted {dp.sync.records_adopted} > received "
                       f"{dp.sync.records_received}")
        # USLA share bounds: every published fair-share fraction is a
        # fraction, and no consumer's estimated usage exceeds the
        # site-wide estimate it is part of.
        fresh = dp.engine.usla_store.policy_engine()
        for rule in fresh:
            if not (0.0 <= rule.fraction <= 1.0):
                self._flag("usla.share_bounds", name,
                           f"rule {rule.provider}->{rule.consumer} "
                           f"fraction {rule.fraction} outside [0, 1]")
        # Policy-cache coherence: any cache the engine would *serve*
        # (mutation counters agree, so ``_policy()`` would return it
        # as-is) must agree with a fresh flatten of the store.  A
        # negotiator publishing straight into the store used to leave
        # the engine answering availability queries from stale
        # entitlements.
        cache = dp.engine._policy_cache
        if (cache is not None
                and dp.engine._policy_mutations
                == dp.engine.usla_store.mutations):
            def rule_set(engine):
                return sorted((r.provider, r.consumer, str(r.resource),
                               r.percent, str(r.kind)) for r in engine)
            if rule_set(cache) != rule_set(fresh):
                self._flag("usla.policy_coherence", name,
                           "cached policy engine disagrees with the "
                           "USLA store contents")
        extra = view._extra_busy
        for (site, consumer), busy in view._vo_busy.items():
            if busy > extra[site] + _ABS_TOL:
                self._flag("usla.consumer_bound", name,
                           f"vo_busy[{site},{consumer}]={busy} exceeds "
                           f"site estimate {extra[site]}")

    # -- summary -----------------------------------------------------------
    def summary(self) -> str:
        status = "OK" if not self.violations else \
            f"{len(self.violations)} violation(s)"
        lines = [f"invariant checker: {self.checks_run} checkpoint(s), "
                 f"{status}"]
        lines += [f"  {v}" for v in self.violations[:20]]
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        return "\n".join(lines)


def check_snapshot_invariants(built) -> None:
    """Snapshot-plane invariants over a built (possibly mid-run) run.

    * **read-only capture** — two back-to-back captures are
      byte-identical as canonical JSON, so capturing mutates nothing
      and draws no randomness (the precondition for checkpoint ticks
      not perturbing the simulation they snapshot);
    * **digest recomputability** — every per-section digest recomputes
      from the captured state (no hidden iteration-order dependence);
    * **JSON round-trip** — every state section's digest recomputes
      identically from the ``dumps``/``loads`` round-tripped body, so
      the on-disk file carries exactly what was digested;
    * **clock agreement** — the snapshot's time/event stamps match the
      kernel's.

    Raises :class:`InvariantViolation` on any failure.
    """
    import json

    from repro.sim.snapshot import (capture_state, snapshot_experiment,
                                    state_digest)

    def canonical(state):
        return json.dumps(state, sort_keys=True, separators=(",", ":"))

    if canonical(capture_state(built)) != canonical(capture_state(built)):
        raise InvariantViolation(
            "state capture is not read-only/stable: two back-to-back "
            "captures of the same run differ")
    snap = snapshot_experiment(built)
    for section, value in snap["state"].items():
        if state_digest(value) != snap["digests"][section]:
            raise InvariantViolation(
                f"snapshot digest for section {section!r} does not "
                f"recompute from the captured state")
    reread = json.loads(json.dumps(snap))
    for section, value in reread["state"].items():
        if state_digest(value) != snap["digests"][section]:
            raise InvariantViolation(
                f"snapshot section {section!r} does not survive a JSON "
                f"round-trip digest-stably")
    if (snap["event_count"] != built.sim.events_executed
            or snap["time"] != built.sim.now):
        raise InvariantViolation(
            "snapshot time/event stamps disagree with the kernel clock")
