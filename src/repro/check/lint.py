"""AST determinism lint for simulation code.

Same-seed runs must be byte-identical; four habits silently break that:

* **wall-clock reads** — ``time.time()``/``monotonic()`` etc. and
  ``datetime.now()`` leak host time into simulated state;
* **ambient random** — the stdlib ``random`` module is process-global
  state; all randomness must flow through seeded
  ``numpy.random.Generator`` streams (:mod:`repro.sim.rng`);
* **unseeded numpy randomness** — ``np.random.default_rng()`` with no
  arguments, ``np.random.seed``, or module-level ``np.random.<dist>``
  draws from the ambient global generator;
* **unordered-set iteration** — iterating a ``set`` yields
  hash-randomized order; any per-element side effect (scheduling,
  dispatch, RNG draw) then differs between runs.  Sets are fine for
  membership; iterate sorted(...) or keep a list.

Run as a module (``python -m repro.check.lint [paths...]``) or via
``digruber lint``; exits non-zero on findings, which is how CI gates.
A deliberate exception carries the suppression marker ``# det: ok`` on
the offending line.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

__all__ = ["Finding", "lint_source", "lint_paths", "main"]

#: Wall-clock attribute calls: module name -> banned attributes.
_WALL_CLOCK = {
    "time": {"time", "monotonic", "perf_counter", "process_time",
             "time_ns", "monotonic_ns", "perf_counter_ns"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}

#: np.random attributes that are fine (seeded-generator machinery).
_NP_RANDOM_OK = {"Generator", "SeedSequence", "PCG64", "Philox", "MT19937",
                 "SFC64", "BitGenerator", "RandomState"}

_SUPPRESS = "# det: ok"


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    detail: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.detail}"


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: list[str]):
        self.path = path
        self.lines = source_lines
        self.findings: list[Finding] = []

    # -- helpers -----------------------------------------------------------
    def _suppressed(self, node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return _SUPPRESS in self.lines[line - 1]
        return False

    def _flag(self, node: ast.AST, rule: str, detail: str) -> None:
        if not self._suppressed(node):
            self.findings.append(Finding(self.path, node.lineno, rule,
                                         detail))

    @staticmethod
    def _dotted(node: ast.AST) -> Optional[str]:
        """'a.b.c' for an attribute chain rooted at a Name, else None."""
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    # -- imports -----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self._flag(node, "ambient-random",
                           "import of stdlib 'random' (process-global "
                           "state); use a seeded np.random.Generator")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self._flag(node, "ambient-random",
                       "from-import of stdlib 'random'; use a seeded "
                       "np.random.Generator")
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is not None:
            self._check_call(node, dotted)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        # Wall clock: time.time(), datetime.datetime.now(), ...
        if len(parts) >= 2 and parts[-2] in _WALL_CLOCK \
                and parts[-1] in _WALL_CLOCK[parts[-2]]:
            self._flag(node, "wall-clock",
                       f"{dotted}() reads host time inside sim code")
            return
        # numpy ambient randomness.
        if len(parts) >= 2 and parts[-2] == "random" \
                and parts[0] in ("np", "numpy"):
            attr = parts[-1]
            if attr == "default_rng":
                if not node.args and not node.keywords:
                    self._flag(node, "unseeded-numpy",
                               "default_rng() without a seed draws "
                               "fresh OS entropy")
            elif attr == "seed":
                self._flag(node, "unseeded-numpy",
                           "np.random.seed mutates the ambient global "
                           "generator; pass Generators explicitly")
            elif attr not in _NP_RANDOM_OK:
                self._flag(node, "unseeded-numpy",
                           f"np.random.{attr} draws from the ambient "
                           f"global generator")

    # -- set iteration -----------------------------------------------------
    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = self._dotted(node.func)
            if dotted in ("set", "frozenset"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            # Set algebra produces sets; only flag when a side is
            # evidently a set (avoids int arithmetic false positives).
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _check_iter(self, iter_node: ast.AST) -> None:
        # Flag on the iterable expression itself: ast.comprehension
        # clauses carry no lineno of their own.
        if self._is_set_expr(iter_node):
            self._flag(iter_node, "set-iteration",
                       "iterating a set: order is hash-randomized; "
                       "sort it or keep a list")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one source text; returns findings (empty = clean)."""
    tree = ast.parse(source, filename=path)
    visitor = _DeterminismVisitor(path, source.splitlines())
    visitor.visit(tree)
    return sorted(visitor.findings, key=lambda f: (f.path, f.line))


def lint_paths(paths: Iterable[str]) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: list[Finding] = []
    for root in paths:
        p = Path(root)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            findings.extend(lint_source(f.read_text(), str(f)))
    return findings


def main(argv: Optional[list[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        # Default target: the simulation package this file lives in.
        args = [str(Path(__file__).resolve().parents[1])]
    findings = lint_paths(args)
    for f in findings:
        print(f)
    print(f"determinism lint: {len(findings)} finding(s) in "
          f"{', '.join(args)}")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
