"""Command-line interface: ``digruber``.

Regenerate any paper artifact or run a custom experiment from the
shell::

    digruber quickstart
    digruber fig1
    digruber scalability --profile gt3 --dps 1 3 10 --duration 1800
    digruber accuracy --profile gt4 --intervals 1 3 10 30
    digruber grubsim --profile gt3
    digruber run --dps 3 --clients 60 --duration 900
    digruber run --dps 3 --check --check-strict
    digruber run --dps 4 --shards 4 --duration 900
    digruber chaos --scenario partition2 --duration 900
    digruber diff --pair fast-paths
    digruber diff --pair sharded-4
    digruber diff --pair resume
    digruber run --dps 3 --checkpoint-every 60 --checkpoint-dir ckpts/
    digruber run --restore ckpts/ckpt-0000000240-000000123456.json
    digruber campaign --out sweeps/smoke --preset smoke
    digruber run --dps 3 --telemetry /tmp/tl.jsonl --flight
    digruber top /tmp/tl.jsonl --once
    digruber postmortem flight-20050101.json
    digruber lint src/repro
"""

from __future__ import annotations

import argparse
import os
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="digruber",
        description="DI-GRUBER reproduction: distributed grid USLA brokering")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs(p):
        p.add_argument("--trace", nargs="?", const="", default=None,
                       metavar="JSONL",
                       help="enable structured tracing; with a path, "
                            "stream events to a JSONL file")
        p.add_argument("--trace-spans", nargs="?", const="", default=None,
                       metavar="JSONL",
                       help="enable causal span tracing; with a path, "
                            "export spans to a JSONL file (analyze with "
                            "`digruber trace`)")
        p.add_argument("--trace-sample", type=int, default=1, metavar="N",
                       help="span head sampling: record every Nth trace "
                            "root (default 1 = all)")
        p.add_argument("--obs", action="store_true",
                       help="print the observability run summary "
                            "(counters, RPC latency percentiles, trace "
                            "tallies) after the experiment")
        p.add_argument("--telemetry", nargs="?", const="", default=None,
                       metavar="JSONL",
                       help="enable the periodic telemetry timeline; "
                            "with a path, stream rows to a JSONL file "
                            "(view with `digruber top`)")
        p.add_argument("--telemetry-interval", type=float, default=None,
                       metavar="S",
                       help="telemetry sampling interval in simulated "
                            "seconds (default 30)")
        p.add_argument("--serve-telemetry", default=None, metavar="JSONL",
                       help="stream + flush timeline rows to a file that "
                            "a concurrent `digruber top --follow` can "
                            "tail (implies --telemetry)")
        p.add_argument("--flight", nargs="?", const="", default=None,
                       metavar="JSON",
                       help="arm the flight recorder: dump a black box "
                            "on crash, strict-check violation, or "
                            "SIGTERM (default path flight-<seed>.json; "
                            "analyze with `digruber postmortem`)")

    quick = sub.add_parser("quickstart", help="run the quickstart deployment")
    add_obs(quick)

    fig1 = sub.add_parser("fig1", help="Fig 1: service instance creation")
    fig1.add_argument("--clients", type=int, default=300)
    fig1.add_argument("--duration", type=float, default=1800.0)

    def add_common(p):
        p.add_argument("--profile", choices=("gt3", "gt4"), default="gt3")
        p.add_argument("--duration", type=float, default=1800.0)
        p.add_argument("--seed", type=int, default=None)

    scal = sub.add_parser("scalability",
                          help="Figs 5-7 / 9-11 + Tables 1-2")
    add_common(scal)
    scal.add_argument("--dps", type=int, nargs="+", default=[1, 3, 10])

    acc = sub.add_parser("accuracy", help="Figs 8 / 12: accuracy vs sync")
    add_common(acc)
    acc.add_argument("--intervals", type=float, nargs="+",
                     default=[1.0, 3.0, 10.0, 30.0],
                     help="exchange intervals in minutes")
    acc.add_argument("--dps", type=int, default=3)

    gs = sub.add_parser("grubsim", help="Table 3: required decision points")
    add_common(gs)

    rep = sub.add_parser("report",
                         help="regenerate every paper artifact as markdown")
    rep.add_argument("--duration", type=float, default=1800.0)
    rep.add_argument("--out", default="-")
    rep.add_argument("--parallel", "-j", nargs="?", type=int, const=0,
                     default=None, metavar="WORKERS",
                     help="fan runs out over worker processes")

    run = sub.add_parser("run", help="run one custom experiment")
    add_common(run)
    run.add_argument("--dps", type=int, default=3)
    run.add_argument("--clients", type=int, default=None)
    run.add_argument("--sites", type=int, default=None)
    run.add_argument("--cpus", type=int, default=None)
    run.add_argument("--sync", type=float, default=None,
                     help="sync interval in seconds")
    run.add_argument("--selector", default=None,
                     choices=("least_used", "round_robin", "lru", "random"))
    run.add_argument("--topology", default=None,
                     choices=("mesh", "ring", "star", "line"))
    run.add_argument("--chaos", default=None, metavar="SCENARIO",
                     help="inject a named fault scenario "
                          "(see `digruber chaos --list`)")
    run.add_argument("--resilient", action="store_true",
                     help="enable client retry/backoff, circuit breakers "
                          "and probe-driven failover")
    run.add_argument("--queue-bound", type=int, default=None,
                     metavar="N", help="bounded-queue load shedding at "
                     "each decision point container")
    run.add_argument("--scale-multiplier", type=int, default=None,
                     metavar="K", help="scale the grid to K x Grid3/OSG "
                     "(K x sites, CPUs, and clients; the paper's 10x "
                     "question is K=10)")
    run.add_argument("--delta-sync", action="store_true",
                     help="per-peer delta sync instead of horizon "
                     "re-flooding (smaller payloads at scale)")
    run.add_argument("--no-fast-paths", action="store_true",
                     help="disable the kernel/state-view fast paths "
                     "(pre-optimization cost model, for A/B benchmarks)")
    run.add_argument("--no-batch-dispatch", action="store_true",
                     help="disable the kernel's event-batch dispatch "
                     "(scalar one-event-at-a-time heap loop)")
    run.add_argument("--no-vectorized-sites", action="store_true",
                     help="disable the numpy site scheduler (scalar "
                     "FIFO drain and per-job completion timers)")
    run.add_argument("--check", action="store_true",
                     help="enable the online invariant checker "
                     "(conservation/accounting assertions at every "
                     "checkpoint; violations counted and traced)")
    run.add_argument("--check-interval", type=float, default=None,
                     metavar="S", help="invariant checkpoint spacing in "
                     "seconds (default 30)")
    run.add_argument("--check-strict", action="store_true",
                     help="raise on the first invariant violation "
                     "instead of counting")
    run.add_argument("--autoscale", nargs="?", const="model", default=None,
                     metavar="POLICY",
                     help="closed-loop decision-point autoscaling "
                     "(repro.control); optional policy: model (default), "
                     "reactive, frozen")
    run.add_argument("--placement", default=None,
                     choices=("consistent_hash", "least_loaded"),
                     help="with --autoscale, the dynamic client-placement "
                     "strategy")
    run.add_argument("--workload", default=None,
                     choices=("steady", "diurnal", "bursty"),
                     help="named arrival profile "
                     "(repro.workloads.profiles); default steady")
    run.add_argument("--shards", type=int, default=None, metavar="N",
                     help="space-parallel run: partition the grid into "
                     "one neighborhood per decision point and execute "
                     "them on N kernel shards with conservative epoch "
                     "sync (results are shard-count independent)")
    run.add_argument("--shard-workers", action="store_true",
                     help="with --shards, run each shard in its own OS "
                     "process instead of lockstep in-process")
    run.add_argument("--checkpoint-every", type=float, default=None,
                     metavar="S", help="write a restorable checkpoint "
                     "every S simulated seconds (needs --checkpoint-dir)")
    run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="directory for periodic checkpoints")
    run.add_argument("--restore", default=None, metavar="FILE",
                     help="restore a checkpointed run and finish it "
                     "(the run's config comes from the snapshot; other "
                     "experiment flags are ignored)")
    add_obs(run)

    camp = sub.add_parser(
        "campaign", help="resumable parameter-sweep campaign: checkpoint "
                         "every cell, survive SIGTERM, resume to an "
                         "identical aggregate")
    camp.add_argument("--out", required=True, metavar="DIR",
                      help="campaign directory (cells/, manifest.json, "
                           "aggregate.json)")
    camp.add_argument("--preset", default="smoke",
                      choices=("smoke", "accuracy"),
                      help="named cell set (default: smoke)")
    camp.add_argument("--duration", type=float, default=300.0,
                      help="simulated seconds per cell (default 300)")
    camp.add_argument("--checkpoint-every", type=float, default=60.0,
                      metavar="S",
                      help="per-cell checkpoint cadence in simulated "
                           "seconds (default 60)")
    camp.add_argument("--workers", type=int, default=None, metavar="N",
                      help="worker processes (default: min(cells, cpus))")
    camp.add_argument("--resume", action="store_true",
                      help="marker for relaunches; a campaign over the "
                           "same --out always reuses completed cells and "
                           "resumes interrupted ones")

    chaos = sub.add_parser(
        "chaos", help="fault-injection run: scenario x policy comparison")
    add_common(chaos)
    chaos.add_argument("--scenario", default="dp_crash_restart",
                       help="fault scenario name (--list shows all)")
    chaos.add_argument("--list", action="store_true",
                       help="list available scenarios and exit")
    chaos.add_argument("--baseline-only", action="store_true",
                       help="run only the timeout-only baseline")
    chaos.add_argument("--resilient-only", action="store_true",
                       help="run only the resilient policy stack")
    add_obs(chaos)

    diff = sub.add_parser(
        "diff", help="differential replay: run a config pair, bisect "
                     "to the first divergent event")
    diff.add_argument("--pair", default="fast-paths",
                      choices=("fast-paths", "batch-dispatch",
                               "vectorized-sites", "indexed-view", "spans",
                               "telemetry", "workers", "delta-sync",
                               "autoscale-frozen", "sharded-2", "sharded-4",
                               "resume", "resume-sharded"),
                      help="equivalence claim to check (default: "
                           "fast-paths)")
    diff.add_argument("--duration", type=float, default=300.0,
                      help="simulated seconds per side (default 300)")
    diff.add_argument("--seed", type=int, default=20050101)
    diff.add_argument("--inject", type=int, default=None, metavar="N",
                      help="corrupt side B's event #N to demo bisection")

    lint = sub.add_parser(
        "lint", help="AST determinism lint over simulation sources")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files/directories to lint (default: the "
                           "installed repro package)")

    tr = sub.add_parser("trace",
                        help="analyze a span export (--trace-spans file)")
    tsub = tr.add_subparsers(dest="trace_command", required=True)
    ta = tsub.add_parser("analyze",
                         help="aggregate report: taxonomy, outcomes, "
                              "staleness, sync lag")
    ta.add_argument("spans", metavar="SPANS_JSONL")
    tc = tsub.add_parser("critical-path",
                         help="full causal tree for one job, critical "
                              "path marked")
    tc.add_argument("spans", metavar="SPANS_JSONL")
    tc.add_argument("job", type=int, help="job id (jid)")
    ts = tsub.add_parser("slowest", help="slowest job traces")
    ts.add_argument("spans", metavar="SPANS_JSONL")
    ts.add_argument("-n", type=int, default=10, metavar="N")
    te = tsub.add_parser("export-chrome",
                         help="convert to Chrome trace_event JSON "
                              "(open in Perfetto / chrome://tracing)")
    te.add_argument("spans", metavar="SPANS_JSONL")
    te.add_argument("out", metavar="OUT_JSON")
    for p in (ta, tc, ts):
        p.add_argument("--tolerant", action="store_true",
                       help="skip undecodable lines (truncated exports "
                            "from killed runs) instead of erroring")

    top = sub.add_parser(
        "top", help="terminal dashboard over a telemetry timeline "
                    "(replay a finished file, or --follow a live "
                    "--serve-telemetry run)")
    top.add_argument("timeline", metavar="TIMELINE_JSONL")
    top.add_argument("--replay", action="store_true",
                     help="replay mode (the default; flag kept for "
                          "explicitness)")
    top.add_argument("--follow", action="store_true",
                     help="tail a live --serve-telemetry file instead "
                          "of replaying")
    top.add_argument("--once", action="store_true",
                     help="render only the final frame and exit "
                          "(replay mode)")
    top.add_argument("--speed", type=float, default=0.0, metavar="X",
                     help="replay pacing: X simulated seconds per wall "
                          "second (default 0 = no pacing)")
    top.add_argument("--ansi", action="store_true",
                     help="redraw in place (ANSI clear) instead of "
                          "appending frames")
    top.add_argument("--max-frames", type=int, default=None, metavar="N",
                     help="stop after N frames (replay mode)")
    top.add_argument("--poll", type=float, default=0.5, metavar="S",
                     help="follow mode: poll interval in wall seconds")
    top.add_argument("--idle", type=int, default=20, metavar="N",
                     help="follow mode: exit after N empty polls "
                          "(0 = wait forever)")

    pm = sub.add_parser(
        "postmortem", help="analyze a flight-recorder dump "
                           "(flight-<seed>.json)")
    pm.add_argument("dump", metavar="FLIGHT_JSON")
    return parser


def _obs_overrides(args) -> dict:
    """Config overrides for the ``--trace``/``--trace-spans`` flags."""
    overrides = {}
    if getattr(args, "trace", None) is not None:
        overrides["trace_enabled"] = True
        if args.trace:
            parent = os.path.dirname(args.trace) or "."
            if not os.path.isdir(parent):
                raise SystemExit(
                    f"error: --trace directory does not exist: {parent}")
            overrides["trace_path"] = args.trace
    if getattr(args, "trace_spans", None) is not None:
        overrides["spans_enabled"] = True
        if args.trace_spans:
            parent = os.path.dirname(args.trace_spans) or "."
            if not os.path.isdir(parent):
                raise SystemExit(
                    f"error: --trace-spans directory does not exist: "
                    f"{parent}")
            overrides["spans_path"] = args.trace_spans
    if getattr(args, "trace_sample", 1) != 1:
        if args.trace_sample < 1:
            raise SystemExit(
                f"error: --trace-sample must be >= 1, "
                f"got {args.trace_sample}")
        overrides["spans_sample"] = args.trace_sample
    if getattr(args, "telemetry", None) is not None:
        overrides["telemetry_enabled"] = True
        if args.telemetry:
            _require_parent_dir("--telemetry", args.telemetry)
            overrides["telemetry_path"] = args.telemetry
    if getattr(args, "serve_telemetry", None):
        _require_parent_dir("--serve-telemetry", args.serve_telemetry)
        overrides["telemetry_enabled"] = True
        overrides["telemetry_path"] = args.serve_telemetry
        overrides["serve_telemetry"] = True
    if getattr(args, "telemetry_interval", None) is not None:
        if args.telemetry_interval <= 0:
            raise SystemExit("error: --telemetry-interval must be > 0")
        overrides["telemetry_interval_s"] = args.telemetry_interval
    if getattr(args, "flight", None) is not None:
        overrides["flight_enabled"] = True
        if args.flight:
            _require_parent_dir("--flight", args.flight)
            overrides["flight_path"] = args.flight
    return overrides


def _require_parent_dir(flag: str, path: str) -> None:
    parent = os.path.dirname(path) or "."
    if not os.path.isdir(parent):
        raise SystemExit(f"error: {flag} directory does not exist: {parent}")


def _print_obs(args, result) -> None:
    if getattr(args, "obs", False):
        print()
        print(result.obs_summary())
    if getattr(args, "trace", None):
        print(f"trace written to {args.trace}")
    if getattr(args, "trace_spans", None):
        print(f"spans written to {args.trace_spans} "
              f"(inspect: digruber trace analyze {args.trace_spans})")
    tl_path = (getattr(args, "serve_telemetry", None)
               or getattr(args, "telemetry", None))
    if tl_path:
        print(f"timeline written to {tl_path} "
              f"(view: digruber top {tl_path})")


def _base_config(args):
    from repro.experiments import canonical_gt3, canonical_gt4
    maker = canonical_gt3 if args.profile == "gt3" else canonical_gt4
    overrides = {"duration_s": args.duration}
    if args.seed is not None:
        overrides["seed"] = args.seed
    return maker, overrides


def _cmd_quickstart(args) -> int:
    from repro.experiments import ExperimentConfig, run_experiment
    from repro.workloads import JobModel
    config = ExperimentConfig(
        name="quickstart", decision_points=3, n_clients=20,
        duration_s=600.0, n_sites=40, total_cpus=4000, n_vos=4,
        groups_per_vo=3, sync_interval_s=60.0,
        job_model=JobModel(duration_mean_s=240.0, min_duration_s=20.0),
        seed=7, **_obs_overrides(args))
    result = run_experiment(config)
    print(result.summary())
    _print_obs(args, result)
    return 0


def _cmd_fig1(args) -> int:
    from repro.experiments import run_fig1_service_creation
    result = run_fig1_service_creation(n_clients=args.clients,
                                       duration_s=args.duration)
    print(result.summary())
    return 0


def _cmd_scalability(args) -> int:
    from repro.experiments.figures import (
        run_scalability_sweep,
        table_overall_performance,
    )
    maker, overrides = _base_config(args)
    results = run_scalability_sweep(maker(**overrides),
                                    dp_counts=tuple(args.dps))
    for k in sorted(results):
        print(f"\n--- {args.profile.upper()} DI-GRUBER, {k} decision "
              f"point(s) ---")
        print(results[k].diperf().summary())
    print("\n" + table_overall_performance(results))
    return 0


def _cmd_accuracy(args) -> int:
    from repro.experiments.figures import (
        accuracy_vs_interval_table,
        run_accuracy_sweep,
    )
    maker, overrides = _base_config(args)
    results = run_accuracy_sweep(maker(**overrides),
                                 intervals_min=tuple(args.intervals),
                                 decision_points=args.dps)
    print(accuracy_vs_interval_table(results))
    return 0


def _cmd_grubsim(args) -> int:
    from repro.experiments import run_experiment
    from repro.grubsim import DPPerformanceModel, GrubSim
    from repro.net import GT3_PROFILE, GT4_PROFILE
    maker, overrides = _base_config(args)
    result = run_experiment(maker(1, **overrides))
    profile = GT3_PROFILE if args.profile == "gt3" else GT4_PROFILE
    sized = GrubSim(DPPerformanceModel.from_profile(profile)).replay(
        result.trace, initial_dps=1, name=f"{args.profile.upper()}-based")
    print(sized.summary())
    return 0


def _cmd_run(args) -> int:
    from repro.experiments import run_experiment
    if args.restore is not None:
        if args.shards is not None:
            return _run_sharded_cmd(args, None, None)
        from repro.sim.snapshot import resume_experiment
        result = resume_experiment(args.restore)
        print(result.summary())
        _print_obs(args, result)
        return 0
    maker, overrides = _base_config(args)
    if args.checkpoint_every is not None:
        if args.checkpoint_dir is None:
            raise SystemExit(
                "error: --checkpoint-every needs --checkpoint-dir")
        overrides["checkpoint_every_s"] = args.checkpoint_every
        overrides["checkpoint_dir"] = args.checkpoint_dir
    elif args.checkpoint_dir is not None:
        raise SystemExit("error: --checkpoint-dir needs --checkpoint-every")
    if args.scale_multiplier is not None:
        from repro.experiments.configs import scale_config

        def maker(dps, **ov):  # noqa: F811 - deliberate rebind
            return scale_config(multiplier=args.scale_multiplier,
                                decision_points=dps, **ov)
    if args.clients is not None:
        overrides["n_clients"] = args.clients
    if args.sites is not None:
        overrides["n_sites"] = args.sites
    if args.cpus is not None:
        overrides["total_cpus"] = args.cpus
    if args.sync is not None:
        overrides["sync_interval_s"] = args.sync
    if args.selector is not None:
        overrides["selector"] = args.selector
    if args.topology is not None:
        overrides["topology"] = args.topology
    if args.chaos is not None:
        overrides["chaos_scenario"] = args.chaos
    if args.resilient:
        from repro.resilience import ResilienceConfig
        overrides["resilience"] = ResilienceConfig()
    if args.queue_bound is not None:
        overrides["dp_queue_bound"] = args.queue_bound
    if args.delta_sync:
        overrides["sync_delta"] = True
    if args.no_fast_paths:
        overrides["fast_paths"] = False
    if args.no_batch_dispatch:
        overrides["batch_dispatch"] = False
    if args.no_vectorized_sites:
        overrides["vectorized_sites"] = False
    if args.check or args.check_strict:
        overrides["check_enabled"] = True
        overrides["check_strict"] = args.check_strict
        if args.check_interval is not None:
            overrides["check_interval_s"] = args.check_interval
    if args.workload is not None:
        overrides["workload_profile"] = args.workload
    if args.autoscale is not None:
        if args.shards is not None:
            raise SystemExit(
                "error: --autoscale needs one live deployment; the sharded "
                "runtime partitions it (drop --shards)")
        from repro.control import AutoscaleConfig, scale_rule_names
        if args.autoscale not in scale_rule_names():
            raise SystemExit(
                f"error: unknown autoscale policy {args.autoscale!r}; "
                f"choose from {', '.join(scale_rule_names())}")
        kw = {"policy": args.autoscale}
        if args.placement is not None:
            kw["placement"] = args.placement
        overrides["autoscale"] = AutoscaleConfig(**kw)
    if args.shards is not None:
        return _run_sharded_cmd(args, maker, overrides)
    overrides.update(_obs_overrides(args))
    config = maker(args.dps, **overrides)
    if config.flight_enabled or config.flight_path:
        from repro.obs.flight import install_sigterm_handler
        install_sigterm_handler()
    try:
        result = run_experiment(config)
    except BaseException:
        flight_path = config.flight_path or f"flight-{config.seed}.json"
        if ((config.flight_enabled or config.flight_path)
                and os.path.exists(flight_path)):
            print(f"flight recorder dumped to {flight_path} "
                  f"(analyze: digruber postmortem {flight_path})",
                  file=sys.stderr)
        raise
    print(result.summary())
    cs = result.control_stats()
    if cs is not None:
        print("control: " + " ".join(f"{k}={v}" for k, v in cs.items()))
    if args.chaos is not None or args.resilient:
        stats = result.resilience_stats()
        print("chaos/resilience: "
              + " ".join(f"{k}={v}" for k, v in stats.items()))
    if result.checker is not None:
        print(result.checker.summary())
        _print_obs(args, result)
        return 1 if result.checker.violations else 0
    _print_obs(args, result)
    return 0


def _run_sharded_cmd(args, maker, overrides) -> int:
    """``digruber run --shards=N``: the space-parallel kernel path."""
    from repro.sim.sharded import run_sharded
    if args.restore is not None:
        if args.shard_workers:
            raise SystemExit(
                "error: barrier restore is lockstep-only; drop "
                "--shard-workers")
        from repro.sim.snapshot import decode_config, read_snapshot
        config = decode_config(read_snapshot(args.restore)["config"])
        result = run_sharded(config, n_shards=args.shards,
                             mode="lockstep", restore=args.restore)
        print(result.describe())
        return 0
    if (args.trace is not None or args.trace_spans is not None
            or args.obs):
        raise SystemExit(
            "error: --shards forces per-sim observability off in every "
            "neighborhood; drop --trace/--trace-spans/--obs")
    if args.serve_telemetry or args.flight is not None:
        raise SystemExit(
            "error: --serve-telemetry/--flight need one live simulator; "
            "sharded telemetry is barrier-sampled instead (--telemetry "
            "FILE writes the merged grid-wide timeline)")
    # Sharded telemetry works differently (hood-local barrier sampling,
    # merged at the end) but flows through the same config fields.
    overrides.update(_obs_overrides(args))
    config = maker(args.dps, **overrides)
    mode = "workers" if args.shard_workers else "lockstep"
    result = run_sharded(config, n_shards=args.shards, mode=mode)
    print(result.describe())
    if result.timeline is not None and config.telemetry_path:
        print(f"merged timeline ({len(result.timeline)} rows) written to "
              f"{config.telemetry_path} "
              f"(view: digruber top {config.telemetry_path})")
    return 0


def _cmd_chaos(args) -> int:
    from repro.experiments import run_experiment
    from repro.experiments.configs import chaos_smoke_config
    from repro.faults.scenarios import scenario_names
    if args.list:
        for name in scenario_names():
            print(name)
        return 0
    if args.scenario not in scenario_names():
        raise SystemExit(f"error: unknown scenario {args.scenario!r}; "
                         f"choose from {', '.join(scenario_names())}")
    variants = []
    if not args.resilient_only:
        variants.append(("baseline", False))
    if not args.baseline_only:
        variants.append(("resilient", True))
    overrides = {"duration_s": args.duration, **_obs_overrides(args)}
    if args.seed is not None:
        overrides["seed"] = args.seed
    last = None
    for label, resilient in variants:
        config = chaos_smoke_config(scenario=args.scenario,
                                    resilient=resilient, **overrides)
        result = run_experiment(config)
        fb = result.client_fallbacks()
        stats = result.resilience_stats()
        print(f"--- {args.scenario} / {label} ---")
        print(result.summary())
        print("policy: " + " ".join(f"{k}={v}" for k, v in stats.items()))
        print(f"brokered={fb['handled']} fallback={fb['timeout']}")
        last = result
    if last is not None:
        _print_obs(args, last)
    return 0


def _cmd_campaign(args) -> int:
    from repro.experiments.campaign import (campaign_configs,
                                            campaign_manifest, run_campaign)
    configs = campaign_configs(args.preset, duration_s=args.duration)
    manifest = campaign_manifest(args.out, configs)
    label = "resuming" if args.resume else "starting"
    print(f"{label} campaign {args.preset!r}: {len(configs)} cell(s) -> "
          f"{args.out} (completed={len(manifest['completed'])} "
          f"resumable={len(manifest['resumable'])} "
          f"pending={len(manifest['pending'])})")
    report = run_campaign(configs, args.out,
                          checkpoint_every_s=args.checkpoint_every,
                          max_workers=args.workers)
    for record in report["cells"]:
        resumed = (f" (resumed from {record['resumed_from']})"
                   if record.get("resumed_from") else "")
        print(f"  {record['name']}: digest={record['summary_digest']} "
              f"jobs={record['n_jobs']}{resumed}")
    for name in report["failed"]:
        print(f"  {name}: FAILED")
    print(f"aggregate digest={report['digest']} -> "
          f"{os.path.join(args.out, 'aggregate.json')}")
    return 0 if report["pass_campaign"] else 1


def _cmd_report(args) -> int:
    from repro.experiments.report import main as report_main
    argv = ["--duration", str(args.duration)]
    if args.out != "-":
        argv += ["--out", args.out]
    if args.parallel is not None:
        argv += ["--parallel", str(args.parallel)] if args.parallel else \
            ["--parallel"]
    return report_main(argv)


def _cmd_diff(args) -> int:
    from repro.check import run_pair
    report = run_pair(args.pair, duration_s=args.duration, seed=args.seed,
                      inject=args.inject)
    print(report.describe())
    return 0 if report.identical else 1


def _cmd_lint(args) -> int:
    from repro.check.lint import main as lint_main
    return lint_main(args.paths or None)


def _cmd_trace(args) -> int:
    from repro.obs.span_analysis import (
        analyze_report,
        critical_path_report,
        export_chrome_file,
        load_spans,
        slowest_report,
    )
    if args.trace_command == "export-chrome":
        n = export_chrome_file(args.spans, args.out)
        print(f"wrote {n} trace events to {args.out}")
        return 0
    spans = load_spans(args.spans, tolerant=getattr(args, "tolerant", False))
    if args.trace_command == "analyze":
        print(analyze_report(spans))
    elif args.trace_command == "critical-path":
        print(critical_path_report(spans, args.job))
    elif args.trace_command == "slowest":
        print(slowest_report(spans, n=args.n))
    return 0


def _cmd_top(args) -> int:
    from repro.obs import top
    if args.follow:
        n = top.follow(args.timeline, poll_s=args.poll,
                       idle_polls=args.idle if args.idle > 0 else None,
                       ansi=args.ansi)
    else:
        n = top.replay(args.timeline, speed=args.speed, once=args.once,
                       ansi=args.ansi, max_frames=args.max_frames)
    return 0 if n > 0 else 1


def _cmd_postmortem(args) -> int:
    import json

    from repro.obs.flight import load_flight, postmortem_report
    try:
        doc = load_flight(args.dump)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise SystemExit(f"digruber postmortem: {exc}")
    print(postmortem_report(doc))
    return 0


_COMMANDS = {
    "quickstart": _cmd_quickstart,
    "fig1": _cmd_fig1,
    "scalability": _cmd_scalability,
    "accuracy": _cmd_accuracy,
    "grubsim": _cmd_grubsim,
    "report": _cmd_report,
    "run": _cmd_run,
    "campaign": _cmd_campaign,
    "chaos": _cmd_chaos,
    "diff": _cmd_diff,
    "lint": _cmd_lint,
    "trace": _cmd_trace,
    "top": _cmd_top,
    "postmortem": _cmd_postmortem,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # `digruber trace analyze ... | head` closes stdout early;
        # treat it as a clean exit, not a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
