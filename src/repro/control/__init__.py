"""repro.control: closed-loop decision-point autoscaling (paper §5.1).

The elastic brokering plane: a :class:`~repro.control.signals.SignalBus`
samples live signals on the DES clock, pluggable scale rules
(:mod:`repro.control.policy`) turn them into a desired decision-point
count, and the :class:`~repro.control.actuator.Actuator` applies it
through the deployment's retire/revive machinery with bounded dynamic
client placement (:mod:`repro.control.placement`).  The
:class:`~repro.control.planner.AutoscalePlanner` ties the loop together
under hysteresis and cooldowns, journaling every action.
"""

from repro.control.actuator import Actuator, ControlAction
from repro.control.placement import (ConsistentHashPlacement,
                                     LeastLoadedPlacement, PlacementStep,
                                     make_placement, migration_bound)
from repro.control.planner import AutoscalePlanner
from repro.control.policy import (SCALE_RULES, AutoscaleConfig,
                                  scale_rule_names)
from repro.control.signals import ControlSample, DPSignal, SignalBus

__all__ = [
    "Actuator",
    "ControlAction",
    "AutoscaleConfig",
    "AutoscalePlanner",
    "ConsistentHashPlacement",
    "ControlSample",
    "DPSignal",
    "LeastLoadedPlacement",
    "PlacementStep",
    "SCALE_RULES",
    "SignalBus",
    "make_placement",
    "migration_bound",
    "scale_rule_names",
]
