"""Actuator: executes scale decisions against the running deployment.

Scale-up revives retired decision points first (the PR-2
crash→restart/resync machinery: a revived broker pulls recent dispatch
records from its new overlay neighbors) and only then deploys fresh
ones; scale-down evacuates the victim's clients through the placement
module and retires the service cleanly.  Every membership change flows
through :class:`~repro.core.broker.TopologyEvent`, the same structured
stream the :class:`~repro.core.rebalance.ReconfigurationObserver`
emits on, and the actuator *listens* on that stream too — an
observer-driven join/leave (or a chaos crash surfaced by the observer)
marks the placement dirty so the next control window rebalances around
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.control.placement import make_placement, migration_bound
from repro.control.policy import AutoscaleConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.broker import DIGruberDeployment, TopologyEvent
    from repro.sim.kernel import Simulator

__all__ = ["ControlAction", "Actuator"]


@dataclass(frozen=True)
class ControlAction:
    """One actuation the planner took (journaled, benched, asserted on)."""

    time: float
    kind: str            # "scale_up" | "scale_down" | "rebalance"
    n_before: int
    n_after: int
    dps: tuple[str, ...] = ()      # joined/retired decision points
    clients_moved: int = 0
    clients_deferred: int = 0

    def detail(self) -> str:
        """Deterministic journal payload (no floats beyond sim time)."""
        return (f"{self.kind}|{self.n_before}->{self.n_after}"
                f"|dps={','.join(self.dps)}|moved={self.clients_moved}"
                f"|deferred={self.clients_deferred}")


class Actuator:
    """Applies scale/placement decisions; keeps the assignment map."""

    def __init__(self, sim: "Simulator", deployment: "DIGruberDeployment",
                 config: AutoscaleConfig, rng: np.random.Generator):
        self.sim = sim
        self.deployment = deployment
        self.config = config
        self.rng = rng
        self.placement = make_placement(config.placement,
                                        vnodes=config.vnodes)
        self.actions: list[ControlAction] = []
        self.clients_moved = 0
        #: Set when membership changed under us (observer action, chaos
        #: crash/restart surfaced as a topology event): the next control
        #: window runs a placement fix-up even without a scale decision.
        self.placement_dirty = False
        deployment.on_topology_change.append(self._on_topology)

    # -- membership stream -------------------------------------------------
    def _on_topology(self, event: "TopologyEvent") -> None:
        if event.source != "autoscale":
            self.placement_dirty = True

    # -- helpers -------------------------------------------------------------
    def _assignment(self) -> dict[str, str]:
        return {str(c.node_id): str(c.decision_point)
                for c in self.deployment.clients}

    def _clients_by_host(self) -> dict[str, object]:
        return {str(c.node_id): c for c in self.deployment.clients}

    def _apply_step(self, step) -> int:
        by_host = self._clients_by_host()
        moved = 0
        for host in sorted(step.forced):
            by_host[host].rebind(step.forced[host])
            moved += 1
        for host in sorted(step.moves):
            by_host[host].rebind(step.moves[host])
            moved += 1
        self.clients_moved += moved
        if moved:
            self.sim.metrics.counter("control.migrations").inc(moved)
        return moved

    def _record(self, action: ControlAction) -> None:
        self.actions.append(action)
        self.sim.metrics.counter(f"control.{action.kind}").inc()
        if self.sim.trace.enabled:
            self.sim.trace.emit("control.action", kind=action.kind,
                                n_before=action.n_before,
                                n_after=action.n_after,
                                dps=",".join(action.dps),
                                moved=action.clients_moved)

    # -- actuation -----------------------------------------------------------
    def scale_up(self, n: int) -> ControlAction:
        """Add ``n`` live decision points: revive retired, then create."""
        deployment = self.deployment
        before = len(deployment.live_dp_ids)
        joined = []
        for _ in range(n):
            revivable = sorted(deployment.retired)
            if revivable:
                dp = deployment.revive_decision_point(revivable[0],
                                                      source="autoscale")
            else:
                dp = deployment.add_decision_point(source="autoscale")
            joined.append(str(dp.node_id))
        moved, deferred = self._rebalance_onto(deployment.live_dp_ids)
        action = ControlAction(
            time=self.sim.now, kind="scale_up", n_before=before,
            n_after=len(deployment.live_dp_ids), dps=tuple(joined),
            clients_moved=moved, clients_deferred=deferred)
        self._record(action)
        return action

    def scale_down(self, n: int) -> ControlAction:
        """Retire the ``n`` least-loaded live decision points.

        Clients are evacuated *before* the broker retires — in-flight
        queries still finish against it (rebind is a client-side
        pointer swap) — and evacuations are forced moves, exempt from
        the voluntary-migration bound: staying is not an option.
        """
        deployment = self.deployment
        before = len(deployment.live_dp_ids)
        victims: list[str] = []
        evacuated = 0
        for _ in range(n):
            live = deployment.live_dp_ids
            if len(live) <= max(self.config.min_dps, 1):
                break
            # Fewest bound clients; ties break on dp id (deterministic).
            victim = min(sorted(live),
                         key=lambda d: len(deployment.clients_of(d)))
            victims.append(victim)
            survivors = [d for d in live if d != victim]
            for client in list(deployment.clients_of(victim)):
                client.rebind(self._evacuation_target(str(client.node_id),
                                                      survivors))
                evacuated += 1
            deployment.retire_decision_point(victim, source="autoscale")
        if evacuated:
            self.clients_moved += evacuated
            self.sim.metrics.counter("control.migrations").inc(evacuated)
        moved, deferred = self._rebalance_onto(deployment.live_dp_ids)
        action = ControlAction(
            time=self.sim.now, kind="scale_down", n_before=before,
            n_after=len(deployment.live_dp_ids), dps=tuple(victims),
            clients_moved=moved + evacuated,
            clients_deferred=deferred)
        self._record(action)
        return action

    def _evacuation_target(self, host: str, survivors: list[str]) -> str:
        if self.config.placement == "consistent_hash":
            return self.placement.assign_one(host, survivors)
        counts = {d: len(self.deployment.clients_of(d)) for d in survivors}
        low = min(counts.values())
        ties = [d for d in sorted(counts) if counts[d] == low]
        if len(ties) > 1:
            return ties[int(self.rng.integers(0, len(ties)))]
        return ties[0]

    def fix_placement(self) -> Optional[ControlAction]:
        """Heal the assignment after an external membership change."""
        self.placement_dirty = False
        live = self.deployment.live_dp_ids
        if not live:
            return None
        before = len(live)
        moved, deferred = self._rebalance_onto(live)
        if moved == 0:
            return None
        action = ControlAction(
            time=self.sim.now, kind="rebalance", n_before=before,
            n_after=before, clients_moved=moved,
            clients_deferred=deferred)
        self._record(action)
        return action

    def _rebalance_onto(self, live: list[str]) -> tuple[int, int]:
        if not live:
            return 0, 0
        assignment = self._assignment()
        bound = migration_bound(len(assignment), len(live),
                                factor=self.config.migration_bound_factor)
        step = self.placement.rebalance(assignment, live, max_moves=bound,
                                        rng=self.rng)
        return self._apply_step(step), step.deferred
