"""Dynamic client placement with bounded per-step migration.

Two strategies for mapping submission hosts onto the live decision-point
set while it grows and shrinks:

* :class:`ConsistentHashPlacement` — a CRC32 ring with virtual nodes
  (never Python's ``hash()``: that is salted per process and would
  break cross-run determinism).  A join only claims ring segments from
  its successors; a leave only orphans its own segments — the classic
  minimal-disruption property.
* :class:`LeastLoadedPlacement` — greedy fewest-clients-first with
  seed-pinned tie-breaking, the paper's "rebalancing load among
  existing decision points" reading.

Both enforce a **migration bound**: voluntary moves per rebalance step
are capped at ``ceil(K/N)`` clients (K clients, N live decision
points, scaled by a config factor).  Forced moves — clients bound to a
dead or retired broker — are exempt, since staying put is not an
option.  A step that hits the cap leaves the placement slightly stale;
the next control window moves the rest, so churn per window is bounded
no matter how violent the topology change.
"""

from __future__ import annotations

import bisect
import math
import zlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

__all__ = ["PlacementStep", "ConsistentHashPlacement",
           "LeastLoadedPlacement", "make_placement", "migration_bound"]


def migration_bound(n_clients: int, n_dps: int, factor: float = 1.0) -> int:
    """Voluntary moves allowed in one rebalance step: ceil(K/N) * factor."""
    if n_dps <= 0:
        return 0
    return max(1, math.ceil(factor * math.ceil(n_clients / n_dps)))


@dataclass
class PlacementStep:
    """Outcome of one rebalance: who moves where, and why."""

    moves: dict[str, str] = field(default_factory=dict)     # voluntary
    forced: dict[str, str] = field(default_factory=dict)    # evacuations
    deferred: int = 0    # voluntary moves withheld by the bound

    @property
    def n_moves(self) -> int:
        return len(self.moves) + len(self.forced)


def _crc(key: str) -> int:
    return zlib.crc32(key.encode("utf-8"))


class ConsistentHashPlacement:
    """CRC32 ring with virtual nodes; deterministic across processes."""

    def __init__(self, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._ring_cache: dict[tuple[str, ...], tuple[list[int], list[str]]] \
            = {}

    def _ring(self, dps: Sequence[str]) -> tuple[list[int], list[str]]:
        key = tuple(sorted(dps))
        cached = self._ring_cache.get(key)
        if cached is not None:
            return cached
        points = sorted((_crc(f"{dp}#{v}"), dp)
                        for dp in key for v in range(self.vnodes))
        ring = ([p for p, _ in points], [d for _, d in points])
        self._ring_cache[key] = ring
        return ring

    def assign_one(self, client: str, dps: Sequence[str]) -> str:
        hashes, owners = self._ring(dps)
        h = _crc(client)
        # First ring point clockwise from the client's hash (wraps).
        i = bisect.bisect_right(hashes, h)
        return owners[i % len(owners)]

    def assign(self, clients: Sequence[str], dps: Sequence[str]
               ) -> dict[str, str]:
        """Full ring assignment (initial placement)."""
        if not dps:
            raise ValueError("no decision points to assign to")
        return {c: self.assign_one(c, dps) for c in clients}

    def rebalance(self, assignment: dict[str, str], dps: Sequence[str],
                  max_moves: Optional[int] = None,
                  rng: Optional[np.random.Generator] = None
                  ) -> PlacementStep:
        """Moves to converge ``assignment`` toward the ring, bounded.

        ``rng`` is unused (the ring is fully deterministic); accepted so
        both placements share a call signature.
        """
        if not dps:
            return PlacementStep()
        live = set(dps)
        if max_moves is None:
            max_moves = migration_bound(len(assignment), len(dps))
        step = PlacementStep()
        voluntary: list[tuple[str, str]] = []
        for client in sorted(assignment):
            current = assignment[client]
            target = self.assign_one(client, dps)
            if current not in live:
                step.forced[client] = target
            elif target != current:
                voluntary.append((client, target))
        for client, target in voluntary[:max_moves]:
            step.moves[client] = target
        step.deferred = max(0, len(voluntary) - max_moves)
        return step


class LeastLoadedPlacement:
    """Fewest-clients-first with seed-pinned tie-breaking."""

    def assign(self, clients: Sequence[str], dps: Sequence[str],
               rng: Optional[np.random.Generator] = None) -> dict[str, str]:
        if not dps:
            raise ValueError("no decision points to assign to")
        counts = {dp: 0 for dp in sorted(dps)}
        out = {}
        for client in sorted(clients):
            out[client] = self._pick(counts, rng)
            counts[out[client]] += 1
        return out

    @staticmethod
    def _pick(counts: dict[str, int],
              rng: Optional[np.random.Generator]) -> str:
        low = min(counts.values())
        ties = [dp for dp in sorted(counts) if counts[dp] == low]
        if rng is not None and len(ties) > 1:
            return ties[int(rng.integers(0, len(ties)))]
        return ties[0]

    def rebalance(self, assignment: dict[str, str], dps: Sequence[str],
                  max_moves: Optional[int] = None,
                  rng: Optional[np.random.Generator] = None
                  ) -> PlacementStep:
        """Evacuate dead brokers, then level counts within the bound."""
        if not dps:
            return PlacementStep()
        live = set(dps)
        if max_moves is None:
            max_moves = migration_bound(len(assignment), len(dps))
        counts = {dp: 0 for dp in sorted(dps)}
        per_dp: dict[str, list[str]] = {dp: [] for dp in sorted(dps)}
        step = PlacementStep()
        for client in sorted(assignment):
            dp = assignment[client]
            if dp in live:
                counts[dp] += 1
                per_dp[dp].append(client)
        # Forced first: clients stranded on dead/retired brokers.
        for client in sorted(assignment):
            if assignment[client] not in live:
                target = self._pick(counts, rng)
                step.forced[client] = target
                counts[target] += 1
                per_dp[target].append(client)
        # Then voluntary leveling, one client at a time, bounded.
        while len(step.moves) < max_moves:
            hi = max(sorted(counts), key=lambda d: counts[d])
            lo = self._pick(counts, rng)
            if counts[hi] - counts[lo] <= 1:
                break
            mover = per_dp[hi][0]  # deterministic: sorted insertion order
            per_dp[hi] = per_dp[hi][1:]
            per_dp[lo].append(mover)
            counts[hi] -= 1
            counts[lo] += 1
            step.moves[mover] = lo
        # Residual imbalance beyond the bound is deferred work.
        hi = max(counts.values())
        lo = min(counts.values())
        step.deferred = max(0, hi - lo - 1)
        return step


def make_placement(kind: str, vnodes: int = 64):
    if kind == "consistent_hash":
        return ConsistentHashPlacement(vnodes=vnodes)
    if kind == "least_loaded":
        return LeastLoadedPlacement()
    raise ValueError(f"unknown placement {kind!r}")
