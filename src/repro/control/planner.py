"""AutoscalePlanner: the closed control loop over the brokering plane.

Paper §5.1 sketches a "third party observer [that] can decide
dynamically what steps should be taken to reconfigure the scheduling
infrastructure" but evaluates sizing only offline (GRUB-SIM, Table 3).
The planner closes that loop at runtime on the DES clock:

    SignalBus.sample() → scale rule → hysteresis/cooldown → Actuator

Every control action is journaled (``ctl.scale`` entries in the
:class:`~repro.check.digest.EventJournal`) so ``digruber diff`` and the
online invariant checker gate the controller exactly like the
brokering plane itself.  The tick itself draws no randomness — the
actuator owns a dedicated seeded stream for placement tie-breaking —
so a run with a ``frozen`` policy is event-identical to a run with no
controller at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.control.actuator import Actuator, ControlAction
from repro.control.policy import SCALE_RULES, AutoscaleConfig
from repro.control.signals import ControlSample, SignalBus

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.broker import DIGruberDeployment
    from repro.sim.kernel import Simulator

__all__ = ["AutoscalePlanner"]


class AutoscalePlanner:
    """Periodic controller: sample, decide, (maybe) act."""

    def __init__(self, sim: "Simulator", deployment: "DIGruberDeployment",
                 config: AutoscaleConfig, rng: np.random.Generator):
        self.sim = sim
        self.deployment = deployment
        self.config = config
        self.bus = SignalBus(sim, deployment, window_s=config.interval_s)
        self.actuator = Actuator(sim, deployment, config, rng)
        self.rule = SCALE_RULES[config.policy]
        #: (time, n_live) after every control window — the convergence
        #: trace the autoscale bench asserts on.
        self.timeline: list[tuple[float, int]] = []
        #: Set by :func:`repro.check.digest.install_probes` when the run
        #: is journaled; every action lands as a ``ctl.scale`` record.
        self.journal = None
        self.ticks = 0
        self._up_streak = 0
        self._down_streak = 0
        self._last_action_at = -float("inf")
        self._handle = None
        # Let the journal prober find the controller on the deployment.
        deployment.controller = self

    def start(self) -> None:
        if self._handle is not None:
            raise RuntimeError("planner already started")
        self._handle = self.sim.every(self.config.interval_s, self.tick,
                                      name="autoscale", on_error="record")

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # -- the control loop --------------------------------------------------
    def tick(self) -> Optional[ControlAction]:
        cfg = self.config
        sample = self.bus.sample()
        current = len(self.deployment.live_dp_ids)
        desired = self.rule(sample, cfg, current)
        self.ticks += 1

        if desired > current:
            self._up_streak += 1
            self._down_streak = 0
        elif desired < current:
            self._down_streak += 1
            self._up_streak = 0
        else:
            self._up_streak = 0
            self._down_streak = 0

        action = None
        in_cooldown = self.sim.now - self._last_action_at < cfg.cooldown_s
        if not in_cooldown:
            if self._up_streak >= cfg.up_consecutive:
                step = min(desired - current, cfg.max_step_up)
                action = self.actuator.scale_up(step)
            elif self._down_streak >= cfg.down_consecutive:
                step = min(current - desired, cfg.max_step_down)
                action = self.actuator.scale_down(step)
            if action is not None:
                self._up_streak = 0
                self._down_streak = 0
                self._last_action_at = self.sim.now
        if action is None and self.actuator.placement_dirty:
            # External membership change (observer, chaos): heal the
            # placement even though no scale decision fired.
            action = self.actuator.fix_placement()

        if action is not None and self.journal is not None:
            self.journal.record(self.sim.now, "ctl.scale", action.detail())
        self.timeline.append((self.sim.now, len(self.deployment.live_dp_ids)))
        self.sim.metrics.gauge("control.desired_dps").set(
            desired, at=self.sim.now)
        return action

    def snapshot_state(self) -> dict:
        """Canonical control-plane state for snapshot digests (JSON-able)."""
        return {
            "ticks": self.ticks,
            "up_streak": self._up_streak,
            "down_streak": self._down_streak,
            "last_action_at": (None if self._last_action_at == -float("inf")
                               else self._last_action_at),
            "timeline_len": len(self.timeline),
            "live_dps": len(self.deployment.live_dp_ids),
            "actions": len(self.actuator.actions),
            "clients_moved": self.actuator.clients_moved,
        }

    # -- reporting ---------------------------------------------------------
    @property
    def last_sample(self) -> Optional[ControlSample]:
        return self.bus.samples[-1] if self.bus.samples else None

    def converged_dps(self, tail_fraction: float = 0.25) -> int:
        """Modal live-DP count over the trailing fraction of the run."""
        if not self.timeline:
            return len(self.deployment.live_dp_ids)
        n_tail = max(1, int(len(self.timeline) * tail_fraction))
        tail = [n for _, n in self.timeline[-n_tail:]]
        counts: dict[int, int] = {}
        for n in tail:
            counts[n] = counts.get(n, 0) + 1
        # Modal count; ties break toward the most recent value.
        best = max(counts.values())
        for n in reversed(tail):
            if counts[n] == best:
                return n
        return tail[-1]

    def stats(self) -> dict:
        a = self.actuator
        ups = sum(1 for x in a.actions if x.kind == "scale_up")
        downs = sum(1 for x in a.actions if x.kind == "scale_down")
        rebalances = sum(1 for x in a.actions if x.kind == "rebalance")
        deferred = sum(x.clients_deferred for x in a.actions)
        return {
            "policy": self.config.policy,
            "placement": self.config.placement,
            "ticks": self.ticks,
            "actions": len(a.actions),
            "scale_ups": ups,
            "scale_downs": downs,
            "rebalances": rebalances,
            "clients_moved": a.clients_moved,
            "moves_deferred": deferred,
            "final_dps": len(self.deployment.live_dp_ids),
            "converged_dps": self.converged_dps(),
        }
