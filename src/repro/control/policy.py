"""Autoscale policy: hysteresis, cooldowns, pluggable scale rules.

The paper answers "how many decision points does a grid need?" offline
(GRUB-SIM replays a query trace against DiPerF-calibrated performance
models, §5.2/Table 3).  This module turns that sizing math into a
*runtime* rule: every control interval a scale rule maps the current
:class:`~repro.control.signals.ControlSample` to a desired live
decision-point count, and the planner applies hysteresis (consecutive
agreeing windows), cooldowns, and bounded steps before acting.

Rules are pluggable via :data:`SCALE_RULES`:

* ``model`` — the GRUB-SIM sizing rule driven by *measured* activity:
  ``demand_qps = active_clients / target_response_s`` (a client at
  adequate response issues one brokering op per target window) and
  ``desired = ceil(demand / (headroom * capacity_qps))``.  Converges to
  the paper's 4-5 decision points at 10x-OSG by construction, because
  it is the paper's own model fed live signals.
* ``reactive`` — model-free hysteresis on the saturation signals
  themselves: scale up when any live decision point runs at the
  DiPerF-calibrated capacity bound with a standing queue (or the queue
  alone breaches the hard bound), scale down when the remaining fleet
  could absorb the measured rate below the low-water mark with queues
  drained.
* ``frozen`` — always returns the current count.  The controller runs
  end to end (sampling, gauges, hysteresis) but never acts; the
  ``autoscale-frozen`` differential-replay pair proves this is
  event-identical to not running a controller at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.control.signals import ControlSample

__all__ = ["AutoscaleConfig", "SCALE_RULES", "scale_rule_names"]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Tuning knobs of the closed-loop controller (frozen, sweepable)."""

    #: Scale-rule name (see :data:`SCALE_RULES`).
    policy: str = "model"
    #: Placement algorithm: "consistent_hash" | "least_loaded".
    placement: str = "consistent_hash"
    #: Control interval on the DES clock, seconds.
    interval_s: float = 60.0
    #: Usable fraction of a decision point's calibrated capacity (the
    #: GRUB-SIM headroom: never plan to run brokers at 100%).
    headroom: float = 0.85
    #: Adequate-response bound: the client timeout.  A client answered
    #: slower than this falls back to random placement, i.e. the
    #: brokering effectively failed (paper §4.3).
    target_response_s: float = 15.0
    min_dps: int = 1
    max_dps: int = 64
    #: Hysteresis: consecutive control windows that must agree before
    #: the planner acts (down is slower than up by default — shedding
    #: capacity is cheap to defer, saturation is not).
    up_consecutive: int = 2
    down_consecutive: int = 5
    #: Quiet period after any scale action, seconds.
    cooldown_s: float = 120.0
    #: Per-action step bounds (up may jump, down drains one at a time).
    max_step_up: int = 4
    max_step_down: int = 1
    #: Per-action voluntary client-migration bound, as a multiple of
    #: ceil(K/N); forced moves (evacuating a dead/retired broker) are
    #: exempt — those clients cannot stay where they are.
    migration_bound_factor: float = 1.0
    #: Virtual nodes per decision point on the consistent-hash ring.
    vnodes: int = 64
    #: Reactive-rule watermarks.
    up_load_factor: float = 0.9
    down_load_factor: float = 0.6
    queue_threshold: int = 10

    def __post_init__(self):
        if self.policy not in SCALE_RULES:
            raise ValueError(f"unknown autoscale policy {self.policy!r}; "
                             f"expected one of {scale_rule_names()}")
        if self.placement not in ("consistent_hash", "least_loaded"):
            raise ValueError(
                f"unknown placement {self.placement!r}; expected "
                f"'consistent_hash' or 'least_loaded'")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if not (0.0 < self.headroom <= 1.0):
            raise ValueError("headroom must be in (0, 1]")
        if self.target_response_s <= 0:
            raise ValueError("target_response_s must be > 0")
        if not (1 <= self.min_dps <= self.max_dps):
            raise ValueError("need 1 <= min_dps <= max_dps")
        if self.up_consecutive < 1 or self.down_consecutive < 1:
            raise ValueError("hysteresis window counts must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if self.max_step_up < 1 or self.max_step_down < 1:
            raise ValueError("step bounds must be >= 1")
        if self.migration_bound_factor <= 0:
            raise ValueError("migration_bound_factor must be > 0")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if not (0.0 < self.down_load_factor < self.up_load_factor <= 1.0):
            raise ValueError(
                "need 0 < down_load_factor < up_load_factor <= 1")

    def clamp(self, n: int) -> int:
        return max(self.min_dps, min(self.max_dps, n))


def rule_model(sample: "ControlSample", cfg: AutoscaleConfig,
               current: int) -> int:
    """GRUB-SIM's sizing formula on live activity measurements.

    ``active_clients`` is the trailing-window count of clients with
    work (an arrival, a served query, or a standing backlog), so a
    diurnal workload breathes through it; the formula is exactly
    :meth:`repro.grubsim.model.DPPerformanceModel.required_dps` with
    the static fleet size replaced by the measured one.
    """
    usable = cfg.headroom * sample.capacity_qps
    if usable <= 0:
        return current
    demand_qps = sample.active_clients / cfg.target_response_s
    return cfg.clamp(max(1, math.ceil(demand_qps / usable)))


def rule_reactive(sample: "ControlSample", cfg: AutoscaleConfig,
                  current: int) -> int:
    """Model-free watermarks on the saturation signals themselves."""
    live = [d for d in sample.dps.values() if d.live]
    if not live:
        return current
    capacity = sample.capacity_qps
    hot = any((d.ops_rate >= cfg.up_load_factor * capacity
               and d.queue_len > 0)
              or d.queue_len >= cfg.queue_threshold
              for d in live)
    if hot:
        return cfg.clamp(current + 1)
    if current > cfg.min_dps and capacity > 0:
        total_rate = sum(d.ops_rate for d in live)
        queues_dry = all(d.queue_len == 0 for d in live)
        if queues_dry and \
                total_rate / (current - 1) < cfg.down_load_factor * capacity:
            return cfg.clamp(current - 1)
    return current


def rule_frozen(sample: "ControlSample", cfg: AutoscaleConfig,
                current: int) -> int:
    """Observe everything, change nothing (the diff-pair control arm)."""
    return current


SCALE_RULES: dict[str, Callable[["ControlSample", AutoscaleConfig, int],
                                int]] = {
    "model": rule_model,
    "reactive": rule_reactive,
    "frozen": rule_frozen,
}


def scale_rule_names() -> tuple[str, ...]:
    return tuple(sorted(SCALE_RULES))
