"""SignalBus: one read-only view of the live signals the planner needs.

The system already emits everything a controller could want — per-DP
decide latency histograms (``dp.decide_s.<dp>``), container queue
depths, ``sync.lag_s``, circuit-breaker state, client backlogs — but
scattered across decision points, clients, and the metrics registry.
The bus samples all of it on the DES clock into one immutable
:class:`ControlSample` per control window, and publishes the levels as
first-class :class:`~repro.obs.counters.Gauge` metrics so the planner
and ``digruber trace analyze`` share a single signal path.

Strictly read-only with respect to the simulation: no RNG draws, no
scheduled events, no state mutation — a sampled run executes the exact
same semantic event sequence as an unsampled one (the
``autoscale-frozen`` differential-replay pair enforces this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.broker import DIGruberDeployment
    from repro.sim.kernel import Simulator

__all__ = ["DPSignal", "ControlSample", "SignalBus"]


@dataclass(frozen=True)
class DPSignal:
    """One decision point's state at a sampling instant."""

    dp_id: str
    online: bool
    retired: bool
    queue_len: int
    in_service: int
    ops_rate: float          # served container ops/s over the window
    decide_count: int        # brokering decisions this window
    decide_mean_s: float     # mean decide latency this window (0 if none)
    clients: int             # clients currently bound here
    breakers_open: int       # client breakers not closed for this DP

    @property
    def live(self) -> bool:
        return self.online and not self.retired


@dataclass(frozen=True)
class ControlSample:
    """Everything the policy sees for one control window."""

    time: float
    dps: dict[str, DPSignal] = field(default_factory=dict)
    capacity_qps: float = 0.0    # calibrated per-DP query capacity
    n_live: int = 0
    total_clients: int = 0
    active_clients: int = 0      # clients with work this window
    backlog: int = 0             # jobs waiting in client backlogs
    sync_lag_mean_s: float = 0.0  # mean record age adopted this window

    @property
    def total_queue(self) -> int:
        return sum(d.queue_len for d in self.dps.values() if d.live)


class SignalBus:
    """Samples deployment + client + metrics state into ControlSamples."""

    def __init__(self, sim: "Simulator", deployment: "DIGruberDeployment",
                 window_s: float = 60.0):
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        self.sim = sim
        self.deployment = deployment
        self.window_s = window_s
        self.samples: list[ControlSample] = []
        # Previous cumulative histogram readings, for window deltas
        # (histograms only ever grow; a window's count/total is the
        # difference of two snapshots).
        self._prev_decide: dict[str, tuple[int, float]] = {}
        self._prev_sync_lag: tuple[int, float] = (0, 0.0)
        self._prev_jobs: dict[str, int] = {}

    def _hist_delta(self, name: str, prev: tuple[int, float]
                    ) -> tuple[tuple[int, float], int, float]:
        h = self.sim.metrics.histograms.get(name)
        if h is None:
            return prev, 0, 0.0
        d_count = h.count - prev[0]
        d_total = h.total - prev[1]
        return (h.count, h.total), d_count, d_total

    def sample(self) -> ControlSample:
        """One sampling pass; records the sample and updates the gauges."""
        sim, deployment = self.sim, self.deployment
        metrics = sim.metrics
        now = sim.now
        window = min(60.0, self.window_s)

        # Per-DP client binding counts in one pass over the fleet.
        bound: dict[str, int] = {}
        breakers_open: dict[str, int] = {}
        active = 0
        backlog = 0
        for client in deployment.clients:
            dp_key = str(client.decision_point)
            bound[dp_key] = bound.get(dp_key, 0) + 1
            hid = str(client.node_id)
            n_jobs = len(client.jobs)
            grew = n_jobs > self._prev_jobs.get(hid, 0)
            self._prev_jobs[hid] = n_jobs
            blog = client.backlog_len
            backlog += blog
            if grew or blog > 0:
                active += 1
            # Client-private breaker map: the bus is the one sanctioned
            # reader (read-only; breaker state is a first-class signal).
            for dp_id, breaker in getattr(client, "_breakers", {}).items():
                if breaker.state != "closed":
                    key = str(dp_id)
                    breakers_open[key] = breakers_open.get(key, 0) + 1

        dps: dict[str, DPSignal] = {}
        for dp_id, dp in deployment.decision_points.items():
            key = str(dp_id)
            prev = self._prev_decide.get(key, (0, 0.0))
            self._prev_decide[key], d_count, d_total = \
                self._hist_delta(f"dp.decide_s.{dp_id}", prev)
            dps[key] = DPSignal(
                dp_id=key,
                online=dp.online,
                retired=key in deployment.retired,
                queue_len=dp.container.queue_len,
                in_service=dp.container.in_service,
                ops_rate=dp.container.ops_in_window(window) / window,
                decide_count=d_count,
                decide_mean_s=d_total / d_count if d_count else 0.0,
                clients=bound.get(dp_id, 0),
                breakers_open=breakers_open.get(dp_id, 0))

        self._prev_sync_lag, lag_count, lag_total = self._hist_delta(
            "sync.lag_s", self._prev_sync_lag)

        sample = ControlSample(
            time=now,
            dps=dps,
            capacity_qps=deployment.profile.query_capacity_qps,
            n_live=sum(1 for d in dps.values() if d.live),
            total_clients=len(deployment.clients),
            active_clients=active,
            backlog=backlog,
            sync_lag_mean_s=lag_total / lag_count if lag_count else 0.0)
        self.samples.append(sample)
        self.publish(sample)
        return sample

    def publish(self, sample: ControlSample) -> None:
        """Publish one sample's levels as first-class gauges.

        The single write path from control sampling into the metrics
        registry: the telemetry plane
        (:class:`~repro.obs.timeline.TimelineSampler`) never recomputes
        these — it reads them back through
        :meth:`~repro.obs.counters.MetricsRegistry.collect`, so every
        gauge is computed exactly once per control tick and the planner
        and the timeline are guaranteed to agree.
        """
        metrics = self.sim.metrics
        now = sample.time
        for key, d in sample.dps.items():
            metrics.gauge(f"dp.queue_depth.{key}").set(d.queue_len, at=now)
            metrics.gauge(f"dp.clients.{key}").set(d.clients, at=now)
            metrics.gauge(f"dp.in_service.{key}").set(d.in_service, at=now)
            metrics.gauge(f"dp.ops_rate.{key}").set(d.ops_rate, at=now)
            metrics.gauge(f"dp.decide_mean_s.{key}").set(d.decide_mean_s,
                                                         at=now)
            metrics.gauge(f"dp.breakers_open.{key}").set(d.breakers_open,
                                                         at=now)
            metrics.gauge(f"dp.online.{key}").set(1.0 if d.live else 0.0,
                                                  at=now)
        metrics.gauge("control.n_dps").set(sample.n_live, at=now)
        metrics.gauge("control.active_clients").set(sample.active_clients,
                                                    at=now)
        metrics.gauge("control.client_backlog").set(sample.backlog, at=now)
        metrics.gauge("control.total_queue").set(sample.total_queue, at=now)
        metrics.gauge("control.sync_lag_s").set(sample.sync_lag_mean_s,
                                                at=now)
