"""GRUBER / DI-GRUBER: the paper's contribution.

* :mod:`repro.core.state` — a decision point's (possibly stale) view of
  grid resource usage, built from its own dispatches, peer dispatch
  records received at sync, and periodic monitor refreshes;
* :mod:`repro.core.engine` — the GRUBER engine: availability detection
  and USLA-filtered resource views;
* :mod:`repro.core.monitor` — the site monitor data provider;
* :mod:`repro.core.selectors` — site-selector task-assignment policies
  (round-robin, least-used, least-recently-used, random);
* :mod:`repro.core.decision_point` — the DI-GRUBER decision point
  service (container-hosted query handlers + sync participation);
* :mod:`repro.core.sync` — the loose synchronization protocol and its
  three dissemination strategies;
* :mod:`repro.core.client` — the submission-host client with the
  paper's timeout → random-fallback degradation;
* :mod:`repro.core.queue_manager` — the GRUBER queue manager (VO-policy
  controlled job release; not used in the paper's experiments but part
  of GRUBER);
* :mod:`repro.core.broker` — deployment facade wiring everything up;
* :mod:`repro.core.saturation` / :mod:`repro.core.rebalance` — §5's
  dynamic evaluation: saturation signals and the third-party observer
  that grows/rebalances the decision-point set.
"""

from repro.core.broker import DIGruberDeployment, TopologyEvent
from repro.core.client import GruberClient
from repro.core.decision_point import DecisionPoint
from repro.core.engine import GruberEngine
from repro.core.monitor import SiteMonitor
from repro.core.queue_manager import QueueManager
from repro.core.rebalance import ReconfigurationObserver
from repro.core.saturation import SaturationDetector, SaturationSignal
from repro.core.selectors import (
    LeastRecentlyUsedSelector,
    LeastUsedSelector,
    RandomSelector,
    RoundRobinSelector,
    SiteSelector,
    make_selector,
)
from repro.core.state import DispatchRecord, GridStateView
from repro.core.sync import DisseminationStrategy, SyncProtocol

__all__ = [
    "DIGruberDeployment",
    "DecisionPoint",
    "DispatchRecord",
    "DisseminationStrategy",
    "GridStateView",
    "GruberClient",
    "GruberEngine",
    "LeastRecentlyUsedSelector",
    "LeastUsedSelector",
    "QueueManager",
    "RandomSelector",
    "ReconfigurationObserver",
    "RoundRobinSelector",
    "SaturationDetector",
    "SaturationSignal",
    "SiteMonitor",
    "SiteSelector",
    "SyncProtocol",
    "TopologyEvent",
    "make_selector",
]
