"""DI-GRUBER deployment facade.

Wires a set of decision points over an overlay topology against one
grid, manages client attachment, and supports growing the
decision-point set at runtime (the §5 dynamic-reconfiguration
enhancement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.client import GruberClient
from repro.core.decision_point import DecisionPoint
from repro.core.sync import DisseminationStrategy
from repro.grid.builder import Grid
from repro.net.container import ContainerProfile
from repro.net.topology import BrokerTopology
from repro.net.transport import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.usla.agreement import Agreement

__all__ = ["DIGruberDeployment", "TopologyEvent"]


@dataclass(frozen=True)
class TopologyEvent:
    """One structured decision-point join/leave on the overlay.

    The single channel every membership change flows through — manual
    ``add_decision_point``, the reconfiguration observer's actions, and
    the autoscale actuator all emit here, so any consumer (placement,
    tests, the planner) sees one ordered stream instead of scraping
    trace lines.
    """

    time: float
    action: str        # "join" | "leave"
    dp_id: str
    n_live: int        # live (online, non-retired) DPs after the change
    source: str = ""   # "manual" | "observer" | "autoscale"
    revived: bool = False  # join of a previously retired/crashed DP


class DIGruberDeployment:
    """All decision points of one DI-GRUBER installation."""

    def __init__(self, sim: Simulator, network: Network, grid: Grid,
                 profile: ContainerProfile, rng: RngRegistry,
                 n_decision_points: int = 1, topology_kind: str = "mesh",
                 sync_interval_s: float = 180.0,
                 monitor_interval_s: float = 600.0,
                 strategy: DisseminationStrategy = DisseminationStrategy.USAGE_ONLY,
                 usla_aware: bool = False,
                 site_state_kb: float = 0.06,
                 assumed_job_lifetime_s: float = 900.0,
                 dp_queue_bound: Optional[int] = None,
                 sync_delta: bool = False,
                 state_index: bool = True):
        if n_decision_points < 1:
            raise ValueError("need at least one decision point")
        self.sim = sim
        self.network = network
        self.grid = grid
        self.profile = profile
        self.rng = rng
        self.topology_kind = topology_kind
        self.sync_interval_s = sync_interval_s
        self.monitor_interval_s = monitor_interval_s
        self.strategy = strategy
        self.usla_aware = usla_aware
        self.site_state_kb = site_state_kb
        self.assumed_job_lifetime_s = assumed_job_lifetime_s
        #: Bounded-queue load shedding for every decision point's
        #: container (``None`` = unbounded, the paper's behaviour).
        self.dp_queue_bound = dp_queue_bound
        #: Scale-plane switches: per-peer delta sync (changes payload
        #: sizes, opt-in) and the indexed state view (result-preserving,
        #: default on).
        self.sync_delta = sync_delta
        self.state_index = state_index
        self.decision_points: dict[str, DecisionPoint] = {}
        self.clients: list[GruberClient] = []
        #: Administratively retired decision points (scale-down).  They
        #: stay in ``decision_points`` (ids are never reused) but are
        #: excluded from the overlay until revived.
        self.retired: set[str] = set()
        #: Structured membership stream + listeners (see
        #: :class:`TopologyEvent`).  Listeners are invoked synchronously
        #: on each join/leave, over a copy so they may deregister.
        self.topology_events: list[TopologyEvent] = []
        self.on_topology_change: list[Callable[[TopologyEvent], None]] = []
        #: Set by :func:`repro.check.digest.install_probes` on journaled
        #: runs; :meth:`_create_dp` propagates it to decision points
        #: deployed mid-run so their records land in the same chain.
        self.journal = None
        #: The :class:`~repro.control.planner.AutoscalePlanner` driving
        #: this deployment, when one is attached.
        self.controller = None
        self._started = False
        for _ in range(n_decision_points):
            self._create_dp()
        self._rewire()

    # -- construction ------------------------------------------------------
    def _create_dp(self) -> DecisionPoint:
        dp_id = f"dp{len(self.decision_points)}"
        dp = DecisionPoint(
            sim=self.sim, network=self.network, node_id=dp_id,
            grid=self.grid, profile=self.profile,
            rng=self.rng.stream(f"dp:{dp_id}"),
            monitor_interval_s=self.monitor_interval_s,
            sync_interval_s=self.sync_interval_s,
            strategy=self.strategy, usla_aware=self.usla_aware,
            site_state_kb=self.site_state_kb,
            assumed_job_lifetime_s=self.assumed_job_lifetime_s,
            max_queue=self.dp_queue_bound,
            sync_delta=self.sync_delta,
            state_index=self.state_index)
        self.decision_points[dp_id] = dp
        if self.journal is not None:
            dp.engine.journal = self.journal
        return dp

    def _rewire(self) -> None:
        """Rebuild the overlay over non-retired decision points.

        Crashed (but not retired) decision points stay wired: peers
        keep addressing them and their messages go unanswered, exactly
        like a real outage.  Retired ones left the membership
        deliberately and are unwired until revived.
        """
        members = [d for d in self.decision_points if d not in self.retired]
        topo = BrokerTopology(members, kind=self.topology_kind)
        for dp_id, dp in self.decision_points.items():
            dp.set_neighbors(topo.neighbors(dp_id) if dp_id in members else [])

    def _emit_topology(self, action: str, dp_id: str, source: str,
                       revived: bool = False) -> None:
        event = TopologyEvent(time=self.sim.now, action=action, dp_id=dp_id,
                              n_live=len(self.live_dp_ids), source=source,
                              revived=revived)
        self.topology_events.append(event)
        self.sim.metrics.counter(f"topology.{action}").inc()
        if self.sim.trace.enabled:
            self.sim.trace.emit("topology.change", action=action, node=dp_id,
                                n_live=event.n_live, source=source)
        for listener in list(self.on_topology_change):
            listener(event)

    @property
    def dp_ids(self) -> list[str]:
        return list(self.decision_points)

    @property
    def live_dp_ids(self) -> list[str]:
        """Decision points that are up and serving (online, not retired)."""
        return [d for d, dp in self.decision_points.items()
                if d not in self.retired and dp.online]

    def dp(self, dp_id: str) -> DecisionPoint:
        return self.decision_points[dp_id]

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError("deployment already started")
        for dp in self.decision_points.values():
            dp.start()
        self._started = True

    def stop(self) -> None:
        for dp in self.decision_points.values():
            dp.stop()
        self._started = False

    # -- USLA distribution ------------------------------------------------------
    def publish_usla(self, agreement: Agreement,
                     dp_id: Optional[str] = None) -> None:
        """Publish an agreement to one decision point (or all of them).

        With the ``USAGE_AND_USLA`` dissemination strategy a single-DP
        publish eventually floods everywhere; the default strategy does
        not carry USLAs, so publishing to all is the operational norm.
        """
        targets = [self.decision_points[dp_id]] if dp_id else \
            list(self.decision_points.values())
        for dp in targets:
            dp.engine.usla_store.publish(agreement)
            dp.engine.invalidate_policy_cache()

    # -- clients ---------------------------------------------------------------
    def attach_client(self, client: GruberClient) -> None:
        self.clients.append(client)

    def clients_of(self, dp_id: str) -> list[GruberClient]:
        return [c for c in self.clients if c.decision_point == dp_id]

    # -- dynamic reconfiguration (§5) --------------------------------------------
    def add_decision_point(self, source: str = "manual") -> DecisionPoint:
        """Deploy one more decision point into the running overlay."""
        dp = self._create_dp()
        self._rewire()
        if self._started:
            dp.start()
        self._emit_topology("join", str(dp.node_id), source)
        return dp

    def retire_decision_point(self, dp_id: str,
                              source: str = "manual") -> DecisionPoint:
        """Administratively remove a decision point from the overlay.

        Scale-down, not a crash: the service stops cleanly, keeps its
        learned state in memory, and can be revived later.  Callers
        evacuate clients *before* retiring (the actuator does); any
        still bound afterwards degrade as if the broker were down.
        """
        if dp_id not in self.decision_points:
            raise KeyError(f"unknown decision point {dp_id!r}")
        if dp_id in self.retired:
            raise ValueError(f"decision point {dp_id!r} already retired")
        if len(self.live_dp_ids) <= 1:
            raise ValueError("cannot retire the last live decision point")
        dp = self.decision_points[dp_id]
        self.retired.add(dp_id)
        dp.retire()
        self._rewire()
        self._emit_topology("leave", dp_id, source)
        return dp

    def revive_decision_point(self, dp_id: str, source: str = "manual",
                              resync: bool = True) -> DecisionPoint:
        """Bring a retired decision point back into the overlay.

        Rewires first so the restart's peer resync (the PR-2 machinery)
        sees its new neighbors, then restarts the service.
        """
        if dp_id not in self.retired:
            raise ValueError(f"decision point {dp_id!r} is not retired")
        dp = self.decision_points[dp_id]
        self.retired.discard(dp_id)
        self._rewire()
        dp.restart(resync=resync)
        self._emit_topology("join", dp_id, source, revived=True)
        return dp

    def rebalance_clients(self, from_dp: str, to_dp: str,
                          fraction: float = 0.5) -> int:
        """Move a fraction of ``from_dp``'s clients to ``to_dp``.

        New queries go to the new decision point; in-flight queries
        finish against the old one (rebinding is a client-side pointer
        swap, exactly as a real reconfiguration service would do it).
        """
        if not (0.0 < fraction <= 1.0):
            raise ValueError("fraction must be in (0, 1]")
        if to_dp not in self.decision_points:
            raise KeyError(f"unknown decision point {to_dp!r}")
        movable = self.clients_of(from_dp)
        n_move = int(len(movable) * fraction)
        for client in movable[:n_move]:
            client.rebind(to_dp)
        return n_move
