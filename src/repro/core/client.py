"""The GRUBER client on a submission host.

Implements the paper's client behaviour (§3.2, §4.3):

* a "standard GT client that allows communication with ... the GRUBER
  engine" — here, the two-phase brokering protocol (``get_state`` then
  ``report_dispatch``) over the simulated WAN, paying the container
  profile's client-stack overhead and extra auth round trips;
* **one connection per host**: each submission host "maintained a
  connection with only one DI-GRUBER decision point"; the brokering
  channel is serialized, so jobs arriving while a query is in flight
  queue in the host's backlog — "when timeouts occur, job submissions
  are delayed and thus the total number of job submissions is reduced
  during the time period" (§4.4.2);
* **timeout fallback**: "each client was configured to apply a [15] s
  timeout ...  If this timeout expires, the client's site selector then
  selects a site at random, without considering USLAs" — the original
  query still runs to completion and is recorded for response-time
  metrics, but its answer is discarded.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Optional

import numpy as np

from repro.core.selectors import RandomSelector, SiteSelector
from repro.grid.builder import Grid
from repro.grid.job import Job
from repro.net.container import ContainerProfile, lognormal_for_mean
from repro.net.transport import Endpoint, Network, RpcError
from repro.resilience.policy import CircuitBreaker, ResilienceConfig
from repro.sim.kernel import Simulator
from repro.workloads.generator import HostWorkload
from repro.workloads.trace import TraceRecorder

__all__ = ["GruberClient"]

#: Wire size of a get_state request / report_dispatch message, in KB.
REQUEST_KB = 0.4
REPORT_KB = 0.3


class GruberClient(Endpoint):
    """One submission host: consumes a workload, brokers via one DP."""

    def __init__(self, sim: Simulator, network: Network, host_id: Hashable,
                 decision_point: Hashable, grid: Grid,
                 workload: HostWorkload, selector: SiteSelector,
                 profile: ContainerProfile, rng: np.random.Generator,
                 trace: TraceRecorder, timeout_s: float = 15.0,
                 state_response_kb: float = 18.0,
                 one_phase: bool = False,
                 resilience: Optional[ResilienceConfig] = None,
                 failover=None):
        super().__init__(network, host_id)
        self.sim = sim
        self.decision_point = decision_point
        self.grid = grid
        self.workload = workload
        self.selector = selector
        self.fallback = RandomSelector(rng)
        self.profile = profile
        self.rng = rng
        self.trace = trace
        self.timeout_s = timeout_s
        self.state_response_kb = state_response_kb
        #: One-phase protocol: the decision point selects the site
        #: server-side and a single RPC carries only the answer — the
        #: paper's "reduce the communication from two layers to one".
        self.one_phase = one_phase
        #: Resilience policy (``repro.resilience``): when set, brokering
        #: runs the retry/backoff/breaker path instead of the paper's
        #: single-attempt timeout → random fallback.
        self.resilience = resilience
        #: Optional :class:`~repro.resilience.failover.FailoverManager`
        #: supplying deployment-wide health info and failover targets.
        self.failover = failover
        self._breakers: dict[Hashable, CircuitBreaker] = {}
        self._site_names = grid.site_names

        self.jobs: list[Job] = []
        self.busy = False
        self._backlog: deque[int] = deque()  # workload indices awaiting the channel
        self.n_handled = 0
        self.n_fallback_timeout = 0
        self.n_abandoned = 0  # responses given up on (dead decision point)
        self.n_retries = 0
        self.n_breaker_fastfail = 0
        self.n_failovers = 0
        self.rebinds = 0
        self.backlog_peak = 0
        self.active_from: Optional[float] = None
        self.active_until: Optional[float] = None
        self._proc = None

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        if self._proc is not None:
            raise RuntimeError(f"client {self.node_id!r} already started")
        self._proc = self.sim.process(self._run(), name=f"client:{self.node_id}")

    def snapshot_state(self) -> dict:
        """Canonical client/workload-cursor state for snapshot digests.

        The workload cursor is implicit: ``n_jobs`` jobs drawn so far
        plus the backlog of arrived-but-unbrokered workload indices
        pins exactly where in the arrival stream this host is.
        """
        return {
            "host": str(self.node_id),
            "decision_point": str(self.decision_point),
            "busy": self.busy,
            "backlog": list(self._backlog),
            "n_jobs": len(self.jobs),
            "n_handled": self.n_handled,
            "n_fallback_timeout": self.n_fallback_timeout,
            "n_abandoned": self.n_abandoned,
            "n_retries": self.n_retries,
            "n_breaker_fastfail": self.n_breaker_fastfail,
            "n_failovers": self.n_failovers,
            "rebinds": self.rebinds,
            "backlog_peak": self.backlog_peak,
            "active_from": self.active_from,
        }

    def rebind(self, decision_point: Hashable) -> None:
        """Point this host at a different decision point.

        In-flight queries finish against the old decision point; the
        *next* pump uses the new binding.  Counted and traced so runs
        can audit every binding change (rebalancing §5, or automatic
        failover).
        """
        prior = self.decision_point
        self.decision_point = decision_point
        self.rebinds += 1
        self.sim.metrics.counter("client.rebinds").inc()
        if self.sim.trace.enabled:
            self.sim.trace.emit("client.rebind", node=self.node_id,
                                prior=str(prior), new=str(decision_point))

    @property
    def backlog_len(self) -> int:
        """Jobs waiting at the host for the brokering channel."""
        return len(self._backlog)

    # -- main loop ------------------------------------------------------------
    def _run(self):
        for arrival, idx in self.workload:
            delay = arrival - self.sim.now
            if delay > 0:
                yield delay
            if self.active_from is None:
                self.active_from = self.sim.now
            # Jobs enter the host backlog (paper state 1: "submitted by
            # a user to a submission host") and are brokered one at a
            # time over the single decision-point connection.  Backlog
            # entries stay as workload indices — jobs materialize only
            # when the channel reaches them.
            self._backlog.append(idx)
            if len(self._backlog) > self.backlog_peak:
                self.backlog_peak = len(self._backlog)
            self._pump()
        self.active_until = self.sim.now

    def _pump(self) -> None:
        """Start brokering the next backlogged job if the channel is free."""
        if self.busy or not self._backlog:
            return
        idx = self._backlog.popleft()
        job = self.workload.job_at(idx)
        job.mark_created(float(self.workload.arrivals[idx]))
        job.decision_point = str(self.decision_point)
        self.jobs.append(job)
        self.busy = True
        self.sim.process(self._broker(job),
                         name=f"broker:{self.node_id}:{job.jid}")

    def _broker(self, job: Job):
        """Broker one job: paper-faithful path, or the resilient one."""
        if self.resilience is not None:
            return self._broker_resilient(job)
        return self._broker_once(job)

    def _broker_once(self, job: Job):
        """One two-phase brokering operation for one job (paper §4.3)."""
        t0 = self.sim.now
        spans = self.sim.spans
        root = bspan = None
        if spans.enabled:
            # Trace root for the job's whole lifecycle, opened
            # retroactively at arrival so host backlog wait is on it.
            root = spans.start_trace("submit", self.node_id,
                                     start=job.created_at, jid=job.jid,
                                     vo=job.vo, group=job.group,
                                     cpus=job.cpus,
                                     dp=str(self.decision_point))
            bspan = spans.start_span("brokering", self.node_id, root,
                                     start=t0)
        outcome = "incomplete"
        try:
            # Client-side stack work (auth, marshalling) ...
            overhead = lognormal_for_mean(self.rng, self.profile.client_overhead_s,
                                          self.profile.sigma)
            if overhead > 0:
                yield overhead
            # ... plus the protocol's extra round trips beyond the
            # request/response pair carried by the RPC itself.
            extra_rtts = max(self.profile.query_rtts - 1, 0)
            if extra_rtts:
                yield sum(self.network.latency.rtt(self.node_id,
                                                   self.decision_point)
                          for _ in range(extra_rtts))

            if self.one_phase:
                ev = self.network.rpc(self.node_id, self.decision_point,
                                      "broker_job",
                                      {"vo": job.vo, "group": job.group,
                                       "cpus": job.cpus},
                                      size_kb=REQUEST_KB,
                                      response_size_kb=REQUEST_KB,
                                      trace_ctx=spans.ctx_of(bspan))
            else:
                ev = self.network.rpc(self.node_id, self.decision_point,
                                      "get_state",
                                      {"vo": job.vo, "group": job.group,
                                       "cpus": job.cpus},
                                      size_kb=REQUEST_KB,
                                      response_size_kb=self.state_response_kb,
                                      trace_ctx=spans.ctx_of(bspan))
            remaining = self.timeout_s - (self.sim.now - t0)
            timed_out = False
            if remaining <= 0:
                timed_out = True
            else:
                race = self.sim.any_of([ev, self.sim.timeout(remaining)])
                try:
                    yield race
                except RpcError:
                    outcome = "error"
                    self._record_query(t0, None, timed_out=False)
                    self._dispatch_random(job, parent=root)
                    self.n_fallback_timeout += 1
                    return
                timed_out = not ev.triggered

            if timed_out:
                outcome = "timeout"
                # Place the job now, USLA-blind; keep waiting for the
                # response so DiPerF still measures it — but only up to
                # an abandon deadline: a decision point that never
                # answers (crashed, §2.2) must not wedge the channel.
                self.n_fallback_timeout += 1
                self._dispatch_random(job, parent=root)
                grace = max(4.0 * self.timeout_s, 60.0)
                wait = self.sim.any_of([ev, self.sim.timeout(grace)])
                try:
                    yield wait
                except RpcError:
                    self._record_query(t0, None, timed_out=True)
                    return
                if ev.triggered:
                    self._record_query(t0, self.sim.now, timed_out=True)
                else:
                    self.n_abandoned += 1
                    self._record_query(t0, None, timed_out=True)
                return

            if self.one_phase:
                site = ev.value["site"]
                self._dispatch(job, site, handled=True, parent=root)
                self.n_handled += 1
            else:
                site = self._choose_site(ev.value, job.cpus)
                self._dispatch(job, site, handled=True, parent=root)
                self.n_handled += 1
                report = self.network.rpc(self.node_id, self.decision_point,
                                          "report_dispatch",
                                          {"site": site, "vo": job.vo,
                                           "group": job.group,
                                           "cpus": job.cpus},
                                          size_kb=REPORT_KB,
                                          trace_ctx=spans.ctx_of(root))
                # Bounded wait: a report whose request or response is
                # lost would otherwise never resolve and wedge this
                # host's single brokering channel for the rest of the
                # run.  The job is already placed — give the ack one
                # client timeout, then move on.
                ack = self.sim.any_of([report,
                                       self.sim.timeout(self.timeout_s)])
                try:
                    yield ack
                except RpcError:
                    pass  # lost report: the sync/monitor path catches up
                if not report.triggered:
                    self.sim.metrics.counter("client.report_timeouts").inc()
            job.query_response_s = self.sim.now - t0
            self._record_query(t0, self.sim.now, timed_out=False)
            outcome = "ok"
        finally:
            # Runs on every exit *except* end-of-run suspension (the
            # kernel pins live generators), which leaves these spans
            # open — exported flagged as orphans, by design.
            spans.finish(bspan)
            spans.finish(root, outcome=outcome)
            self.busy = False
            self._pump()

    # -- resilient path (repro.resilience) --------------------------------
    def _breaker(self, dp) -> CircuitBreaker:
        """This client's breaker for one decision point (lazily built)."""
        breaker = self._breakers.get(dp)
        if breaker is None:
            policy = self.resilience
            breaker = CircuitBreaker(self.sim, str(self.node_id), str(dp),
                                     threshold=policy.breaker_threshold,
                                     open_s=policy.breaker_open_s)
            self._breakers[dp] = breaker
        return breaker

    def _maybe_failover(self) -> bool:
        """Rebind to a secondary decision point if the current one is bad.

        Triggers only when this client's breaker for the current
        decision point is open *or* the deployment prober marks it
        unhealthy — a single transient timeout never moves the binding.
        Candidates must pass both global health and this client's own
        breakers (an asymmetric partition can make a globally-healthy
        decision point dead for this host specifically).
        """
        if self.failover is None:
            return False
        current = self.decision_point
        if (self._breaker(current).state != "open"
                and self.failover.healthy(current)):
            return False
        target = self.failover.choose(
            current, allow=lambda d: self._breaker(d).allow())
        if target is None:
            return False
        self.n_failovers += 1
        self.sim.metrics.counter("client.failovers").inc()
        if self.sim.trace.enabled:
            self.sim.trace.emit("client.failover", node=self.node_id,
                                prior=str(current), new=str(target))
        self.rebind(target)
        return True

    def _broker_resilient(self, job: Job):
        """Retry + backoff + circuit breaker + failover brokering.

        Each attempt is a bounded-patience RPC (the breaker skips it
        entirely when open — no burned timeout); failures feed the
        per-decision-point breaker and may trigger failover; exhausted
        attempts fall back to the paper's random placement so the job
        stream never stalls.
        """
        policy = self.resilience
        t0 = self.sim.now
        attempt_timeout = policy.attempt_timeout_s or self.timeout_s
        spans = self.sim.spans
        root = bspan = None
        if spans.enabled:
            root = spans.start_trace("submit", self.node_id,
                                     start=job.created_at, jid=job.jid,
                                     vo=job.vo, group=job.group,
                                     cpus=job.cpus,
                                     dp=str(self.decision_point))
            bspan = spans.start_span("brokering", self.node_id, root,
                                     start=t0)
        outcome = "incomplete"
        attempts = 0
        try:
            overhead = lognormal_for_mean(self.rng,
                                          self.profile.client_overhead_s,
                                          self.profile.sigma)
            if overhead > 0:
                yield overhead
            for attempt in range(1, policy.max_attempts + 1):
                attempts = attempt
                dp = self.decision_point
                breaker = self._breaker(dp)
                if not breaker.allow():
                    # Fail fast: no RPC, no timeout burned.
                    self.n_breaker_fastfail += 1
                    self.sim.metrics.counter("client.breaker_fastfail").inc()
                    moved = self._maybe_failover()
                    if not moved and attempt < policy.max_attempts:
                        yield policy.backoff_delay(attempt, self.rng)
                    continue
                # Extra protocol round trips to *this* target (auth
                # handshakes restart when the binding changes).
                extra_rtts = max(self.profile.query_rtts - 1, 0)
                if extra_rtts:
                    yield sum(self.network.latency.rtt(self.node_id, dp)
                              for _ in range(extra_rtts))
                if self.one_phase:
                    ev = self.network.rpc(self.node_id, dp, "broker_job",
                                          {"vo": job.vo, "group": job.group,
                                           "cpus": job.cpus},
                                          size_kb=REQUEST_KB,
                                          response_size_kb=REQUEST_KB,
                                          timeout=attempt_timeout,
                                          trace_ctx=spans.ctx_of(bspan))
                else:
                    ev = self.network.rpc(self.node_id, dp, "get_state",
                                          {"vo": job.vo, "group": job.group,
                                           "cpus": job.cpus},
                                          size_kb=REQUEST_KB,
                                          response_size_kb=self.state_response_kb,
                                          timeout=attempt_timeout,
                                          trace_ctx=spans.ctx_of(bspan))
                try:
                    yield ev
                except RpcError:
                    breaker.on_failure()
                    self.sim.metrics.counter("client.attempt_failures").inc()
                    if self.sim.trace.enabled:
                        self.sim.trace.emit("client.retry",
                                            node=self.node_id, dp=str(dp),
                                            attempt=attempt)
                    self._maybe_failover()
                    if attempt < policy.max_attempts:
                        self.n_retries += 1
                        self.sim.metrics.counter("client.retries").inc()
                        yield policy.backoff_delay(attempt, self.rng)
                    continue
                breaker.on_success()
                if self.one_phase:
                    site = ev.value["site"]
                else:
                    site = self._choose_site(ev.value, job.cpus)
                self._dispatch(job, site, handled=True, parent=root)
                self.n_handled += 1
                if not self.one_phase:
                    report = self.network.rpc(self.node_id, dp,
                                              "report_dispatch",
                                              {"site": site, "vo": job.vo,
                                               "group": job.group,
                                               "cpus": job.cpus},
                                              size_kb=REPORT_KB,
                                              timeout=attempt_timeout,
                                              trace_ctx=spans.ctx_of(root))
                    try:
                        yield report
                    except RpcError:
                        pass  # lost report: the sync/monitor path catches up
                job.query_response_s = self.sim.now - t0
                self._record_query(t0, self.sim.now, timed_out=False)
                outcome = "ok"
                return
            # Every attempt failed or was breaker-skipped: the paper's
            # USLA-blind fallback keeps the job stream moving.
            self.n_fallback_timeout += 1
            self.sim.metrics.counter("client.resilient_fallbacks").inc()
            self._dispatch_random(job, parent=root)
            self._record_query(t0, None, timed_out=True)
            outcome = "timeout"
        finally:
            spans.finish(bspan, attempts=attempts)
            spans.finish(root, outcome=outcome)
            self.busy = False
            self._pump()

    # -- dispatch ------------------------------------------------------------
    def _choose_site(self, availabilities: dict, cpus: int) -> str:
        """Apply the site selector, with the least-bad tiebreak fallback."""
        site = self.selector.select(availabilities, cpus)
        if site is None:
            # Nothing fits: take a least-bad site (most free, ties —
            # e.g. a fully USLA-filtered view — broken randomly so the
            # fallback stream spreads out).
            best = max(availabilities.values())
            top = [s for s, v in availabilities.items() if v >= best - 1e-9]
            site = self.fallback.select_any(top)
        return site

    def _dispatch(self, job: Job, site: str, handled: bool,
                  parent=None) -> None:
        """Send the job to a site; record SA_i against ground truth.

        ``parent`` (a span, when tracing) parents a ``dispatch`` span
        covering the host→site delivery; its context rides on the job
        so the site's queue span joins the same trace.

        SA_i grades how much of the job's request the selected site can
        host *right now*: 1.0 when the job starts immediately, scaled
        down by the free fraction of the requested CPUs, and 0.0 when
        the site's queue would make it wait regardless.  (The paper's
        verbatim formula — selected-site free over grid-wide free —
        normalizes to unusable magnitudes at 300 sites; this is the
        operational reading, see EXPERIMENTS.md.)
        """
        site_obj = self.grid.site(site)
        if site_obj.queue_length > 0:
            sa = 0.0
        else:
            free = self.grid.free_at(site)
            sa = min(max(free, 0) / job.cpus, 1.0)
        job.scheduling_accuracy = sa
        job.handled_by_gruber = handled
        latency = self.network.latency.sample(self.node_id, site)
        spans = self.sim.spans
        dspan = None
        if spans.enabled and parent is not None:
            dspan = spans.start_span("dispatch", self.node_id, parent,
                                     jid=job.jid, site=site, handled=handled)
        if dspan is None:
            self.sim.schedule(latency, lambda: site_obj.submit(job))
        else:
            job.trace_ctx = dspan.context

            def deliver():
                spans.finish(dspan)
                site_obj.submit(job)

            self.sim.schedule(latency, deliver)

    def _dispatch_random(self, job: Job, parent=None) -> None:
        self._dispatch(job, self.fallback.select_any(self._site_names),
                       handled=False, parent=parent)

    def _record_query(self, sent_at: float, responded_at: Optional[float],
                      timed_out: bool) -> None:
        self.trace.record_query(sent_at, responded_at, timed_out,
                                client=str(self.node_id),
                                decision_point=str(self.decision_point))
