"""The DI-GRUBER decision point service.

One decision point = a GRUBER engine + USLA store hosted in a Globus
service container (GT3 or GT4 profile), attached to the WAN, serving
two operations:

* ``get_state`` — return the availability map (estimated free CPUs per
  site, USLA-filtered for the requesting VO).  This is the expensive
  call: it consumes the container's query service time and its response
  carries per-site state ("the transport of significant state").
* ``report_dispatch`` — the site selector "informs the decision point
  about its site selection"; cheap container work, updates the local
  view, and enters the record into the sync flood.

The decision point also runs its own site monitor (the engine's data
provider) and a :class:`~repro.core.sync.SyncProtocol` instance.
"""

from __future__ import annotations

from typing import Hashable, Optional

import numpy as np

from repro.core.engine import GruberEngine
from repro.core.monitor import SiteMonitor
from repro.core.sync import DisseminationStrategy, SyncProtocol
from repro.grid.builder import Grid
from repro.net.container import ContainerProfile, ServiceContainer
from repro.net.transport import Endpoint, Message, Network, RpcError
from repro.sim.kernel import Simulator

__all__ = ["DecisionPoint"]

#: Nominal wire size of a ``pull_records`` resync response, in KB.  The
#: caller must size the response before knowing the record count; this
#: is a typical lifetime's worth of records at RECORD_KB each.
RESYNC_RESPONSE_KB = 4.0
#: Patience per peer during post-restart resync.
RESYNC_TIMEOUT_S = 60.0


class DecisionPoint(Endpoint):
    """A container-hosted brokering service instance."""

    def __init__(self, sim: Simulator, network: Network, node_id: Hashable,
                 grid: Grid, profile: ContainerProfile,
                 rng: np.random.Generator,
                 monitor_interval_s: float = 600.0,
                 sync_interval_s: float = 180.0,
                 strategy: DisseminationStrategy = DisseminationStrategy.USAGE_ONLY,
                 usla_aware: bool = False,
                 site_state_kb: float = 0.06,
                 assumed_job_lifetime_s: float = 900.0,
                 private: bool = False,
                 max_queue: Optional[int] = None,
                 sync_delta: bool = False,
                 state_index: bool = True):
        super().__init__(network, node_id)
        self.sim = sim
        self.grid = grid
        self.rng = rng
        self.profile = profile
        self.site_state_kb = site_state_kb
        #: A *private broker* (§2.3: users "can require various privacy
        #: issues for the availability of information about their work
        #: ... the maintenance of a private broker could be a necessity")
        #: consumes the sync flood but never discloses its own
        #: dispatches or USLAs to peers.
        self.private = private
        self.container = ServiceContainer(sim, profile, rng,
                                          name=f"{node_id}.container",
                                          max_queue=max_queue)
        capacities = {s.name: s.total_cpus for s in grid.sites.values()}
        self.engine = GruberEngine(
            owner=str(node_id), site_capacities=capacities,
            usla_aware=usla_aware,
            assumed_job_lifetime_s=assumed_job_lifetime_s,
            tracer=sim.trace, metrics=sim.metrics,
            state_index=state_index)
        self.monitor = SiteMonitor(sim, grid, self.engine,
                                   interval_s=monitor_interval_s,
                                   jitter_s=monitor_interval_s * 0.05, rng=rng)
        self.sync = SyncProtocol(self, interval_s=sync_interval_s,
                                 strategy=strategy, delta=sync_delta)
        self.neighbors: list[Hashable] = []
        #: Per-decision-point decide latency (request arrival → answer
        #: ready, i.e. container queueing + service time).  Always-on,
        #: one histogram per node so saturation shows up per instance.
        self._decide_hist = sim.metrics.histogram(f"dp.decide_s.{node_id}")
        self.started = False
        self.crashes = 0
        self.retirements = 0
        self.restarts = 0
        self.resync_records = 0
        self.resync_failures = 0
        #: Callbacks invoked after this decision point comes back up
        #: (the reconfiguration observer re-arms saturation watches
        #: here).  Invoked over a copy: callbacks may deregister
        #: themselves.
        self.on_restart: list = []

        # Server-side selector for the one-phase protocol variant.
        from repro.core.selectors import LeastUsedSelector
        self._server_selector = LeastUsedSelector(rng, spread=0.85)

        self.register_handler("get_state", self._handle_get_state)
        self.register_handler("report_dispatch", self._handle_report_dispatch)
        self.register_handler("broker_job", self._handle_broker_job)
        self.register_handler("create_instance", self._handle_create_instance)
        self.register_handler("ping", self._handle_ping)
        self.register_handler("pull_records", self._handle_pull_records)

    # -- lifecycle -------------------------------------------------------
    def start(self, neighbors: Optional[list[Hashable]] = None) -> None:
        """Bring the service up: initial monitor sweep + sync timer."""
        if self.started:
            raise RuntimeError(f"decision point {self.node_id!r} already started")
        if neighbors is not None:
            self.neighbors = list(neighbors)
        self.monitor.start(initial=True)
        self.sync.start()
        self.started = True

    def stop(self) -> None:
        self.monitor.stop()
        self.sync.stop()
        self.started = False

    # -- failure injection (§2.2 reliability) -----------------------------
    def crash(self) -> None:
        """Take the service down: requests go unanswered, timers stop.

        Idempotent: crashing an already-crashed decision point is a
        no-op (no double-stopped timers, no double-counted crash).
        """
        if not self.online:
            return
        self.online = False
        if self.started:
            self.monitor.stop()
            self.sync.stop()
            self.started = False
        self.crashes += 1
        self.sim.metrics.counter("dp.crashes").inc()
        if self.sim.trace.enabled:
            self.sim.trace.emit("dp.crash", node=self.node_id)

    def retire(self) -> None:
        """Administrative scale-down: stop serving, keep state, revivable.

        Unlike :meth:`crash` this is a *planned* leave — it counts under
        ``dp.retirements`` (not ``dp.crashes``) so chaos accounting and
        control-plane accounting stay separable.  Idempotent; a crashed
        decision point can also be retired (it only marks the counter).
        :meth:`restart` revives either way.
        """
        was_online = self.online
        self.online = False
        if self.started:
            self.monitor.stop()
            self.sync.stop()
            self.started = False
        if not was_online:
            return
        self.retirements += 1
        self.sim.metrics.counter("dp.retirements").inc()
        if self.sim.trace.enabled:
            self.sim.trace.emit("dp.retire", node=self.node_id)

    def restart(self, resync: bool = True) -> None:
        """Bring the service back; optionally re-sync state from peers.

        A restarted decision point rejoins with whatever view survived
        in memory plus a fresh monitor sweep (ground truth); with
        ``resync`` it additionally pulls recent dispatch records from
        its overlay neighbors, closing the gap left by the sync floods
        it slept through.  Idempotent on a running service.
        """
        if self.online and self.started:
            return
        self.online = True
        self.monitor.start(initial=True)
        self.sync.start()
        self.started = True
        self.restarts += 1
        self.sim.metrics.counter("dp.restarts").inc()
        if self.sim.trace.enabled:
            self.sim.trace.emit("dp.restart", node=self.node_id, resync=resync)
        for cb in list(self.on_restart):
            cb()
        if resync and self.neighbors:
            self.sim.process(self._resync_from_peers(),
                             name=f"resync:{self.node_id}")

    def recover(self) -> None:
        """Bring the service back without peer resync (legacy behaviour)."""
        self.restart(resync=False)

    def _resync_from_peers(self):
        """Pull live dispatch records from each neighbor after a restart.

        Failures are tolerated per peer (a neighbor may itself be down
        or partitioned away); whatever subset answers still narrows the
        staleness window.  Runs as a process so peers are queried
        sequentially over the WAN.
        """
        cutoff = self.sim.now - self.engine.view.assumed_job_lifetime_s
        adopted_total = 0
        peers_ok = 0
        for peer in list(self.neighbors):
            try:
                ev = self.network.rpc(self.node_id, peer, "pull_records",
                                      {"newer_than": cutoff},
                                      response_size_kb=RESYNC_RESPONSE_KB,
                                      timeout=RESYNC_TIMEOUT_S)
                yield ev
            except (RpcError, KeyError):
                self.resync_failures += 1
                self.sim.metrics.counter("dp.resync_failures").inc()
                continue
            records = (ev.value or {}).get("records", [])
            adopted_total += self.engine.merge_remote_records(
                records, now=self.sim.now)
            peers_ok += 1
        self.resync_records += adopted_total
        self.sim.metrics.counter("dp.resync_records").inc(adopted_total)
        if self.sim.trace.enabled:
            self.sim.trace.emit("dp.resync", node=self.node_id,
                                peers_ok=peers_ok,
                                peers=len(self.neighbors),
                                adopted=adopted_total)

    def set_neighbors(self, neighbors: list[Hashable]) -> None:
        """Rewire the overlay (used by dynamic reconfiguration)."""
        self.neighbors = list(neighbors)

    # -- handlers ------------------------------------------------------------
    def _handle_get_state(self, payload, src, ctx=None):
        """Availability query; generator consumes container service time.

        ``ctx`` is the caller's span context (the transport passes
        ``Message.trace_ctx`` to three-argument handlers); the decide
        span it parents is annotated with the view's *staleness* — the
        sim-time age of the freshest information the answer rests on.
        """
        payload = payload or {}
        vo = payload.get("vo")
        group = payload.get("group")
        t_in = self.sim.now
        spans = self.sim.spans
        dspan = None
        if spans.enabled and ctx is not None:
            dspan = spans.start_span("decide", self.node_id, ctx,
                                     op="get_state", vo=vo)
        yield from self.container.service_query()
        now = self.sim.now
        out = self.engine.availabilities(vo=vo, group=group, now=now)
        self._decide_hist.observe(now - t_in)
        if dspan is not None:
            spans.finish(dspan,
                         staleness_s=self.engine.view.info_age_s(now))
        return out

    def _handle_report_dispatch(self, payload, src, ctx=None):
        """Site-selection report; updates the view, feeds the sync flood."""
        site = payload["site"]
        vo = payload["vo"]
        cpus = int(payload["cpus"])
        group = payload.get("group", "")
        spans = self.sim.spans
        rspan = None
        if spans.enabled and ctx is not None:
            rspan = spans.start_span("record", self.node_id, ctx,
                                     site=site, vo=vo)
        yield from self.container.service_report()
        now = self.sim.now
        # Staleness *before* recording: the record itself would reset
        # the site's learn time to now and hide what the client raced.
        if rspan is not None:
            spans.finish(rspan, site_staleness_s=self.engine.view.info_age_s(
                now, site=site))
        rec = self.engine.record_local_dispatch(site=site, vo=vo, cpus=cpus,
                                                now=now, group=group)
        return {"ack": True, "seq": rec.seq}

    def _handle_broker_job(self, payload, src, ctx=None):
        """One-phase brokering: select server-side, return only the site.

        The paper's suggested optimization — "a tighter coupling
        between the resource broker and the job manager ... would
        reduce the complexity of the communication from two layers to
        one layer": a single round trip, no per-site state on the wire,
        and one combined container service slot instead of two.
        """
        vo = payload["vo"]
        cpus = int(payload["cpus"])
        group = payload.get("group", "")
        t_in = self.sim.now
        spans = self.sim.spans
        dspan = None
        if spans.enabled and ctx is not None:
            dspan = spans.start_span("decide", self.node_id, ctx,
                                     op="broker_job", vo=vo)
        yield from self.container.service_query()
        now = self.sim.now
        availabilities = self.engine.availabilities(vo=vo, group=group or None,
                                                    now=now)
        site = self._server_selector.select(availabilities, cpus)
        if site is None:
            # Nothing fits: least-bad site, random among ties (a fully
            # USLA-filtered view must not funnel everything to one site).
            best = max(availabilities.values())
            top = [s for s, v in availabilities.items() if v >= best - 1e-9]
            site = top[int(self.rng.integers(0, len(top)))]
        self._decide_hist.observe(now - t_in)
        if dspan is not None:
            # Per-site staleness of the *chosen* site, pre-recording.
            spans.finish(dspan, site=site,
                         staleness_s=self.engine.view.info_age_s(
                             now, site=site))
        self.engine.record_local_dispatch(site=site, vo=vo, cpus=cpus,
                                          now=now, group=group)
        return {"site": site}

    def _handle_create_instance(self, payload, src):
        """Bare service-instance creation (the Fig 1 micro-benchmark)."""
        yield from self.container.service_instance_creation()
        return {"created": True}

    def _handle_ping(self, payload, src):
        """Liveness probe: answers instantly, bypassing the container.

        Deliberately free of service time and admission control — the
        health prober must distinguish *dead* from *busy*, and a probe
        that queues behind brokering traffic cannot.
        """
        return {"ok": True, "queue_len": self.container.queue_len}

    def _handle_pull_records(self, payload, src):
        """Resync pull: live records this node learned after the cutoff.

        Serves a restarting peer; costs one report-sized container slot
        (cheap, but not free — resync competes with live traffic).
        """
        newer_than = float((payload or {}).get("newer_than", -float("inf")))
        yield from self.container.service_report()
        return {"records": self.engine.view.pending_records(
            newer_than=newer_than)}

    # -- sync plumbing -----------------------------------------------------------
    def on_oneway(self, msg: Message) -> None:
        if msg.op == "sync":
            self.sync.on_sync(msg.payload, ctx=msg.trace_ctx)
        else:
            raise ValueError(f"decision point {self.node_id!r} got unexpected "
                             f"one-way op {msg.op!r}")

    # -- introspection --------------------------------------------------------
    @property
    def state_response_kb(self) -> float:
        """Wire size of a ``get_state`` response (scales with grid size)."""
        return len(self.grid) * self.site_state_kb

    def snapshot_state(self) -> dict:
        """Canonical decision-point state for snapshot digests (JSON-able).

        Aggregates the engine view, USLA store, and sync horizons with
        the lifecycle counters; container timers live in the kernel
        heap, so only the container's queue depth is captured here.
        """
        return {
            "node": str(self.node_id),
            "online": self.online,
            "started": self.started,
            "crashes": self.crashes,
            "retirements": self.retirements,
            "restarts": self.restarts,
            "resync_records": self.resync_records,
            "resync_failures": self.resync_failures,
            "neighbors": sorted(str(n) for n in self.neighbors),
            "container_queue_len": self.container.queue_len,
            "container_in_service": self.container.in_service,
            "view": self.engine.view.snapshot_state(),
            "usla": self.engine.usla_store.snapshot_state(),
            "sync": self.sync.snapshot_state(),
        }

    def load_snapshot(self) -> dict:
        """What the saturation detector samples."""
        return {
            "node": self.node_id,
            "time": self.sim.now,
            "queue_len": self.container.queue_len,
            "in_service": self.container.in_service,
            "ops_last_minute": self.container.ops_in_window(60.0),
            "capacity_qps": self.profile.query_capacity_qps,
        }
