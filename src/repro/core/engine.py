"""The GRUBER engine.

"The GRUBER engine is the main component of the architecture.  It
implements various algorithms for detecting available resources and
maintains a generic view of resource utilization in the grid."

The engine owns a :class:`~repro.core.state.GridStateView` plus the
decision point's USLA store, and answers availability queries —
optionally filtered by USLA entitlements so that a VO already at its
share cap at a site sees no headroom there.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core.state import DispatchRecord, GridStateView
from repro.usla.policy import PolicyEngine
from repro.usla.store import UslaStore

__all__ = ["GruberEngine"]


class GruberEngine:
    """Availability detection + utilization view for one decision point."""

    def __init__(self, owner: str, site_capacities: dict[str, int],
                 usla_store: Optional[UslaStore] = None,
                 usla_aware: bool = False,
                 assumed_job_lifetime_s: float = 900.0,
                 tracer=None, metrics=None, state_index: bool = True):
        self.owner = owner
        self.view = GridStateView(
            site_capacities, assumed_job_lifetime_s=assumed_job_lifetime_s,
            indexed=state_index)
        self.usla_store = usla_store if usla_store is not None else UslaStore(owner)
        self.usla_aware = usla_aware
        self._policy_cache: Optional[PolicyEngine] = None
        self._policy_mutations = -1
        self._seq = itertools.count(1)
        self.queries_served = 0
        self.dispatches_recorded = 0
        #: Optional observability hooks (a :class:`~repro.obs.Tracer`
        #: and :class:`~repro.obs.MetricsRegistry`); the decision point
        #: wires in its simulator's instances.
        self.tracer = tracer
        self.metrics = metrics
        #: Optional differential-replay journal
        #: (:class:`repro.check.digest.EventJournal`); installed by
        #: ``install_probes`` for ``digruber diff`` runs.  One attribute
        #: check per dispatch/merge when unset.
        self.journal = None
        #: When set (sharded runtime), availability answers are
        #: restricted to these sites even though the view carries
        #: grid-wide static knowledge — a decision point brokers only
        #: into its own neighborhood.  An ordered tuple, NOT a set:
        #: the answer dict's iteration order feeds tie-breaking in the
        #: site selectors and must not depend on string hashing.
        self.broker_sites: Optional[tuple] = None

    # -- policy ----------------------------------------------------------
    def _policy(self) -> PolicyEngine:
        # Self-invalidating: the store's mutation counter moves on any
        # publish/remove/merge, including paths that never knew about
        # this cache (a negotiator publishing straight into the store
        # left availability queries answering from stale entitlements).
        if (self._policy_cache is None
                or self._policy_mutations != self.usla_store.mutations):
            self._policy_cache = self.usla_store.policy_engine()
            self._policy_mutations = self.usla_store.mutations
        return self._policy_cache

    def invalidate_policy_cache(self) -> None:
        """Force a rebuild (kept for callers; the mutation counter
        already makes the cache self-invalidating)."""
        self._policy_cache = None

    # -- availability queries ------------------------------------------------
    def availabilities(self, vo: Optional[str] = None,
                       now: Optional[float] = None,
                       group: Optional[str] = None) -> dict[str, float]:
        """Estimated free CPUs per site, USLA-filtered when enabled.

        ``now`` lets the view age out records past the assumed job
        lifetime before answering; when omitted, the latest time the
        view has witnessed is used instead, so stale records can never
        silently overstate usage (they used to zero a VO's site
        headroom forever on this path).  With ``usla_aware`` and a VO
        given, each site's availability is capped by the VO's remaining
        entitlement there: ``min(free, entitled * capacity - vo_busy)``.
        With a ``group``, the recursive group-level USLA also applies:
        the group's headroom within the VO's site entitlement, per the
        paper's two-level allocation model (resource owner → VO → group).
        """
        self.queries_served += 1
        if now is None:
            now = self.view.latest_time
        if self.broker_sites is not None:
            free = self.view.free_subset(self.broker_sites, now=now)
        else:
            free = self.view.free_map(now=now)
        if not (self.usla_aware and vo):
            return free
        policy = self._policy()
        consumer = f"{vo}.{group}" if group else None
        out: dict[str, float] = {}
        for site, f in free.items():
            cap = self.view.capacities[site]
            entitled = policy.entitled_fraction(site, vo) * cap
            headroom = entitled - self.view.estimated_vo_busy(site, vo)
            if consumer is not None:
                # The group's share is of the VO's entitlement at the
                # site ("extending the specification in a recursive way
                # to VOs, groups, and users").
                group_entitled = policy.entitled_fraction(vo, consumer) * entitled
                group_headroom = (group_entitled
                                  - self.view.estimated_vo_busy(site, consumer))
                headroom = min(headroom, group_headroom)
            out[site] = max(min(f, headroom), 0.0)
        return out

    def utilization_view(self) -> dict[str, float]:
        """Estimated per-site utilization (monitor-style introspection)."""
        return {s: self.view.estimated_busy(s) / self.view.capacities[s]
                for s in self.view.capacities}

    # -- dispatch bookkeeping ---------------------------------------------------
    def record_local_dispatch(self, site: str, vo: str, cpus: int,
                              now: float, group: str = "") -> DispatchRecord:
        """Record a dispatch this decision point recommended."""
        rec = DispatchRecord(origin=self.owner, seq=next(self._seq),
                             site=site, vo=vo, cpus=cpus, time=now,
                             group=group)
        self.view.apply_record(rec)
        self.dispatches_recorded += 1
        if self.metrics is not None:
            self.metrics.counter("engine.dispatches").inc()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit("engine.dispatch", node=self.owner, site=site,
                             vo=vo, cpus=cpus, seq=rec.seq)
        if self.journal is not None:
            self.journal.record(
                now, "rec.local",
                f"{self.owner}|{site}|{vo}|cpus={int(cpus)}|seq={rec.seq}")
        return rec

    #: Sync-propagation lag buckets (seconds): 0.25 s … 8192 s.  Lag is
    #: dominated by the epoch interval (paper: 120 s; "three minutes is
    #: sufficient"), far above RPC latencies, so the default latency
    #: buckets would pile everything into overflow.
    SYNC_LAG_BOUNDS_S = tuple(0.25 * 2 ** i for i in range(16))

    def merge_remote_records(self, records: list[DispatchRecord],
                             now: Optional[float] = None) -> int:
        """Adopt peer dispatch records delivered by the sync protocol.

        ``now`` is the receive time, which becomes the relay horizon
        timestamp for further flooding.  Each *adopted* record's
        propagation lag (receive time minus the dispatch time stamped
        at the origin — sim clocks are global, no skew) feeds the
        ``sync.lag_s`` histogram, the measured counterpart to the
        paper's epoch-interval sufficiency claim.
        """
        adopted_keys = [] if self.journal is not None else None
        if now is not None and self.metrics is not None:
            lag_hist = self.metrics.histogram(
                "sync.lag_s", bounds=self.SYNC_LAG_BOUNDS_S)
            adopted = 0
            for rec in records:
                if self.view.apply_record(rec, now=now):
                    adopted += 1
                    lag_hist.observe(max(now - rec.time, 0.0))
                    if adopted_keys is not None:
                        adopted_keys.append(rec.key)
        elif adopted_keys is not None:
            adopted = 0
            for rec in records:
                if self.view.apply_record(rec, now=now):
                    adopted += 1
                    adopted_keys.append(rec.key)
        else:
            adopted = self.view.apply_records(records, now=now)
        if adopted_keys is not None and adopted:
            # Sorted key set: the indexed and legacy views hand the sync
            # plane the same record sets in different internal order,
            # which must not register as divergence.
            keys = ",".join(f"{o}:{s}" for o, s in sorted(adopted_keys))
            self.journal.record(
                now if now is not None else self.view.latest_time,
                "rec.adopt", f"{self.owner}|{keys}")
        if self.metrics is not None:
            self.metrics.counter("engine.records_adopted").inc(adopted)
            self.metrics.counter("engine.records_offered").inc(len(records))
        if adopted and self.tracer is not None and self.tracer.enabled:
            self.tracer.emit("engine.adopt", node=self.owner,
                             offered=len(records), adopted=adopted)
        return adopted

    def on_monitor_refresh(self, busy_by_site: dict[str, float],
                           now: float) -> None:
        self.view.refresh_all(busy_by_site, now)
        expired = self.view.expire(now)
        if self.metrics is not None:
            self.metrics.counter("engine.monitor_refreshes").inc()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit("engine.refresh", node=self.owner,
                             sites=len(busy_by_site), expired=expired)
