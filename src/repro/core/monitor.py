"""Site monitor: the engine's data provider.

"The GRUBER site monitor is a data provider for the GRUBER engine.
This component is optional and can be replaced with various other grid
monitoring components that provide similar information, such as
MonALISA or Grid Catalog."

The monitor periodically sweeps the grid fabric and feeds ground-truth
busy-CPU counts into the engine.  Its interval bounds how long job
*completions* remain invisible to a decision point (dispatch records
cover arrivals but not departures).
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import GruberEngine
from repro.grid.builder import Grid
from repro.sim.kernel import Simulator

__all__ = ["SiteMonitor"]


class SiteMonitor:
    """Periodic ground-truth sweeps from the fabric into an engine."""

    def __init__(self, sim: Simulator, grid: Grid, engine: GruberEngine,
                 interval_s: float = 120.0, jitter_s: float = 0.0,
                 rng=None):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.sim = sim
        self.grid = grid
        self.engine = engine
        self.interval_s = interval_s
        self.sweeps = 0
        self._handle = None
        self._jitter_s = jitter_s
        self._rng = rng

    def start(self, initial: bool = True) -> None:
        """Begin sweeping; with ``initial``, do one sweep immediately."""
        if self._handle is not None:
            raise RuntimeError("monitor already started")
        if initial:
            self.sweep()
        # on_error="record": a failed sweep is counted and traced by
        # the kernel but does not stop future sweeps (nor the run).
        self._handle = self.sim.every(self.interval_s, self.sweep,
                                      jitter=self._jitter_s, rng=self._rng,
                                      on_error="record",
                                      name=f"monitor:{self.engine.owner}")

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def sweep(self) -> None:
        """One full-grid measurement pass."""
        busy = {s.name: float(s.busy_cpus) for s in self.grid.sites.values()}
        self.engine.on_monitor_refresh(busy, self.sim.now)
        self.sweeps += 1
