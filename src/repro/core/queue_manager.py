"""The GRUBER queue manager.

"The GRUBER queue manager is a GRUBER client that resides on a
submitting host.  This component monitors VO policies and decides how
many jobs to start and when."

The paper's experiments run without it ("we use the GRUBER engine and
site selectors but not the queue manager"), but it is part of GRUBER,
so it is implemented and exercised by the fair-share example and its
tests: jobs queue locally and are released only while the VO is inside
its grid-level USLA share.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.grid.job import Job
from repro.sim.kernel import Simulator
from repro.usla.policy import PolicyEngine

__all__ = ["QueueManager"]


class QueueManager:
    """VO-policy-driven job release on a submission host.

    Parameters
    ----------
    usage_probe:
        Callable returning the VO's current grid usage fraction (the
        queue manager "interacts with the GRUBER engine" for this; in
        tests it is a plain closure).
    release:
        Callable invoked with each job cleared to start (typically the
        client's brokering entry point).
    batch_size:
        Maximum jobs released per evaluation tick.
    """

    def __init__(self, sim: Simulator, vo: str, policy: PolicyEngine,
                 usage_probe: Callable[[], float],
                 release: Callable[[Job], None],
                 interval_s: float = 10.0, batch_size: int = 5,
                 provider: str = "grid"):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.sim = sim
        self.vo = vo
        self.policy = policy
        self.usage_probe = usage_probe
        self.release = release
        self.interval_s = interval_s
        self.batch_size = batch_size
        self.provider = provider
        self._queue: Deque[Job] = deque()
        self._handle = None
        self.released = 0
        self.held_ticks = 0

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        if self._handle is not None:
            raise RuntimeError("queue manager already started")
        self._handle = self.sim.every(self.interval_s, self.tick)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # -- queueing --------------------------------------------------------------
    def enqueue(self, job: Job) -> None:
        if job.vo != self.vo:
            raise ValueError(f"queue manager for VO {self.vo!r} got a job "
                             f"of VO {job.vo!r}")
        self._queue.append(job)

    @property
    def queued(self) -> int:
        return len(self._queue)

    def tick(self) -> None:
        """One policy evaluation: release jobs while within the share."""
        if not self._queue:
            return
        usage = self.usage_probe()
        decision = self.policy.check_admission(self.provider, self.vo, usage)
        if not decision.allowed:
            self.held_ticks += 1
            return
        for _ in range(min(self.batch_size, len(self._queue))):
            self.release(self._queue.popleft())
            self.released += 1
