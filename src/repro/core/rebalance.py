"""Dynamic reconfiguration: the third-party observer (paper §5.1).

"Having information from each individual decision point about their
state, a third party observer can decide dynamically what steps should
be taken to reconfigure the scheduling infrastructure, for example by
adding decision points or by rebalancing load among existing decision
points to avoid overloading."

The paper proposes this but notes "we do not have a DI-GRUBER
implementation for such an approach"; this module provides the live
implementation (GRUB-SIM, in :mod:`repro.grubsim`, provides the
trace-driven evaluation the paper actually ran).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.broker import DIGruberDeployment
from repro.core.saturation import SaturationDetector, SaturationSignal
from repro.sim.kernel import Simulator

__all__ = ["ReconfigurationObserver"]


@dataclass
class ReconfigurationEvent:
    """One action the observer took."""

    time: float
    action: str          # "add_dp" | "rebalance"
    saturated_dp: str
    new_dp: str = ""
    clients_moved: int = 0


class ReconfigurationObserver:
    """Grows and rebalances the decision-point set on saturation signals."""

    def __init__(self, sim: Simulator, deployment: DIGruberDeployment,
                 detector: SaturationDetector, cooldown_s: float = 300.0,
                 max_decision_points: int = 10,
                 move_fraction: float = 0.5):
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.sim = sim
        self.deployment = deployment
        self.detector = detector
        self.cooldown_s = cooldown_s
        self.max_decision_points = max_decision_points
        self.move_fraction = move_fraction
        self.events: list[ReconfigurationEvent] = []
        self._last_action_at = -float("inf")
        self._pending_rewatch: set[str] = set()
        detector.listeners.append(self.on_signal)

    @property
    def dps_added(self) -> int:
        return sum(1 for e in self.events if e.action == "add_dp")

    def _record(self, event: ReconfigurationEvent) -> None:
        self.events.append(event)
        self.sim.metrics.counter(f"reconfig.{event.action}").inc()
        if self.sim.trace.enabled:
            self.sim.trace.emit("reconfig.action", action=event.action,
                                node=event.saturated_dp, new_dp=event.new_dp,
                                moved=event.clients_moved)

    def on_signal(self, signal: SaturationSignal) -> None:
        """React to one signal, rate-limited by the cooldown.

        Liveness failures ("down") bypass the cooldown — a dead broker
        is an emergency, not a tuning event: every client bound to it
        is evacuated to the least-loaded live decision point.
        """
        if signal.reason == "down":
            self._failover(signal)
            return
        if self.sim.now - self._last_action_at < self.cooldown_s:
            return
        if len(self.deployment.decision_points) < self.max_decision_points:
            new_dp = self.deployment.add_decision_point(source="observer")
            self.detector.watch(new_dp)
            moved = self.deployment.rebalance_clients(
                signal.decision_point, str(new_dp.node_id),
                fraction=self.move_fraction)
            self._record(ReconfigurationEvent(
                time=self.sim.now, action="add_dp",
                saturated_dp=signal.decision_point,
                new_dp=str(new_dp.node_id), clients_moved=moved))
        else:
            # At the cap: shed load toward the least-loaded *live* DP.
            target = min(
                (dp for dp in self.deployment.decision_points.values()
                 if str(dp.node_id) != signal.decision_point and dp.online),
                key=lambda dp: dp.container.queue_len,
                default=None)
            if target is None:
                return
            moved = self.deployment.rebalance_clients(
                signal.decision_point, str(target.node_id),
                fraction=self.move_fraction / 2)
            self._record(ReconfigurationEvent(
                time=self.sim.now, action="rebalance",
                saturated_dp=signal.decision_point,
                new_dp=str(target.node_id), clients_moved=moved))
        self._last_action_at = self.sim.now

    def _failover(self, signal: SaturationSignal) -> None:
        # First, stop probing the dead broker — before any early return
        # below: even with nothing to evacuate, a watched dead decision
        # point re-emits "down" every sampling pass (event-log and
        # counter spam, and actioning each one re-runs this path).  The
        # watch re-arms itself when the decision point restarts.
        dead = self.deployment.decision_points.get(signal.decision_point)
        if dead is not None:
            self.detector.unwatch(dead)
            dp_id = str(dead.node_id)
            if dp_id not in self._pending_rewatch:
                self._pending_rewatch.add(dp_id)
                # Surface the departure as a *structured* topology event
                # (not just a trace line) so the autoscale actuator and
                # tests consume the same membership stream.
                self.deployment._emit_topology("leave", dp_id,
                                               source="observer")

                def _rewatch(dp=dead, dp_id=dp_id):
                    self._pending_rewatch.discard(dp_id)
                    self.detector.watch(dp)
                    self.deployment._emit_topology("join", dp_id,
                                                   source="observer",
                                                   revived=True)
                    dp.on_restart.remove(_rewatch)

                dead.on_restart.append(_rewatch)
        victims = self.deployment.clients_of(signal.decision_point)
        if not victims:
            return
        live = [dp for dp in self.deployment.decision_points.values()
                if dp.online and str(dp.node_id) != signal.decision_point]
        if not live:
            return  # nowhere to go; clients keep degrading gracefully
        target = min(live, key=lambda dp: dp.container.queue_len)
        moved = self.deployment.rebalance_clients(
            signal.decision_point, str(target.node_id), fraction=1.0)
        self._record(ReconfigurationEvent(
            time=self.sim.now, action="failover",
            saturated_dp=signal.decision_point,
            new_dp=str(target.node_id), clients_moved=moved))
