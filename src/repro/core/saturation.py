"""Saturation detection (paper §5.1).

"We use performance models created by DiPerF to establish an upper
bound on the number of transactions that a decision point can handle
per time interval.  When this upper bound is reached, a decision point
can trigger a saturation signal to a third party monitoring service
responsible for handling these events."

A decision point is flagged when its served-operation rate approaches
the container's calibrated capacity *and* requests are queueing, or
when the queue alone exceeds a hard bound (service rate is a lagging
indicator under overload because completed-ops/minute caps at capacity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.decision_point import DecisionPoint
from repro.sim.kernel import Simulator

__all__ = ["SaturationSignal", "SaturationDetector"]


@dataclass(frozen=True)
class SaturationSignal:
    """One event raised by the detector.

    ``reason`` is ``"saturated"`` (the DiPerF-calibrated capacity bound
    was hit) or ``"down"`` (liveness: the decision point stopped
    answering entirely — §2.2's reliability failure mode).
    """

    decision_point: str
    time: float
    ops_rate: float       # served ops/s in the sampling window
    capacity_qps: float   # calibrated upper bound
    queue_len: int
    reason: str = "saturated"

    @property
    def load_factor(self) -> float:
        return self.ops_rate / self.capacity_qps if self.capacity_qps else 0.0


class SaturationDetector:
    """Periodic sampling of decision points with signal callbacks."""

    def __init__(self, sim: Simulator, decision_points: Iterable[DecisionPoint],
                 interval_s: float = 60.0, rate_threshold: float = 0.9,
                 queue_threshold: int = 10):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if not (0.0 < rate_threshold <= 1.0):
            raise ValueError("rate_threshold must be in (0, 1]")
        self.sim = sim
        self.decision_points = list(decision_points)
        self.interval_s = interval_s
        self.rate_threshold = rate_threshold
        self.queue_threshold = queue_threshold
        self.signals: list[SaturationSignal] = []
        self.listeners: list[Callable[[SaturationSignal], None]] = []
        self._handle = None

    def watch(self, dp: DecisionPoint) -> None:
        """Add a decision point (dynamic reconfiguration grows the set).

        Idempotent: re-watching an already-watched decision point (a
        restart racing a manual re-add) must not double its samples.
        """
        if not any(d is dp for d in self.decision_points):
            self.decision_points.append(dp)

    def unwatch(self, dp) -> None:
        """Drop a decision point (by object or node id) from sampling.

        Failover calls this for a dead broker: keeping it watched would
        re-raise a "down" signal on every sampling pass forever, and a
        decision point later re-added under the same id would inherit
        the stale watch entry alongside its new one.
        """
        node_id = str(getattr(dp, "node_id", dp))
        self.decision_points = [d for d in self.decision_points
                                if str(d.node_id) != node_id]

    def start(self) -> None:
        if self._handle is not None:
            raise RuntimeError("detector already started")
        self._handle = self.sim.every(self.interval_s, self.sample)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def sample(self) -> list[SaturationSignal]:
        """One sampling pass; returns the signals raised this pass."""
        raised = []
        for dp in self.decision_points:
            snap = dp.load_snapshot()
            window = min(60.0, self.interval_s)
            rate = dp.container.ops_in_window(window) / window
            reason = None
            if not dp.online:
                reason = "down"
            else:
                saturated_by_rate = (
                    rate >= self.rate_threshold * snap["capacity_qps"]
                    and snap["queue_len"] > 0)
                saturated_by_queue = snap["queue_len"] >= self.queue_threshold
                if saturated_by_rate or saturated_by_queue:
                    reason = "saturated"
            if reason is not None:
                sig = SaturationSignal(
                    decision_point=str(dp.node_id), time=self.sim.now,
                    ops_rate=rate, capacity_qps=snap["capacity_qps"],
                    queue_len=snap["queue_len"], reason=reason)
                raised.append(sig)
                self.signals.append(sig)
                for listener in self.listeners:
                    listener(sig)
        return raised
