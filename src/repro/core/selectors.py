"""Site selectors: task-assignment policies.

"Site selectors are tools that communicate with the GRUBER engine and
provide answers to the question: which is the best site at which I can
run this job?  Site selectors can implement various task assignment
policies, such as round robin, least used, or least recently used."

Selectors run *client-side* in DI-GRUBER: the client fetches the
availability map from its decision point and applies its policy
locally (paper §3.7: the tester "executes site selector logic to
determine the site to which the job should be dispatched").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

__all__ = [
    "SiteSelector",
    "RandomSelector",
    "RoundRobinSelector",
    "LeastUsedSelector",
    "LeastRecentlyUsedSelector",
    "make_selector",
]


class SiteSelector(ABC):
    """Maps an availability view to a site choice for one job."""

    @abstractmethod
    def select(self, availabilities: dict[str, float], cpus: int) -> Optional[str]:
        """Pick a site with >= ``cpus`` estimated free CPUs.

        Returns None when no site fits — callers fall back to the
        least-bad option (most free CPUs) or to random placement.
        """

    @staticmethod
    def _fitting(availabilities: dict[str, float], cpus: int) -> list[str]:
        return [s for s, free in availabilities.items() if free >= cpus]


class RandomSelector(SiteSelector):
    """Uniform random among fitting sites (also the timeout fallback)."""

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    def select(self, availabilities: dict[str, float], cpus: int) -> Optional[str]:
        fitting = self._fitting(availabilities, cpus)
        if not fitting:
            return None
        return fitting[int(self.rng.integers(0, len(fitting)))]

    def select_any(self, sites: list[str]) -> str:
        """Unconditioned random pick (the USLA-blind timeout fallback)."""
        if not sites:
            raise ValueError("no sites to select from")
        return sites[int(self.rng.integers(0, len(sites)))]


class RoundRobinSelector(SiteSelector):
    """Cycle through fitting sites in stable name order."""

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, availabilities: dict[str, float], cpus: int) -> Optional[str]:
        fitting = sorted(self._fitting(availabilities, cpus))
        if not fitting:
            return None
        choice = fitting[self._cursor % len(fitting)]
        self._cursor += 1
        return choice


class LeastUsedSelector(SiteSelector):
    """Most estimated free CPUs wins, randomized within ``spread``.

    ``spread`` picks uniformly among fitting sites whose estimated free
    capacity is at least ``spread * best`` — at 1.0 this is strict
    argmax with random tie-breaking; below 1.0 it decorrelates the many
    independent selectors of a distributed deployment, which would
    otherwise herd onto the same top-ranked site between sync rounds.
    This is the selector the scalability experiments use.
    """

    def __init__(self, rng: np.random.Generator, spread: float = 1.0):
        if not (0.0 < spread <= 1.0):
            raise ValueError(f"spread must be in (0, 1], got {spread}")
        self.rng = rng
        self.spread = spread

    def select(self, availabilities: dict[str, float], cpus: int) -> Optional[str]:
        fitting = self._fitting(availabilities, cpus)
        if not fitting:
            return None
        best = max(availabilities[s] for s in fitting)
        top = [s for s in fitting if availabilities[s] >= self.spread * best]
        if len(top) == 1:
            return top[0]
        return top[int(self.rng.integers(0, len(top)))]


class LeastRecentlyUsedSelector(SiteSelector):
    """Prefer the fitting site this selector has not chosen for longest."""

    def __init__(self) -> None:
        self._last_used: dict[str, int] = {}
        self._tick = 0

    def select(self, availabilities: dict[str, float], cpus: int) -> Optional[str]:
        fitting = self._fitting(availabilities, cpus)
        if not fitting:
            return None
        choice = min(fitting,
                     key=lambda s: (self._last_used.get(s, -1), s))
        self._tick += 1
        self._last_used[choice] = self._tick
        return choice


_SELECTORS = {
    "random": RandomSelector,
    "round_robin": RoundRobinSelector,
    "least_used": LeastUsedSelector,
    "lru": LeastRecentlyUsedSelector,
}


def make_selector(name: str, rng: Optional[np.random.Generator] = None,
                  spread: Optional[float] = None) -> SiteSelector:
    """Factory by policy name; rng required for stochastic policies.

    ``spread`` configures :class:`LeastUsedSelector` and is ignored by
    the other policies.
    """
    try:
        cls = _SELECTORS[name]
    except KeyError:
        raise ValueError(f"unknown selector {name!r}; "
                         f"expected one of {sorted(_SELECTORS)}") from None
    if cls is LeastUsedSelector:
        if rng is None:
            raise ValueError(f"selector {name!r} needs an rng")
        return cls(rng, spread=spread if spread is not None else 1.0)
    if cls is RandomSelector:
        if rng is None:
            raise ValueError(f"selector {name!r} needs an rng")
        return cls(rng)
    return cls()
