"""A decision point's view of grid resource usage.

Per the paper's chosen dissemination model (§2.5, second approach),
"each decision point has complete static knowledge about available
resources, but not the latest resource utilizations".  The dynamic part
of the view is assembled from three information flows:

1. **own dispatches** — applied instantly when this decision point
   recommends a site;
2. **peer dispatch records** — applied when the periodic sync delivers
   them (this is the staleness the accuracy experiments measure);
3. **monitor refreshes** — ground-truth per-site snapshots from the
   site monitor, which reconcile whatever the record stream got wrong.

A dispatch record contributes busy CPUs from its dispatch time until
``assumed_job_lifetime_s`` later — the broker does not know real job
durations, so it ages records out at the workload's expected lifetime
(exactly what keeps estimates from ratcheting upward between monitor
sweeps).  To avoid double counting, each site's estimate is a *base*
(ground-truth busy CPUs at the last refresh) plus the live records
newer than that refresh; records are deduplicated by ``(origin, seq)``
so the flooding protocol can relay them along arbitrary overlays.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["DispatchRecord", "GridStateView"]

_NEG_INF = -float("inf")


@dataclass(frozen=True)
class DispatchRecord:
    """One job-dispatch event, as exchanged between decision points."""

    origin: str      # decision point that made the recommendation
    seq: int         # per-origin sequence number (dedup key with origin)
    site: str
    vo: str
    cpus: int
    time: float      # dispatch instant
    group: str = ""  # VO group, for group-level USLA accounting (§4.1)

    @property
    def key(self) -> tuple[str, int]:
        return (self.origin, self.seq)

    @property
    def consumers(self) -> tuple[str, ...]:
        """USLA consumers this dispatch counts against (VO, VO.group)."""
        if self.group:
            return (self.vo, f"{self.vo}.{self.group}")
        return (self.vo,)


class GridStateView:
    """Staleness-aware per-site busy-CPU estimates.

    Parameters
    ----------
    site_capacities:
        Static knowledge: total CPUs per site (complete, per the paper).
    assumed_job_lifetime_s:
        How long a dispatch record is presumed to occupy its CPUs.
        Calibrate to the workload's mean job runtime.
    indexed:
        Scale-plane fast paths (default on): a grid-wide expiry heap so
        :meth:`expire` costs O(records expired) instead of O(sites), a
        learn-order ring so :meth:`pending_records` costs O(records
        learned since the cutoff) instead of O(all live records), and
        an incrementally-maintained free map so availability queries
        stop recomputing every site's estimate.  Result-preserving;
        the switch exists for benchmark baselines and equivalence tests.
    """

    def __init__(self, site_capacities: dict[str, int],
                 assumed_job_lifetime_s: float = 900.0,
                 indexed: bool = True):
        if not site_capacities:
            raise ValueError("need at least one site")
        if assumed_job_lifetime_s <= 0:
            raise ValueError("assumed_job_lifetime_s must be > 0")
        self.capacities = dict(site_capacities)
        self.assumed_job_lifetime_s = assumed_job_lifetime_s
        self.indexed = indexed
        # Base usage from the last monitor refresh.
        self._base_busy: dict[str, float] = {s: 0.0 for s in site_capacities}
        self._base_time: dict[str, float] = {s: -float("inf")
                                             for s in site_capacities}
        # Live records per site, as a min-heap on dispatch time so both
        # expiry and refresh absorption pop oldest-first.
        self._records: dict[str, list[tuple[float, int, DispatchRecord]]] = {
            s: [] for s in site_capacities}
        self._tiebreak = itertools.count()
        # Incremental sums so estimates are O(1) per site per query.
        self._extra_busy: dict[str, float] = {s: 0.0 for s in site_capacities}
        self._seen: set[tuple[str, int]] = set()
        # When *this node* learned each live record — the flooding relay
        # horizon keys off this, not the (possibly much older) dispatch
        # time, so records can travel any number of overlay hops.
        self._learned_at: dict[tuple[str, int], float] = {}
        # The live record *object* per key.  Key membership alone is not
        # a liveness test for index entries: an adversarial redelivery
        # can reuse a dropped record's key (dedup discards keys on
        # drop), leaving stale index entries whose key is live again.
        self._live_rec: dict[tuple[str, int], DispatchRecord] = {}
        # Per-(site, vo) incremental usage estimate for USLA filtering.
        # Entries are deleted when they return to zero — long sweeps
        # used to accumulate dead (site, consumer) keys forever.
        self._vo_busy: dict[tuple[str, str], float] = {}
        # Latest sim-time this view has witnessed (record learn times,
        # monitor refreshes, explicit expiries).  Callers that omit
        # ``now`` get expiry against this horizon instead of none at
        # all — stale records used to overstate VO usage forever on
        # that path.
        self.latest_time: float = -float("inf")
        # Freshness tracking for staleness annotations (decide spans):
        # the newest record-learn instant, grid-wide and per site, plus
        # the newest monitor-refresh instant.  Monotonic maxima, O(1)
        # to maintain — deliberately *not* reduced when records expire
        # ("when did I last learn anything?" is the question asked).
        self._last_learn_time: float = _NEG_INF
        self._last_refresh_time: float = _NEG_INF
        self._site_learn_time: dict[str, float] = {}
        # -- scale-plane indexes ------------------------------------------
        # Grid-wide expiry heap, same (time, tiebreak) keys as the site
        # heaps.  Entries absorbed by a monitor refresh go stale here
        # and are skipped (liveness check) when their time passes.
        self._expiry_heap: list[tuple[float, int, DispatchRecord]] = []
        # Learn-order ring: (learn_seq, monotonic learn time, record).
        # Newest at the right; dead entries are pruned from the left.
        self._learn_log: deque[tuple[int, float, DispatchRecord]] = deque()
        self._learn_count = 0
        self._log_tail_time = _NEG_INF
        # Estimated free CPUs per site, maintained on every mutation so
        # free_map() is a dict copy instead of an all-sites recompute.
        self._free_cache: dict[str, float] = {
            s: float(c) for s, c in self.capacities.items()}

    def _update_free(self, site: str) -> None:
        """Re-derive one site's cached free estimate (same formula as
        :meth:`estimated_busy`, so the cache is bit-identical)."""
        cap = self.capacities[site]
        busy = self._base_busy[site] + self._extra_busy[site]
        if busy < 0.0:
            busy = 0.0
        elif busy > cap:
            busy = cap
        self._free_cache[site] = cap - busy

    # -- internal removal ----------------------------------------------------
    def _drop(self, rec: DispatchRecord) -> None:
        """Retract one record's contribution (already popped from heap)."""
        self._extra_busy[rec.site] -= rec.cpus
        vo_busy = self._vo_busy
        for consumer in rec.consumers:
            key = (rec.site, consumer)
            remaining = vo_busy.get(key, 0.0) - rec.cpus
            if remaining > 0.0:
                vo_busy[key] = remaining
            else:
                # Back to zero (CPU counts are ints, so sums are exact):
                # delete instead of keeping a 0.0 — or a tiny negative,
                # previously masked by max(..., 0.0) — forever.
                vo_busy.pop(key, None)
        self._learned_at.pop(rec.key, None)
        self._seen.discard(rec.key)
        if self._live_rec.get(rec.key) is rec:
            del self._live_rec[rec.key]
        self._update_free(rec.site)

    def _prune_log(self) -> None:
        """Drop dead entries from the learn ring's old end (amortized)."""
        log = self._learn_log
        live = self._live_rec
        while log and live.get(log[0][2].key) is not log[0][2]:
            log.popleft()
        # Safety valve for dead entries wedged behind a long-lived one.
        if len(log) > 64 and len(log) > 4 * len(self._learned_at):
            self._learn_log = deque(
                e for e in log if live.get(e[2].key) is e[2])

    def expire(self, now: float) -> int:
        """Age out records past the assumed job lifetime; returns count."""
        if now > self.latest_time:
            self.latest_time = now
        cutoff = now - self.assumed_job_lifetime_s
        dropped = 0
        if self.indexed:
            # O(records expired): pop the grid-wide heap.  A live entry
            # here is necessarily its site heap's head — every earlier
            # (time, tiebreak) live record was popped (and dropped)
            # first, and site heaps hold live records only — so an
            # entry is live iff its unique tiebreak matches the site
            # head's.  (A key-membership test is not enough: entries
            # absorbed by a monitor refresh go stale here, and their
            # key can be live again via a redelivered record.)
            g = self._expiry_heap
            records = self._records
            while g and g[0][0] < cutoff:
                _, tb, rec = heapq.heappop(g)
                site_heap = records[rec.site]
                if site_heap and site_heap[0][1] == tb:
                    heapq.heappop(site_heap)
                    self._drop(rec)
                    dropped += 1
            if dropped:
                self._prune_log()
            return dropped
        for heap in self._records.values():
            while heap and heap[0][0] < cutoff:
                _, _, rec = heapq.heappop(heap)
                self._drop(rec)
                dropped += 1
        if dropped:
            self._prune_log()
        return dropped

    # -- updates -------------------------------------------------------------
    def apply_record(self, rec: DispatchRecord,
                     now: Optional[float] = None) -> bool:
        """Apply one dispatch record; returns False if already known.

        ``now`` stamps when this node learned the record (defaults to
        the dispatch time itself, appropriate for locally-originated
        records).  Records for unknown sites are rejected loudly —
        static knowledge is complete by assumption, so this indicates a
        bug.
        """
        if rec.site not in self.capacities:
            raise KeyError(f"dispatch record for unknown site {rec.site!r}")
        if rec.key in self._seen:
            return False
        learn_time = rec.time if now is None else now
        if learn_time > self.latest_time:
            self.latest_time = learn_time
        if rec.time <= self._base_time[rec.site]:
            # Already reflected in the monitor's ground truth.
            return False
        if learn_time - rec.time >= self.assumed_job_lifetime_s:
            # Arrived after its own expiry (very slow relay path).
            return False
        self._seen.add(rec.key)
        if learn_time > self._last_learn_time:
            self._last_learn_time = learn_time
        if learn_time > self._site_learn_time.get(rec.site, _NEG_INF):
            self._site_learn_time[rec.site] = learn_time
        entry = (rec.time, next(self._tiebreak), rec)
        heapq.heappush(self._records[rec.site], entry)
        if self.indexed:
            heapq.heappush(self._expiry_heap, entry)
        self._extra_busy[rec.site] += rec.cpus
        self._learned_at[rec.key] = learn_time
        self._live_rec[rec.key] = rec
        # Learn ring: the stored time is clamped monotonic so reverse
        # scans can stop early; the exact per-record learn time stays
        # in _learned_at.
        self._learn_count += 1
        if learn_time > self._log_tail_time:
            self._log_tail_time = learn_time
        self._learn_log.append((self._learn_count, self._log_tail_time, rec))
        for consumer in rec.consumers:
            key = (rec.site, consumer)
            self._vo_busy[key] = self._vo_busy.get(key, 0.0) + rec.cpus
        self._update_free(rec.site)
        return True

    def apply_records(self, records: Iterable[DispatchRecord],
                      now: Optional[float] = None) -> int:
        return sum(1 for r in records if self.apply_record(r, now=now))

    def refresh_site(self, site: str, busy_cpus: float, now: float) -> None:
        """Monitor refresh: adopt ground truth for one site at ``now``.

        Records at or before the refresh instant are absorbed — their
        effect (if the job is still running) is inside the ground-truth
        number now.
        """
        if site not in self.capacities:
            raise KeyError(f"refresh for unknown site {site!r}")
        if now > self.latest_time:
            self.latest_time = now
        self._base_busy[site] = busy_cpus
        self._base_time[site] = now
        if now > self._last_refresh_time:
            self._last_refresh_time = now
        heap = self._records[site]
        while heap and heap[0][0] <= now:
            _, _, rec = heapq.heappop(heap)
            self._drop(rec)
        self._update_free(site)
        self._prune_log()

    def refresh_all(self, busy_by_site: dict[str, float], now: float) -> None:
        for site, busy in busy_by_site.items():
            self.refresh_site(site, busy, now)

    def extend_capacities(self, site_capacities: dict[str, int]) -> None:
        """Add static knowledge of more sites (no usage yet).

        The sharded runtime uses this to give every DP neighborhood the
        paper's "complete static knowledge about available resources"
        across the whole grid while its monitor only refreshes local
        sites; peer usage arrives as epoch-synced dispatch records.
        Already-known sites are left untouched.
        """
        for site, cap in site_capacities.items():
            if site in self.capacities:
                continue
            self.capacities[site] = cap
            self._base_busy[site] = 0.0
            self._base_time[site] = -float("inf")
            self._records[site] = []
            self._extra_busy[site] = 0.0
            self._free_cache[site] = float(cap)

    # -- queries ---------------------------------------------------------------
    def estimated_busy(self, site: str, now: Optional[float] = None) -> float:
        if now is not None:
            self.expire(now)
        busy = self._base_busy[site] + self._extra_busy[site]
        return min(max(busy, 0.0), self.capacities[site])

    def estimated_free(self, site: str, now: Optional[float] = None) -> float:
        return self.capacities[site] - self.estimated_busy(site, now)

    def estimated_vo_busy(self, site: str, vo: str,
                          now: Optional[float] = None) -> float:
        """Estimated busy CPUs attributed to ``vo`` (or ``vo.group``).

        ``now`` ages out stale records first — the same expiry
        :meth:`free_map` applies, so USLA headroom and free counts stay
        consistent with each other.
        """
        if now is not None:
            self.expire(now)
        return max(self._vo_busy.get((site, vo), 0.0), 0.0)

    def free_map(self, now: Optional[float] = None) -> dict[str, float]:
        """Estimated free CPUs for every site (the availability answer)."""
        if now is not None:
            self.expire(now)
        if self.indexed:
            return dict(self._free_cache)
        return {s: self.estimated_free(s) for s in self.capacities}

    def free_subset(self, sites, now: Optional[float] = None) -> dict[str, float]:
        """Like :meth:`free_map`, restricted to ``sites`` — O(len(sites)).

        The sharded runtime's availability answers stay neighborhood-
        local even when the view carries grid-wide static knowledge.
        Values are bit-identical to the :meth:`free_map` entries.
        """
        if now is not None:
            self.expire(now)
        if self.indexed:
            cache = self._free_cache
            return {s: cache[s] for s in sites}
        return {s: self.estimated_free(s) for s in sites}

    def pending_records(self, newer_than: float) -> list[DispatchRecord]:
        """Live records this node *learned* after the cutoff.

        This is the sync payload selection: keying on learn time (not
        dispatch time) lets relayed records keep flooding outward on
        multi-hop overlays.
        """
        learned = self._learned_at
        if self.indexed:
            # Walk the learn ring newest-first; the stored times are
            # monotonic, so the first entry at or below the cutoff ends
            # the scan — O(records learned since the cutoff).  The
            # clamped time can only overshoot the real learn time, so
            # the exact filter below never loses a record to the break.
            live = self._live_rec
            out = []
            for _, t_mono, rec in reversed(self._learn_log):
                if t_mono <= newer_than:
                    break
                if (live.get(rec.key) is rec
                        and learned[rec.key] > newer_than):
                    out.append(rec)
            out.reverse()
            return out
        return [rec for heap in self._records.values()
                for _, _, rec in heap
                if learned.get(rec.key, -float("inf")) > newer_than]

    def records_since(self, seq: int) -> tuple[int, list[DispatchRecord]]:
        """Live records learned after watermark ``seq``, oldest first.

        Returns ``(new_watermark, records)``.  Integer learn sequence
        numbers make per-peer delta sync exact where float learn times
        are not: two records learned at the same instant straddle no
        boundary.  Feed the returned watermark back on the next call.
        """
        live = self._live_rec
        out = []
        for learn_seq, _, rec in reversed(self._learn_log):
            if learn_seq <= seq:
                break
            if live.get(rec.key) is rec:
                out.append(rec)
        out.reverse()
        return self._learn_count, out

    def info_age_s(self, now: float,
                   site: Optional[str] = None) -> Optional[float]:
        """Sim-time age of this view's freshest information — the
        staleness that decide spans are annotated with.

        Grid-wide (``site=None``): time since the newest learned
        dispatch record or monitor refresh, whichever is fresher.  Per
        site: the same, restricted to records for (and refreshes of)
        that site.  ``None`` when the view has learned nothing yet
        (pre-start, or a just-restarted decision point).  Clamped at
        zero: information learned "now" has age 0 even with float fuzz.
        """
        if site is None:
            t = max(self._last_learn_time, self._last_refresh_time)
        else:
            t = max(self._site_learn_time.get(site, _NEG_INF),
                    self._base_time.get(site, _NEG_INF))
        if t == _NEG_INF:
            return None
        return max(now - t, 0.0)

    def audit(self) -> list[str]:
        """Internal-consistency check; returns problem descriptions.

        Strictly read-only (the invariant checker calls this between
        events): unlike the query surface, it never expires records, so
        a checked run stays event-identical to an unchecked one — an
        :meth:`expire` here would perturb subsequent sync payloads for
        relayed records.  CPU counts are ints, so the incremental sums
        must match their ground truth *exactly*.
        """
        problems: list[str] = []
        live_keys = set(self._live_rec)
        if live_keys != self._seen:
            problems.append(
                f"seen/live mismatch: {len(self._seen)} seen vs "
                f"{len(live_keys)} live")
        if live_keys != set(self._learned_at):
            problems.append(
                f"learned_at/live mismatch: {len(self._learned_at)} "
                f"learn stamps vs {len(live_keys)} live")
        vo_sums: dict[str, float] = {}
        for (site, consumer), busy in self._vo_busy.items():
            if busy <= 0.0:
                problems.append(
                    f"non-positive vo_busy[{site},{consumer}]={busy}")
            if "." not in consumer:  # plain VO; groups mirror their VO
                vo_sums[site] = vo_sums.get(site, 0.0) + busy
        for site, heap in self._records.items():
            extra = sum(rec.cpus for _, _, rec in heap)
            if extra != self._extra_busy[site]:
                problems.append(
                    f"extra_busy[{site}]={self._extra_busy[site]} but site "
                    f"heap holds {extra} CPUs")
            if vo_sums.get(site, 0.0) != self._extra_busy[site]:
                problems.append(
                    f"vo_busy sum {vo_sums.get(site, 0.0)} != "
                    f"extra_busy[{site}]={self._extra_busy[site]}")
            cap = self.capacities[site]
            base = self._base_busy[site]
            if not (0.0 <= base <= cap):
                problems.append(
                    f"base_busy[{site}]={base} outside [0, {cap}]")
            if self.indexed:
                busy = min(max(base + self._extra_busy[site], 0.0), cap)
                if self._free_cache[site] != cap - busy:
                    problems.append(
                        f"free_cache[{site}]={self._free_cache[site]} != "
                        f"recomputed {cap - busy}")
        if len(self._learn_log) < len(live_keys):
            problems.append(
                f"learn ring holds {len(self._learn_log)} entries for "
                f"{len(live_keys)} live records")
        return problems

    def snapshot_state(self) -> dict:
        """Canonical view state for snapshot digests (JSON-able).

        Records are keyed by their wire identity ``(origin, seq)`` plus
        dispatch facts; per-site heaps are flattened in sorted key order
        so internal heap layout cannot leak into the digest.  ``-inf``
        sentinels serialize as ``None``.
        """
        def _f(x: float):
            return None if x == _NEG_INF else x

        records = []
        for site in sorted(self._records):
            for time, _tb, rec in sorted(
                    self._records[site], key=lambda e: (e[0], e[1])):
                records.append([rec.origin, rec.seq, rec.site, rec.vo,
                                rec.cpus, rec.time, rec.group])
        return {
            "base_busy": sorted(self._base_busy.items()),
            "base_time": [[s, _f(t)] for s, t in sorted(self._base_time.items())],
            "records": records,
            "extra_busy": sorted(self._extra_busy.items()),
            "vo_busy": [[s, c, b] for (s, c), b in sorted(self._vo_busy.items())],
            "learn_count": self._learn_count,
            "latest_time": _f(self.latest_time),
            "last_learn_time": _f(self._last_learn_time),
            "last_refresh_time": _f(self._last_refresh_time),
            "n_seen": len(self._seen),
        }

    @property
    def n_sites(self) -> int:
        return len(self.capacities)

    @property
    def n_records(self) -> int:
        return sum(len(h) for h in self._records.values())
