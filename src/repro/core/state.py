"""A decision point's view of grid resource usage.

Per the paper's chosen dissemination model (§2.5, second approach),
"each decision point has complete static knowledge about available
resources, but not the latest resource utilizations".  The dynamic part
of the view is assembled from three information flows:

1. **own dispatches** — applied instantly when this decision point
   recommends a site;
2. **peer dispatch records** — applied when the periodic sync delivers
   them (this is the staleness the accuracy experiments measure);
3. **monitor refreshes** — ground-truth per-site snapshots from the
   site monitor, which reconcile whatever the record stream got wrong.

A dispatch record contributes busy CPUs from its dispatch time until
``assumed_job_lifetime_s`` later — the broker does not know real job
durations, so it ages records out at the workload's expected lifetime
(exactly what keeps estimates from ratcheting upward between monitor
sweeps).  To avoid double counting, each site's estimate is a *base*
(ground-truth busy CPUs at the last refresh) plus the live records
newer than that refresh; records are deduplicated by ``(origin, seq)``
so the flooding protocol can relay them along arbitrary overlays.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["DispatchRecord", "GridStateView"]


@dataclass(frozen=True)
class DispatchRecord:
    """One job-dispatch event, as exchanged between decision points."""

    origin: str      # decision point that made the recommendation
    seq: int         # per-origin sequence number (dedup key with origin)
    site: str
    vo: str
    cpus: int
    time: float      # dispatch instant
    group: str = ""  # VO group, for group-level USLA accounting (§4.1)

    @property
    def key(self) -> tuple[str, int]:
        return (self.origin, self.seq)

    @property
    def consumers(self) -> tuple[str, ...]:
        """USLA consumers this dispatch counts against (VO, VO.group)."""
        if self.group:
            return (self.vo, f"{self.vo}.{self.group}")
        return (self.vo,)


class GridStateView:
    """Staleness-aware per-site busy-CPU estimates.

    Parameters
    ----------
    site_capacities:
        Static knowledge: total CPUs per site (complete, per the paper).
    assumed_job_lifetime_s:
        How long a dispatch record is presumed to occupy its CPUs.
        Calibrate to the workload's mean job runtime.
    """

    def __init__(self, site_capacities: dict[str, int],
                 assumed_job_lifetime_s: float = 900.0):
        if not site_capacities:
            raise ValueError("need at least one site")
        if assumed_job_lifetime_s <= 0:
            raise ValueError("assumed_job_lifetime_s must be > 0")
        self.capacities = dict(site_capacities)
        self.assumed_job_lifetime_s = assumed_job_lifetime_s
        # Base usage from the last monitor refresh.
        self._base_busy: dict[str, float] = {s: 0.0 for s in site_capacities}
        self._base_time: dict[str, float] = {s: -float("inf")
                                             for s in site_capacities}
        # Live records per site, as a min-heap on dispatch time so both
        # expiry and refresh absorption pop oldest-first.
        self._records: dict[str, list[tuple[float, int, DispatchRecord]]] = {
            s: [] for s in site_capacities}
        self._tiebreak = itertools.count()
        # Incremental sums so estimates are O(1) per site per query.
        self._extra_busy: dict[str, float] = {s: 0.0 for s in site_capacities}
        self._seen: set[tuple[str, int]] = set()
        # When *this node* learned each live record — the flooding relay
        # horizon keys off this, not the (possibly much older) dispatch
        # time, so records can travel any number of overlay hops.
        self._learned_at: dict[tuple[str, int], float] = {}
        # Per-(site, vo) incremental usage estimate for USLA filtering.
        self._vo_busy: dict[tuple[str, str], float] = {}
        # Latest sim-time this view has witnessed (record learn times,
        # monitor refreshes, explicit expiries).  Callers that omit
        # ``now`` get expiry against this horizon instead of none at
        # all — stale records used to overstate VO usage forever on
        # that path.
        self.latest_time: float = -float("inf")

    # -- internal removal ----------------------------------------------------
    def _drop(self, rec: DispatchRecord) -> None:
        """Retract one record's contribution (already popped from heap)."""
        self._extra_busy[rec.site] -= rec.cpus
        for consumer in rec.consumers:
            key = (rec.site, consumer)
            self._vo_busy[key] = self._vo_busy.get(key, 0.0) - rec.cpus
        self._learned_at.pop(rec.key, None)
        self._seen.discard(rec.key)

    def expire(self, now: float) -> int:
        """Age out records past the assumed job lifetime; returns count."""
        if now > self.latest_time:
            self.latest_time = now
        cutoff = now - self.assumed_job_lifetime_s
        dropped = 0
        for heap in self._records.values():
            while heap and heap[0][0] < cutoff:
                _, _, rec = heapq.heappop(heap)
                self._drop(rec)
                dropped += 1
        return dropped

    # -- updates -------------------------------------------------------------
    def apply_record(self, rec: DispatchRecord,
                     now: Optional[float] = None) -> bool:
        """Apply one dispatch record; returns False if already known.

        ``now`` stamps when this node learned the record (defaults to
        the dispatch time itself, appropriate for locally-originated
        records).  Records for unknown sites are rejected loudly —
        static knowledge is complete by assumption, so this indicates a
        bug.
        """
        if rec.site not in self.capacities:
            raise KeyError(f"dispatch record for unknown site {rec.site!r}")
        if rec.key in self._seen:
            return False
        learn_time = rec.time if now is None else now
        if learn_time > self.latest_time:
            self.latest_time = learn_time
        if rec.time <= self._base_time[rec.site]:
            # Already reflected in the monitor's ground truth.
            return False
        if learn_time - rec.time >= self.assumed_job_lifetime_s:
            # Arrived after its own expiry (very slow relay path).
            return False
        self._seen.add(rec.key)
        heapq.heappush(self._records[rec.site],
                       (rec.time, next(self._tiebreak), rec))
        self._extra_busy[rec.site] += rec.cpus
        self._learned_at[rec.key] = learn_time
        for consumer in rec.consumers:
            key = (rec.site, consumer)
            self._vo_busy[key] = self._vo_busy.get(key, 0.0) + rec.cpus
        return True

    def apply_records(self, records: Iterable[DispatchRecord],
                      now: Optional[float] = None) -> int:
        return sum(1 for r in records if self.apply_record(r, now=now))

    def refresh_site(self, site: str, busy_cpus: float, now: float) -> None:
        """Monitor refresh: adopt ground truth for one site at ``now``.

        Records at or before the refresh instant are absorbed — their
        effect (if the job is still running) is inside the ground-truth
        number now.
        """
        if site not in self.capacities:
            raise KeyError(f"refresh for unknown site {site!r}")
        if now > self.latest_time:
            self.latest_time = now
        self._base_busy[site] = busy_cpus
        self._base_time[site] = now
        heap = self._records[site]
        while heap and heap[0][0] <= now:
            _, _, rec = heapq.heappop(heap)
            self._drop(rec)

    def refresh_all(self, busy_by_site: dict[str, float], now: float) -> None:
        for site, busy in busy_by_site.items():
            self.refresh_site(site, busy, now)

    # -- queries ---------------------------------------------------------------
    def estimated_busy(self, site: str, now: Optional[float] = None) -> float:
        if now is not None:
            self.expire(now)
        busy = self._base_busy[site] + self._extra_busy[site]
        return min(max(busy, 0.0), self.capacities[site])

    def estimated_free(self, site: str, now: Optional[float] = None) -> float:
        return self.capacities[site] - self.estimated_busy(site, now)

    def estimated_vo_busy(self, site: str, vo: str,
                          now: Optional[float] = None) -> float:
        """Estimated busy CPUs attributed to ``vo`` (or ``vo.group``).

        ``now`` ages out stale records first — the same expiry
        :meth:`free_map` applies, so USLA headroom and free counts stay
        consistent with each other.
        """
        if now is not None:
            self.expire(now)
        return max(self._vo_busy.get((site, vo), 0.0), 0.0)

    def free_map(self, now: Optional[float] = None) -> dict[str, float]:
        """Estimated free CPUs for every site (the availability answer)."""
        if now is not None:
            self.expire(now)
        return {s: self.estimated_free(s) for s in self.capacities}

    def pending_records(self, newer_than: float) -> list[DispatchRecord]:
        """Live records this node *learned* after the cutoff.

        This is the sync payload selection: keying on learn time (not
        dispatch time) lets relayed records keep flooding outward on
        multi-hop overlays.
        """
        learned = self._learned_at
        return [rec for heap in self._records.values()
                for _, _, rec in heap
                if learned.get(rec.key, -float("inf")) > newer_than]

    @property
    def n_sites(self) -> int:
        return len(self.capacities)

    @property
    def n_records(self) -> int:
        return sum(len(h) for h in self._records.values())
