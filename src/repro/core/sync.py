"""Loose synchronization between decision points.

"Each decision point maintained a view of the ... environment via the
periodic exchange (every three minutes) with other decision points of
information about recent job dispatch operations."  Decision points are
"cooperating brokers that communicate via a flooding protocol".

Three dissemination strategies (paper §2.5):

* ``USAGE_AND_USLA`` — exchange dispatch records *and* USLA documents;
* ``USAGE_ONLY`` — exchange only dispatch records (the paper's focus:
  "an advantage of this approach is the simplified implementation by
  avoiding USLA tracking");
* ``NONE`` — no exchange; each decision point relies only on its own
  monitor and dispatches.

Flooding: each tick a decision point sends every record it has learned
recently (its own *and* relayed ones) to its overlay neighbors;
receivers deduplicate by ``(origin, seq)``.  On the paper's mesh this
converges in one exchange; on ring/line overlays (ablation benches)
information travels one hop per tick.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.core.state import DispatchRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.decision_point import DecisionPoint

__all__ = ["DisseminationStrategy", "SyncProtocol"]

#: Approximate wire size of one dispatch record, in KB (SOAP-encoded).
RECORD_KB = 0.05
#: Approximate wire size of one USLA document, in KB.
AGREEMENT_KB = 0.5


class DisseminationStrategy(enum.Enum):
    USAGE_AND_USLA = "usage_and_usla"
    USAGE_ONLY = "usage_only"
    NONE = "none"


class SyncProtocol:
    """Periodic state exchange for one decision point."""

    def __init__(self, dp: "DecisionPoint", interval_s: float = 180.0,
                 strategy: DisseminationStrategy = DisseminationStrategy.USAGE_ONLY,
                 jitter_s: float = 5.0, delta: bool = False):
        if interval_s <= 0:
            raise ValueError("sync interval must be > 0")
        self.dp = dp
        self.interval_s = interval_s
        self.strategy = strategy
        self.jitter_s = jitter_s
        self.delta = delta
        self.rounds_sent = 0
        self.records_sent = 0
        self.records_received = 0
        self.records_adopted = 0
        self.kb_sent = 0.0
        self._handle = None
        # Relay horizon: resend anything learned since two ticks ago so
        # multi-hop overlays keep flooding records outward.  The cutoff
        # derives from the *actual* previous tick times — a fixed
        # ``now - 2*interval`` horizon silently drops records whenever
        # jitter spaces consecutive ticks further apart than that (the
        # ring/line-overlay relay bug).  Seeded two ticks in the past so
        # the first real tick floods everything learned since t=0.
        self._last_ticks: deque[float] = deque(
            [-float("inf"), -float("inf")], maxlen=2)
        # Delta mode: per-peer learn-sequence watermarks, so each tick
        # ships only what that peer has not been sent yet instead of
        # re-flooding the whole horizon.  Changes payload sizes (hence
        # simulated transfer timing), so it is opt-in rather than part
        # of the result-preserving fast paths.
        self._peer_marks: dict[str, int] = {}

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self.strategy is DisseminationStrategy.NONE:
            return
        if self._handle is not None:
            raise RuntimeError("sync already started")
        # on_error="record": one bad exchange round must not kill the
        # flooding chain (the old behaviour permanently desynchronized
        # this decision point) — the kernel counts and traces it.
        self._handle = self.dp.sim.every(
            self.interval_s, self.tick,
            jitter=self.jitter_s, rng=self.dp.rng,
            on_error="record", name=f"sync:{self.dp.node_id}")

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def snapshot_state(self) -> dict:
        """Canonical sync-horizon state for snapshot digests (JSON-able)."""
        return {
            "rounds_sent": self.rounds_sent,
            "records_sent": self.records_sent,
            "records_received": self.records_received,
            "records_adopted": self.records_adopted,
            "kb_sent": self.kb_sent,
            "last_ticks": [None if t == -float("inf") else t
                           for t in self._last_ticks],
            "peer_marks": sorted(self._peer_marks.items()),
        }

    # -- send side ------------------------------------------------------------
    def tick(self) -> None:
        """One exchange round: push recent records to every neighbor.

        A private decision point (§2.3) relays what it learned from
        others but discloses nothing of its own: its local dispatch
        records and USLA store stay out of every payload.
        """
        dp = self.dp
        if self.delta:
            self._tick_delta()
            return
        # Everything learned since two ticks ago: each record is
        # flooded on exactly two consecutive rounds regardless of the
        # jittered spacing between them.
        cutoff = self._last_ticks[0]
        self._last_ticks.append(dp.sim.now)
        records = dp.engine.view.pending_records(newer_than=cutoff)
        if getattr(dp, "private", False):
            records = [r for r in records if r.origin != dp.engine.owner]
        payload: dict = {"records": records}
        size_kb = len(records) * RECORD_KB
        if (self.strategy is DisseminationStrategy.USAGE_AND_USLA
                and not getattr(dp, "private", False)):
            payload["uslas"] = dp.engine.usla_store.export()
            size_kb += len(dp.engine.usla_store) * AGREEMENT_KB
        spans = dp.sim.spans
        sspan = None
        if spans.enabled:
            # Sync rounds are trace roots: nothing upstream causes them.
            sspan = spans.start_trace("sync.flood", dp.node_id,
                                      records=len(records),
                                      neighbors=len(dp.neighbors))
        ctx = spans.ctx_of(sspan)
        for peer in dp.neighbors:
            dp.network.send_oneway(dp.node_id, peer, "sync", payload,
                                   size_kb=size_kb, trace_ctx=ctx)
        spans.finish(sspan, kb=size_kb * len(dp.neighbors))
        self.rounds_sent += 1
        self.records_sent += len(records) * len(dp.neighbors)
        self.kb_sent += size_kb * len(dp.neighbors)
        dp.sim.metrics.counter("sync.rounds").inc()
        if dp.sim.trace.enabled:
            dp.sim.trace.emit("sync.round", node=dp.node_id,
                              records=len(records),
                              neighbors=len(dp.neighbors), kb=size_kb)

    def _tick_delta(self) -> None:
        """Delta exchange round: each peer gets only what it has not
        been sent before, tracked by an integer learn-sequence
        watermark (exact where float horizons are not — two records
        learned at the same instant straddle no boundary).

        The watermark advances per peer even when the send is an
        oneway best-effort message; a lost sync degrades to the next
        monitor refresh exactly as a lost flood round does.
        """
        dp = self.dp
        view = dp.engine.view
        private = getattr(dp, "private", False)
        uslas = None
        usla_kb = 0.0
        if self.strategy is DisseminationStrategy.USAGE_AND_USLA and not private:
            uslas = dp.engine.usla_store.export()
            usla_kb = len(dp.engine.usla_store) * AGREEMENT_KB
        spans = dp.sim.spans
        sspan = None
        if spans.enabled:
            sspan = spans.start_trace("sync.delta", dp.node_id,
                                      neighbors=len(dp.neighbors))
        ctx = spans.ctx_of(sspan)
        round_records = 0
        round_kb = 0.0
        for peer in dp.neighbors:
            mark, records = view.records_since(self._peer_marks.get(peer, 0))
            self._peer_marks[peer] = mark
            if private:
                records = [r for r in records if r.origin != dp.engine.owner]
            payload: dict = {"records": records}
            size_kb = len(records) * RECORD_KB + usla_kb
            if uslas is not None:
                payload["uslas"] = uslas
            dp.network.send_oneway(dp.node_id, peer, "sync", payload,
                                   size_kb=size_kb, trace_ctx=ctx)
            round_records += len(records)
            round_kb += size_kb
        spans.finish(sspan, records=round_records, kb=round_kb)
        self.rounds_sent += 1
        self.records_sent += round_records
        self.kb_sent += round_kb
        dp.sim.metrics.counter("sync.rounds").inc()
        if dp.sim.trace.enabled:
            dp.sim.trace.emit("sync.round", node=dp.node_id,
                              records=round_records, delta=True,
                              neighbors=len(dp.neighbors), kb=round_kb)

    # -- receive side -----------------------------------------------------------
    def on_sync(self, payload: dict, ctx=None) -> None:
        """Merge one incoming sync payload.

        ``ctx`` is the sender's round-span context; when both ends
        trace, the receive is recorded as an instantaneous child span,
        which is what ties propagation lag to a concrete flood round.
        """
        records: list[DispatchRecord] = payload.get("records", [])
        self.records_received += len(records)
        now = self.dp.sim.now
        adopted = self.dp.engine.merge_remote_records(records, now=now)
        self.records_adopted += adopted
        spans = self.dp.sim.spans
        if spans.enabled and ctx is not None:
            spans.record("sync.recv", self.dp.node_id, ctx,
                         start=now, end=now,
                         received=len(records), adopted=adopted)
        if self.dp.sim.trace.enabled:
            self.dp.sim.trace.emit("sync.recv", node=self.dp.node_id,
                                   received=len(records), adopted=adopted)
        if (self.strategy is DisseminationStrategy.USAGE_AND_USLA
                and "uslas" in payload):
            from repro.usla.store import UslaStore
            adopted = self.dp.engine.usla_store.merge_from(
                UslaStore.import_wire(payload["uslas"]))
            if adopted:
                self.dp.engine.invalidate_policy_cache()
