"""DiPerF: the distributed performance-testing framework (reimplemented).

"DiPerF coordinates several machines in executing a performance service
client and collects various metrics about the performance of the tested
service.  The framework is composed of a controller/collector, several
submitter modules and a tester component.  ...  For the experiments
reported here, we extended it to enable testing of distributed services
such as DI-GRUBER."

* :mod:`repro.diperf.ramp` — slow client ramp-up schedules ("we varied
  slowly the participation of clients");
* :mod:`repro.diperf.tester` — the closed-loop tester used for the
  service-instance-creation micro-benchmark (Fig 1); the DI-GRUBER
  tester is :class:`~repro.core.client.GruberClient` itself;
* :mod:`repro.diperf.collector` — the controller/collector: turns a
  trace plus client activity windows into the paper's three plotted
  series (load, response time, throughput) and summary rows.
"""

from repro.diperf.collector import DiPerfResult
from repro.diperf.ramp import RampSchedule
from repro.diperf.tester import InstanceCreationTester, run_instance_creation_test

__all__ = [
    "DiPerfResult",
    "InstanceCreationTester",
    "RampSchedule",
    "run_instance_creation_test",
]
