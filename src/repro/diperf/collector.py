"""The DiPerF controller/collector's analysis side.

Turns a query trace plus client activity windows into the three series
every paper figure plots — concurrent load, service response time, and
throughput — and the min/median/average/max/stdev/peak summary rows
printed under each figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.report import SummaryStats, format_table
from repro.metrics.timeseries import (
    concurrency_series,
    windowed_mean,
    windowed_rate,
)
from repro.workloads.trace import TraceRecorder

__all__ = ["DiPerfResult"]


@dataclass
class DiPerfResult:
    """Collected outcome of one DiPerF test against one configuration."""

    name: str
    trace: TraceRecorder
    t_start: float
    t_end: float
    client_starts: np.ndarray
    client_ends: np.ndarray
    window_s: float = 60.0
    _q: dict = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self):
        if self.t_end <= self.t_start:
            raise ValueError("t_end must be after t_start")
        self._q = self.trace.query_arrays()

    # -- series (the figure axes) ------------------------------------------
    def load_series(self) -> tuple[np.ndarray, np.ndarray]:
        return concurrency_series(self.client_starts, self.client_ends,
                                  self.t_start, self.t_end, self.window_s)

    def response_series(self) -> tuple[np.ndarray, np.ndarray]:
        return windowed_mean(self._q["responded_at"], self._q["response_s"],
                             self.t_start, self.t_end, self.window_s)

    def throughput_series(self) -> tuple[np.ndarray, np.ndarray]:
        return windowed_rate(self._q["responded_at"], self.t_start,
                             self.t_end, self.window_s)

    # -- summaries (the rows under the figures) ------------------------------
    def response_stats(self) -> SummaryStats:
        _, means = self.response_series()
        responses = self._q["response_s"]
        responses = responses[~np.isnan(responses)]
        valid = means[~np.isnan(means)]
        peak = float(valid.max()) if len(valid) else 0.0
        return SummaryStats.from_array(responses, peak=peak)

    def throughput_stats(self) -> SummaryStats:
        _, rates = self.throughput_series()
        return SummaryStats.from_array(rates, peak=float(rates.max())
                                       if len(rates) else 0.0)

    # -- scalars ------------------------------------------------------------
    @property
    def n_queries(self) -> int:
        return self.trace.n_queries

    @property
    def n_answered(self) -> int:
        return int((~np.isnan(self._q["responded_at"])).sum())

    @property
    def n_timed_out(self) -> int:
        return int(self._q["timed_out"].sum())

    def mean_throughput(self) -> float:
        """Answered queries per second over the whole test."""
        return self.n_answered / (self.t_end - self.t_start)

    def peak_load(self) -> int:
        _, load = self.load_series()
        return int(load.max()) if len(load) else 0

    # -- reporting ------------------------------------------------------------
    def summary(self) -> str:
        rows = [
            ["Response Time (s)"] + [round(v, 2) for v in self.response_stats().row()],
            ["Throughput (q/s)"] + [round(v, 2) for v in self.throughput_stats().row()],
        ]
        header = ["Series", *SummaryStats.HEADER]
        body = format_table(header, rows, title=f"DiPerF: {self.name}",
                            col_width=11)
        tail = (f"\nqueries={self.n_queries} answered={self.n_answered} "
                f"timed_out={self.n_timed_out} peak_load={self.peak_load()}")
        return body + tail
