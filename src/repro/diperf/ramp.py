"""Client ramp-up schedules."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RampSchedule"]


@dataclass(frozen=True)
class RampSchedule:
    """Staggered client joins over a span of the experiment.

    Clients join one by one at equal gaps across ``[start_s,
    start_s + span_s]`` and stay active until the end of the run —
    DiPerF's slow participation ramp, which is what turns one run into
    a load sweep (each time window of the figures corresponds to a
    different concurrency level).
    """

    n_clients: int
    span_s: float
    start_s: float = 0.0

    def __post_init__(self):
        if self.n_clients < 1:
            raise ValueError("need at least one client")
        if self.span_s < 0 or self.start_s < 0:
            raise ValueError("span_s and start_s must be >= 0")

    def join_time(self, index: int) -> float:
        if not 0 <= index < self.n_clients:
            raise IndexError(f"client index {index} out of range")
        if self.n_clients == 1:
            return self.start_s
        gap = self.span_s / (self.n_clients - 1)
        return self.start_s + index * gap

    def offsets(self, hosts: list[str]) -> dict[str, float]:
        """Join times keyed by host name (host order = join order)."""
        if len(hosts) != self.n_clients:
            raise ValueError(f"{len(hosts)} hosts vs n_clients={self.n_clients}")
        return {h: self.join_time(i) for i, h in enumerate(hosts)}
