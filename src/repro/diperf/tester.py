"""Closed-loop testers.

:class:`InstanceCreationTester` reproduces the Fig 1 micro-benchmark:
each tester hammers one service with back-to-back service-instance
creation requests (no think time, one outstanding request), paying the
client-side stack overhead and the operation's round trips, from its
ramp join time until the end of the test.
"""

from __future__ import annotations

from typing import Hashable, Optional

import numpy as np

from repro.net.container import ContainerProfile, lognormal_for_mean
from repro.net.transport import Endpoint, Network, RpcError
from repro.sim.kernel import Simulator
from repro.workloads.trace import TraceRecorder

__all__ = ["InstanceCreationTester", "run_instance_creation_test"]


class InstanceCreationTester(Endpoint):
    """One DiPerF tester issuing ``create_instance`` calls in a loop."""

    def __init__(self, sim: Simulator, network: Network, host_id: Hashable,
                 service: Hashable, profile: ContainerProfile,
                 rng: np.random.Generator, trace: TraceRecorder,
                 start_at: float, end_at: float):
        super().__init__(network, host_id)
        if end_at <= start_at:
            raise ValueError("end_at must be after start_at")
        self.sim = sim
        self.service = service
        self.profile = profile
        self.rng = rng
        self.trace = trace
        self.start_at = start_at
        self.end_at = end_at
        self.completed = 0
        self.failed = 0
        self._proc = None

    def start(self) -> None:
        if self._proc is not None:
            raise RuntimeError(f"tester {self.node_id!r} already started")
        self._proc = self.sim.process(self._run(), name=f"tester:{self.node_id}")

    def _run(self):
        if self.start_at > self.sim.now:
            yield self.start_at - self.sim.now
        while self.sim.now < self.end_at:
            t0 = self.sim.now
            overhead = lognormal_for_mean(
                self.rng, self.profile.instance_client_overhead_s,
                self.profile.sigma)
            if overhead > 0:
                yield overhead
            extra_rtts = max(self.profile.instance_rtts - 1, 0)
            if extra_rtts:
                yield sum(self.network.latency.rtt(self.node_id, self.service)
                          for _ in range(extra_rtts))
            ev = self.network.rpc(self.node_id, self.service,
                                  "create_instance", {}, size_kb=0.5,
                                  response_size_kb=0.5)
            try:
                yield ev
                self.completed += 1
                self.trace.record_query(t0, self.sim.now, timed_out=False,
                                        client=str(self.node_id),
                                        decision_point=str(self.service))
            except RpcError:
                self.failed += 1
                self.trace.record_query(t0, None, timed_out=False,
                                        client=str(self.node_id),
                                        decision_point=str(self.service))


def run_instance_creation_test(sim: Simulator, network: Network,
                               service: Hashable, profile: ContainerProfile,
                               rng_streams, n_clients: int, ramp_span_s: float,
                               duration_s: float,
                               trace: Optional[TraceRecorder] = None
                               ) -> tuple[TraceRecorder, list[InstanceCreationTester]]:
    """Spin up a ramped tester fleet against one service endpoint.

    ``rng_streams`` is an ``RngRegistry``; each tester gets its own
    named stream.  The simulation is *not* run — the caller owns the
    clock (so this composes with other load in the same run).
    """
    from repro.diperf.ramp import RampSchedule

    trace = trace if trace is not None else TraceRecorder()
    ramp = RampSchedule(n_clients=n_clients, span_s=ramp_span_s)
    testers = []
    for i in range(n_clients):
        tester = InstanceCreationTester(
            sim, network, host_id=f"tester{i:03d}", service=service,
            profile=profile, rng=rng_streams.stream(f"tester:{i}"),
            trace=trace, start_at=ramp.join_time(i), end_at=duration_s)
        tester.start()
        testers.append(tester)
    return trace, testers
