"""Euryale: the concrete planner (paper §3.4).

"Euryale uses Condor-G (and thus the Globus Toolkit GRAM) to submit and
monitor jobs at sites.  It takes a late binding approach ... site
placement decisions are made immediately prior to running the job. ...
A tool called DagMan executes the Euryale prescript and postscript.
The prescript calls out to the external site selector (i.e., in our
case, GRUBER) to identify the site on which the job should run,
rewrites the job submit file ... transfers necessary input files ...
registers transferred files with the replica mechanism, and deals with
replanning.  The postscript file transfers output files ... registers
produced files, checks on successful job execution, and updates file
popularity."

* :mod:`repro.euryale.replica` — replica catalog with popularity;
* :mod:`repro.euryale.condor_g` — Condor-G-style submission/monitoring;
* :mod:`repro.euryale.dagman` — minimal DAG executor with pre/post
  scripts;
* :mod:`repro.euryale.planner` — the late-binding planner itself, with
  failure-driven replanning.
"""

from repro.euryale.condor_g import CondorGSubmitter
from repro.euryale.dagman import DagMan, DagNode
from repro.euryale.planner import EuryalePlanner, FileSpec, PlannerJob
from repro.euryale.replica import ReplicaCatalog

__all__ = [
    "CondorGSubmitter",
    "DagMan",
    "DagNode",
    "EuryalePlanner",
    "FileSpec",
    "PlannerJob",
    "ReplicaCatalog",
]
