"""Condor-G-style job submission and monitoring.

Submits a job to a site over the WAN (GRAM submission latency) and
resolves a completion event when the site reports the job finished or
failed — the "submit and monitor jobs at sites" role Condor-G plays
under Euryale.
"""

from __future__ import annotations

from typing import Hashable

from repro.grid.builder import Grid
from repro.grid.job import Job, JobState
from repro.net.transport import Network
from repro.sim.kernel import Event, Simulator

__all__ = ["CondorGSubmitter"]


class CondorGSubmitter:
    """Submission + completion monitoring against the grid fabric."""

    def __init__(self, sim: Simulator, network: Network, grid: Grid,
                 origin: Hashable = "condor-g"):
        self.sim = sim
        self.network = network
        self.grid = grid
        self.origin = origin
        self.submitted = 0
        self._watched: dict[int, Event] = {}
        self._hooked_sites: set[str] = set()

    def submit(self, job: Job, site: str) -> Event:
        """Send the job to ``site``; returns the completion event.

        The event succeeds with the job when it completes and *fails*
        with a RuntimeError when the site reports failure — callers
        (the planner) catch that to replan.
        """
        if site not in self.grid.sites:
            raise KeyError(f"unknown site {site!r}")
        done = self.sim.event(name=f"condor-g:{job.jid}")
        self._watched[job.jid] = done
        self._hook(site)
        latency = self.network.latency.sample(self.origin, site)
        self.sim.schedule(latency, lambda: self.grid.site(site).submit(job))
        self.submitted += 1
        return done

    def _hook(self, site_name: str) -> None:
        if site_name in self._hooked_sites:
            return
        self._hooked_sites.add(site_name)
        self.grid.site(site_name).on_job_completed.append(self._on_terminal)

    def _on_terminal(self, job: Job) -> None:
        done = self._watched.pop(job.jid, None)
        if done is None or done.triggered:
            return
        if job.state is JobState.COMPLETED:
            done.succeed(job)
        else:
            done.fail(RuntimeError(f"job {job.jid} failed at {job.site}"))

    @property
    def in_flight(self) -> int:
        return len(self._watched)
