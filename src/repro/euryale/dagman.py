"""A minimal DagMan: DAG execution with pre/post scripts.

"A tool called DagMan executes the Euryale prescript and postscript" —
nodes become runnable when all their parents complete; each node's work
is a planner process (prescript → submit → postscript).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.euryale.planner import EuryalePlanner, PlannerJob
from repro.sim.kernel import Event, Simulator

__all__ = ["DagNode", "DagMan"]


@dataclass
class DagNode:
    """One vertex: a planner job plus its parent names."""

    name: str
    planner_job: PlannerJob
    parents: list[str] = field(default_factory=list)
    state: str = "waiting"  # waiting | running | done | failed


class DagMan:
    """Executes a DAG of planner jobs, honoring dependencies."""

    def __init__(self, sim: Simulator, planner: EuryalePlanner):
        self.sim = sim
        self.planner = planner
        self.nodes: dict[str, DagNode] = {}
        self._done_event: Optional[Event] = None
        self._remaining = 0
        self.failed_nodes: list[str] = []

    # -- construction -------------------------------------------------------
    def add_node(self, node: DagNode) -> None:
        if node.name in self.nodes:
            raise ValueError(f"duplicate DAG node {node.name!r}")
        self.nodes[node.name] = node

    def _validate(self) -> None:
        for node in self.nodes.values():
            for p in node.parents:
                if p not in self.nodes:
                    raise ValueError(
                        f"node {node.name!r} depends on unknown node {p!r}")
        # Cycle detection by Kahn peeling.
        indeg = {n: len(set(node.parents))
                 for n, node in self.nodes.items()}
        queue = [n for n, d in indeg.items() if d == 0]
        seen = 0
        children: dict[str, list[str]] = {n: [] for n in self.nodes}
        for n, node in self.nodes.items():
            # dict.fromkeys dedupes while keeping declaration order
            # (set iteration order is hash-randomized).
            for p in dict.fromkeys(node.parents):
                children[p].append(n)
        while queue:
            n = queue.pop()
            seen += 1
            for c in children[n]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    queue.append(c)
        if seen != len(self.nodes):
            raise ValueError("DAG contains a cycle")

    # -- execution ------------------------------------------------------------
    def run(self) -> Event:
        """Start the DAG; returns an event that fires when all nodes end.

        The event succeeds with a summary dict; node failures (planner
        retries exhausted) mark the node and its descendants failed but
        do not fail the DAG event — DagMan reports partial completion,
        like the real tool's rescue-DAG behaviour.
        """
        if self._done_event is not None:
            raise RuntimeError("DAG already running")
        self._validate()
        self._done_event = self.sim.event(name="dagman:done")
        self._remaining = len(self.nodes)
        if self._remaining == 0:
            self._done_event.succeed({"done": 0, "failed": 0})
            return self._done_event
        for node in list(self.nodes.values()):
            if not node.parents:
                self._launch(node)
        return self._done_event

    def _launch(self, node: DagNode) -> None:
        node.state = "running"
        proc = self.sim.process(self.planner.run_job(node.planner_job),
                                name=f"dag:{node.name}")
        proc.add_callback(lambda ev, n=node: self._on_node_end(n, ev.ok))

    def _on_node_end(self, node: DagNode, ok: bool) -> None:
        node.state = "done" if ok else "failed"
        self._remaining -= 1
        if ok:
            for child in self.nodes.values():
                if (child.state == "waiting"
                        and node.name in child.parents
                        and all(self.nodes[p].state == "done"
                                for p in child.parents)):
                    self._launch(child)
        else:
            self.failed_nodes.append(node.name)
            self._cascade_failure(node.name)
        if self._remaining == 0 and not self._done_event.triggered:
            done = sum(1 for n in self.nodes.values() if n.state == "done")
            failed = sum(1 for n in self.nodes.values() if n.state == "failed")
            self._done_event.succeed({"done": done, "failed": failed})

    def _cascade_failure(self, failed_name: str) -> None:
        """Mark descendants of a failed node as failed (never runnable)."""
        for child in self.nodes.values():
            if child.state == "waiting" and failed_name in child.parents:
                child.state = "failed"
                self._remaining -= 1
                self.failed_nodes.append(child.name)
                self._cascade_failure(child.name)

    # -- introspection ---------------------------------------------------------
    def states(self) -> dict[str, str]:
        return {n: node.state for n, node in self.nodes.items()}
