"""The Euryale late-binding planner.

For each job the planner runs, in order:

1. **prescript** — call the external site selector (GRUBER: fetch the
   availability map from a decision point, apply the task-assignment
   policy, report the selection), rewrite the submit file to the chosen
   site, transfer input files that lack a replica there, and register
   the transfers with the replica catalog;
2. **submit** via Condor-G and wait;
3. **postscript** — transfer outputs to the collection area, register
   produced files, check success, update popularity;
4. on failure, **replan**: reset the job and go back to 1 (late
   binding means the new attempt sees fresh availability), up to
   ``max_retries`` times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

import numpy as np

from repro.core.selectors import RandomSelector, SiteSelector
from repro.euryale.condor_g import CondorGSubmitter
from repro.euryale.replica import ReplicaCatalog
from repro.grid.builder import Grid
from repro.grid.job import Job
from repro.net.transport import Network, RpcError
from repro.sim.kernel import Simulator

__all__ = ["FileSpec", "PlannerJob", "EuryalePlanner"]

#: Effective WAN file-transfer rate used for staging, MB/s.
TRANSFER_MB_S = 4.0


@dataclass(frozen=True)
class FileSpec:
    """A logical file a job consumes or produces."""

    lfn: str
    size_mb: float = 10.0

    def __post_init__(self):
        if self.size_mb < 0:
            raise ValueError("size_mb must be >= 0")


@dataclass
class PlannerJob:
    """A job plus its data dependencies, as Euryale sees it."""

    job: Job
    inputs: list[FileSpec] = field(default_factory=list)
    outputs: list[FileSpec] = field(default_factory=list)


class EuryalePlanner:
    """Late-binding planning with GRUBER site selection and replanning."""

    def __init__(self, sim: Simulator, network: Network, grid: Grid,
                 submitter: CondorGSubmitter, catalog: ReplicaCatalog,
                 selector: SiteSelector, rng: np.random.Generator,
                 decision_point: Optional[Hashable] = None,
                 origin: Hashable = "euryale",
                 collection_site: str = "",
                 max_retries: int = 3,
                 selector_timeout_s: float = 15.0,
                 storage: Optional[dict] = None,
                 bandwidth: Optional[dict] = None,
                 data_aware: bool = False):
        self.sim = sim
        self.network = network
        self.grid = grid
        self.submitter = submitter
        self.catalog = catalog
        self.selector = selector
        self.fallback = RandomSelector(rng)
        self.decision_point = decision_point
        self.origin = origin
        self.collection_site = collection_site or "collection-area"
        self.max_retries = max_retries
        self.selector_timeout_s = selector_timeout_s
        #: Optional per-site StorageManager map; when present, staged
        #: inputs reserve space and storage USLAs can veto a placement.
        self.storage = storage or {}
        #: Optional per-site BandwidthPool map; when present, transfers
        #: contend for the site's uplink (processor sharing + network
        #: USLAs) instead of the flat TRANSFER_MB_S rate.
        self.bandwidth = bandwidth or {}
        #: Data-aware placement (the Ranganathan-Foster line the paper
        #: builds on): prefer sites already holding the job's input
        #: replicas, falling back to the plain selector when no replica
        #: site has capacity.
        self.data_aware = data_aware
        self.data_aware_hits = 0
        self.completed: list[Job] = []
        self.abandoned: list[Job] = []
        self.replans = 0
        self.storage_rejections = 0

    # -- public API ----------------------------------------------------------
    def run_job(self, planner_job: PlannerJob):
        """Process generator: plan, run, and re-plan one job to the end.

        Returns the job on success; raises RuntimeError after
        exhausting retries.
        """
        job = planner_job.job
        attempt = 0
        while True:
            site = yield from self._prescript(planner_job)
            done = self.submitter.submit(job, site)
            try:
                yield done
            except RuntimeError:
                attempt += 1
                if attempt > self.max_retries:
                    self.abandoned.append(job)
                    raise RuntimeError(
                        f"job {job.jid} abandoned after {attempt - 1} replans")
                job.reset_for_replan()
                self.replans += 1
                continue
            yield from self._postscript(planner_job)
            self.completed.append(job)
            return job

    # -- prescript ------------------------------------------------------------
    def _prescript(self, planner_job: PlannerJob):
        job = planner_job.job
        site = yield from self._select_site(planner_job)
        # Storage USLA check: the execution site must grant the VO
        # space for the inputs it lacks; on refusal try other sites.
        for _ in range(8):
            if self._storage_admits(planner_job, site):
                break
            self.storage_rejections += 1
            site = self.fallback.select_any(self.grid.site_names)
        else:
            raise RuntimeError(
                f"job {job.jid}: no site grants {job.vo!r} storage for "
                f"its inputs")
        # "Rewrites the job submit file to specify that site."
        job.decision_point = (str(self.decision_point)
                              if self.decision_point else None)
        # "Transfers necessary input files to that site" — only files
        # without a replica there; "registers transferred files".
        for spec in planner_job.inputs:
            if not self.catalog.has_replica(spec.lfn, site):
                yield from self._transfer(site, job.vo, spec.size_mb)
                manager = self.storage.get(site)
                if manager is not None:
                    manager.allocate(job.vo, spec.lfn, spec.size_mb / 1024.0)
                self.catalog.register(spec.lfn, site)
            self.catalog.touch(spec.lfn)
        return site

    def _transfer(self, site: str, vo: str, size_mb: float):
        """Move one file: via the site's bandwidth pool when modeled."""
        if size_mb <= 0:
            return
        pool = self.bandwidth.get(site)
        if pool is None:
            yield size_mb / TRANSFER_MB_S
            return
        while True:
            done = pool.transfer(vo, size_mb)
            try:
                yield done
                return
            except PermissionError:
                # Network USLA: wait for link share to free, then retry.
                yield 30.0

    def _storage_admits(self, planner_job: PlannerJob, site: str) -> bool:
        manager = self.storage.get(site)
        if manager is None:
            return True
        job = planner_job.job
        needed_gb = sum(spec.size_mb for spec in planner_job.inputs
                        if not self.catalog.has_replica(spec.lfn, site)) / 1024.0
        return manager.can_allocate(job.vo, needed_gb)

    def _replica_bytes(self, planner_job: PlannerJob) -> dict[str, float]:
        """Input megabytes already resident per site."""
        bytes_at: dict[str, float] = {}
        for spec in planner_job.inputs:
            for site in self.catalog.locations(spec.lfn):
                if site in self.grid.sites:
                    bytes_at[site] = bytes_at.get(site, 0.0) + spec.size_mb
        return bytes_at

    def _select_site(self, planner_job: PlannerJob):
        """Call out to the external site selector (GRUBER)."""
        job = planner_job.job
        replica_bytes = (self._replica_bytes(planner_job)
                         if self.data_aware else {})
        if self.decision_point is None:
            # No broker configured: Euryale's own fallback (replica-
            # richest site when data-aware, random otherwise).
            if replica_bytes:
                self.data_aware_hits += 1
                return max(replica_bytes, key=replica_bytes.get)
            return self.fallback.select_any(self.grid.site_names)
        ev = self.network.rpc(self.origin, self.decision_point, "get_state",
                              {"vo": job.vo, "cpus": job.cpus})
        race = self.sim.any_of([ev, self.sim.timeout(self.selector_timeout_s)])
        try:
            yield race
        except RpcError:
            return self.fallback.select_any(self.grid.site_names)
        if not ev.triggered:
            # Selector timeout: Euryale proceeds with a random site.
            return self.fallback.select_any(self.grid.site_names)
        availabilities = ev.value
        site = None
        if replica_bytes:
            # Prefer a replica-holding site with capacity: most resident
            # bytes first, estimated free CPUs as the tie-breaker.
            fitting = [s for s in replica_bytes
                       if availabilities.get(s, 0.0) >= job.cpus]
            if fitting:
                site = max(fitting, key=lambda s: (replica_bytes[s],
                                                   availabilities[s]))
                self.data_aware_hits += 1
        if site is None:
            site = self.selector.select(availabilities, job.cpus)
        if site is None:
            site = max(availabilities, key=availabilities.get)
        report = self.network.rpc(self.origin, self.decision_point,
                                  "report_dispatch",
                                  {"site": site, "vo": job.vo,
                                   "cpus": job.cpus})
        try:
            yield report
        except RpcError:
            pass
        return site

    # -- postscript ----------------------------------------------------------
    def _postscript(self, planner_job: PlannerJob):
        job = planner_job.job
        # "Transfers output files to the collection area, registers
        # produced files ... and updates file popularity."
        for spec in planner_job.outputs:
            yield from self._transfer(job.site, job.vo, spec.size_mb)
            self.catalog.register(spec.lfn, self.collection_site)
            self.catalog.touch(spec.lfn)
        # "Checks on successful job execution."
        if job.completed_at is None:
            raise RuntimeError(f"postscript: job {job.jid} has no completion")
