"""Replica catalog: logical file → physical locations, with popularity.

Stands in for the RLS-style "replica mechanism" Euryale registers
transferred and produced files with; popularity counts are what the
postscript updates ("updates file popularity").
"""

from __future__ import annotations

__all__ = ["ReplicaCatalog"]


class ReplicaCatalog:
    """Maps logical file names (LFNs) to the sites holding a copy."""

    def __init__(self) -> None:
        self._locations: dict[str, set[str]] = {}
        self._popularity: dict[str, int] = {}

    def register(self, lfn: str, site: str) -> None:
        """Record that ``site`` now holds a replica of ``lfn``."""
        if not lfn or not site:
            raise ValueError("lfn and site must be non-empty")
        self._locations.setdefault(lfn, set()).add(site)

    def unregister(self, lfn: str, site: str) -> None:
        sites = self._locations.get(lfn)
        if sites:
            sites.discard(site)
            if not sites:
                del self._locations[lfn]

    def locations(self, lfn: str) -> set[str]:
        return set(self._locations.get(lfn, set()))

    def has_replica(self, lfn: str, site: str) -> bool:
        return site in self._locations.get(lfn, set())

    def touch(self, lfn: str) -> int:
        """Bump and return the file's popularity count."""
        self._popularity[lfn] = self._popularity.get(lfn, 0) + 1
        return self._popularity[lfn]

    def popularity(self, lfn: str) -> int:
        return self._popularity.get(lfn, 0)

    def most_popular(self, n: int = 10) -> list[tuple[str, int]]:
        return sorted(self._popularity.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, lfn: str) -> bool:
        return lfn in self._locations
