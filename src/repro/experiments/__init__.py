"""Canonical experiment configurations and runners.

Everything the benchmarks and examples execute lives here so that
"regenerate Table 1" is one function call.  See DESIGN.md §4 for the
experiment index.
"""

from repro.experiments.configs import (
    CANONICAL_SYNC_INTERVAL_S,
    CANONICAL_TIMEOUT_S,
    ExperimentConfig,
    canonical_gt3,
    canonical_gt4,
    smoke_config,
)
from repro.experiments.figures import (
    run_accuracy_sweep,
    run_fig1_service_creation,
    run_scalability_sweep,
    table_overall_performance,
)
from repro.experiments.runner import ExperimentResult, run_experiment

__all__ = [
    "CANONICAL_SYNC_INTERVAL_S",
    "CANONICAL_TIMEOUT_S",
    "ExperimentConfig",
    "ExperimentResult",
    "canonical_gt3",
    "canonical_gt4",
    "run_accuracy_sweep",
    "run_experiment",
    "run_fig1_service_creation",
    "run_scalability_sweep",
    "smoke_config",
    "table_overall_performance",
]
