"""Resumable parameter-sweep campaigns.

A campaign is a parameter sweep treated as durable work: every cell
(one :class:`~repro.experiments.configs.ExperimentConfig`) owns a
directory holding its periodic checkpoints and, once finished, an
atomically-written ``result.json``.  The campaign runner fans cells out
over processes via :func:`~repro.experiments.parallel.run_parallel`
with a checkpoint-aware worker:

* a cell with a valid ``result.json`` is **skipped** (its record is
  reused verbatim);
* an interrupted cell with a valid checkpoint **resumes** from its
  newest one (verified replay — see :mod:`repro.sim.snapshot`);
* anything else runs from scratch.

Because the *same* worker serves ``run_parallel``'s one-shot retry
generation, a cell whose worker process died also resumes from its own
checkpoint instead of re-paying the lost wall-clock.  Kill the whole
campaign (SIGTERM, machine loss) and relaunch it: completed cells are
reused, interrupted cells resume, and the final aggregate is identical
to an uninterrupted run's — runs are deterministic and every record
derives from :func:`~repro.experiments.parallel.summary_digest`.

Layout under the campaign directory::

    cells/<name>/checkpoints/ckpt-*.json
    cells/<name>/result.json
    manifest.json      (completed/pending/failed, refreshed per launch)
    aggregate.json     (BENCH-style report, written when all cells ran)
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Optional, Sequence

from repro.experiments.configs import ExperimentConfig, smoke_config
from repro.experiments.parallel import (FailedCell, run_parallel, summarize,
                                        summary_digest)
from repro.experiments.runner import run_experiment
from repro.sim.snapshot import newest_checkpoint, resume_experiment

__all__ = ["campaign_configs", "campaign_manifest", "run_campaign",
           "CAMPAIGN_PRESETS"]

_RESULT_VERSION = 1


# -- cell bookkeeping ----------------------------------------------------
def _cell_dir(out: str, name: str) -> str:
    return os.path.join(out, "cells", name)


def _attach_cell_dirs(configs: Sequence[ExperimentConfig], out: str,
                      checkpoint_every_s: float) -> list[ExperimentConfig]:
    """Point every cell's checkpointing at its own campaign directory."""
    names = [c.name for c in configs]
    if len(set(names)) != len(names):
        raise ValueError(f"cell names must be unique, got {names}")
    prepared = []
    for config in configs:
        checkpoints = os.path.join(_cell_dir(out, config.name), "checkpoints")
        os.makedirs(checkpoints, exist_ok=True)
        prepared.append(config.with_(
            checkpoint_every_s=checkpoint_every_s,
            checkpoint_dir=checkpoints))
    return prepared


def _result_path(config: ExperimentConfig) -> str:
    return os.path.join(os.path.dirname(config.checkpoint_dir),
                        "result.json")


def _read_result(path: str) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except (OSError, ValueError):
        return None
    if (not isinstance(record, dict)
            or record.get("version") != _RESULT_VERSION
            or "summary_digest" not in record):
        return None
    return record


def _write_result(path: str, record: dict) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.rename(tmp, path)


def _cell_worker(config: ExperimentConfig) -> dict:
    """Run (or reuse, or resume) one campaign cell; returns its record.

    Module-level so it pickles into worker processes, including
    ``run_parallel``'s retry pools.
    """
    result_path = _result_path(config)
    cached = _read_result(result_path)
    if cached is not None:
        return cached
    checkpoint = newest_checkpoint(config.checkpoint_dir)
    if checkpoint is not None:
        summary = summarize(resume_experiment(checkpoint))
        resumed_from = os.path.basename(checkpoint)
    else:
        summary = summarize(run_experiment(config))
        resumed_from = None
    record = {
        "version": _RESULT_VERSION,
        "name": config.name,
        "summary_digest": summary_digest(summary),
        "n_jobs": summary.n_jobs,
        "fallbacks": dict(summary.fallbacks),
        "peak_throughput": summary.peak_throughput,
        "avg_response": summary.avg_response,
        "resumed_from": resumed_from,
    }
    _write_result(result_path, record)
    return record


# -- manifest / aggregate ------------------------------------------------
def campaign_manifest(out: str,
                      configs: Sequence[ExperimentConfig]) -> dict:
    """Derive the cell manifest from what is on disk right now."""
    completed, resumable, pending = [], [], []
    for config in configs:
        cell = _cell_dir(out, config.name)
        if _read_result(os.path.join(cell, "result.json")) is not None:
            completed.append(config.name)
        elif newest_checkpoint(os.path.join(cell, "checkpoints")) is not None:
            resumable.append(config.name)
        else:
            pending.append(config.name)
    return {"completed": completed, "resumable": resumable,
            "pending": pending}


def _aggregate(records: list[dict], failed: list[str],
               duration_s: float) -> dict:
    """BENCH-style campaign report; deterministic (no wall-clock).

    ``resumed_from`` is provenance, not result — it stays in the cell's
    ``result.json`` but is stripped here, so an interrupted-and-resumed
    campaign aggregates byte-identically to an uninterrupted one.
    """
    records = sorted(({k: v for k, v in r.items() if k != "resumed_from"}
                      for r in records), key=lambda r: r["name"])
    crc = 0
    for record in records:
        blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
        crc = zlib.crc32(blob.encode("utf-8"), crc)
    return {
        "bench": "campaign",
        "duration_s": duration_s,
        "cells": records,
        "failed": sorted(failed),
        "digest": f"{crc:08x}",
        "pass_campaign": not failed,
    }


# -- the runner ----------------------------------------------------------
def run_campaign(configs: Sequence[ExperimentConfig], out: str,
                 checkpoint_every_s: float = 60.0,
                 max_workers: Optional[int] = None) -> dict:
    """Run a sweep as a resumable campaign; returns the aggregate report.

    Idempotent by construction: relaunching over the same ``out``
    reuses completed cells, resumes interrupted ones from their newest
    valid checkpoint, and reproduces the identical aggregate an
    uninterrupted launch would have written.
    """
    if not configs:
        raise ValueError("campaign needs at least one cell")
    prepared = _attach_cell_dirs(configs, out, checkpoint_every_s)
    manifest = campaign_manifest(out, configs)
    _write_result(os.path.join(out, "manifest.json"), manifest)

    results = run_parallel(prepared, max_workers=max_workers,
                           worker=_cell_worker)

    records, failed = [], []
    for config, result in zip(prepared, results):
        if isinstance(result, FailedCell) or result is None:
            failed.append(config.name)
        else:
            records.append(result)
    report = _aggregate(records, failed,
                        duration_s=max(c.duration_s for c in configs))
    _write_result(os.path.join(out, "manifest.json"),
                  campaign_manifest(out, configs))
    _write_result(os.path.join(out, "aggregate.json"), report)
    return report


# -- presets -------------------------------------------------------------
def _smoke_cells(duration_s: float) -> list[ExperimentConfig]:
    return [smoke_config(decision_points=k, duration_s=duration_s,
                         name=f"smoke-{k}dp")
            for k in (1, 2, 3)]


def _accuracy_cells(duration_s: float) -> list[ExperimentConfig]:
    return [smoke_config(decision_points=3, n_clients=10,
                         sync_interval_s=sync_s, duration_s=duration_s,
                         name=f"sync-{int(sync_s)}s")
            for sync_s in (30.0, 60.0, 120.0, 240.0)]


CAMPAIGN_PRESETS = {
    "smoke": _smoke_cells,
    "accuracy": _accuracy_cells,
}


def campaign_configs(preset: str, duration_s: float = 300.0
                     ) -> list[ExperimentConfig]:
    """Cells for a named campaign preset (CLI + CI entry point)."""
    try:
        factory = CAMPAIGN_PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown campaign preset {preset!r}; expected one of "
            f"{sorted(CAMPAIGN_PRESETS)}") from None
    return factory(duration_s)
