"""Experiment configuration.

The canonical environment reconstructs the paper's §4.3 setup (all
numerals were lost to the OCR; see DESIGN.md for the derivation):

* emulated grid: 300 sites / 40,000 CPUs (10x Grid3), 10 VOs x 10
  groups;
* ~120 submission hosts for GT3 (a smaller fleet for GT4 — the paper's
  GT4 runs used a different client count), each submitting one job per
  second, ramped in slowly by DiPerF over the first half of the run;
* one-hour experiments; 15 s client timeout; 3-minute sync interval;
  decision points in a mesh.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.sync import DisseminationStrategy
from repro.net.container import ContainerProfile, GT3_PROFILE, GT4_PROFILE
from repro.workloads.models import JobModel

__all__ = ["ExperimentConfig", "canonical_gt3", "canonical_gt4",
           "smoke_config", "CANONICAL_TIMEOUT_S", "CANONICAL_SYNC_INTERVAL_S"]

CANONICAL_TIMEOUT_S = 15.0
CANONICAL_SYNC_INTERVAL_S = 180.0


@dataclass(frozen=True)
class ExperimentConfig:
    """Full description of one DI-GRUBER run."""

    # Broker side.
    profile: ContainerProfile = GT3_PROFILE
    decision_points: int = 1
    topology: str = "mesh"
    sync_interval_s: float = CANONICAL_SYNC_INTERVAL_S
    monitor_interval_s: float = 600.0
    strategy: DisseminationStrategy = DisseminationStrategy.USAGE_ONLY
    usla_aware: bool = False
    selector: str = "least_used"
    selector_spread: float = 0.85  # least-used herd-avoidance window

    # Client side.
    n_clients: int = 120
    timeout_s: float = CANONICAL_TIMEOUT_S
    interarrival_s: float = 1.0
    ramp_fraction: float = 0.5   # clients join over this fraction of the run
    one_phase: bool = False      # §7's broker/job-manager tight coupling
    client_assignment: str = "random"  # "random" (paper §4.3) | "nearest"

    # Environment.
    duration_s: float = 3600.0
    n_sites: int = 300
    total_cpus: int = 40000
    backfill: bool = False  # site schedulers: FIFO (default) or backfill
    n_vos: int = 10
    groups_per_vo: int = 10
    users_per_group: int = 3
    job_model: JobModel = field(default_factory=JobModel)

    # WAN.  ``lan=True`` swaps in sub-millisecond LAN latency and free
    # transfers (the paper: "we expect that performance will be
    # significantly better in a LAN environment").
    lan: bool = False
    wan_median_ms: float = 60.0
    wan_sigma: float = 0.6
    wan_loss_rate: float = 0.0   # per-message drop probability
    kb_transfer_s: float = 0.15
    site_state_kb: float = 0.06

    # Observability (repro.obs).  Counters/histograms are always on;
    # the structured trace is opt-in because it costs per-event work.
    trace_enabled: bool = False
    trace_path: str = ""        # stream events to this JSONL file
    trace_capacity: int = 65536  # ring-buffer size when tracing

    # Reproducibility.
    seed: int = 20050101
    name: str = "experiment"

    def __post_init__(self):
        if self.decision_points < 1:
            raise ValueError("decision_points must be >= 1")
        if self.n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if not (0.0 < self.ramp_fraction <= 1.0):
            raise ValueError("ramp_fraction must be in (0, 1]")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        if self.client_assignment not in ("random", "nearest"):
            raise ValueError(
                f"unknown client_assignment {self.client_assignment!r}")

    def with_(self, **overrides) -> "ExperimentConfig":
        """A modified copy (sweeps use this)."""
        return replace(self, **overrides)

    @property
    def ramp_span_s(self) -> float:
        return self.duration_s * self.ramp_fraction


def canonical_gt3(decision_points: int = 1, **overrides) -> ExperimentConfig:
    """The paper's GT3 DI-GRUBER environment (Figs 5-8, Table 1)."""
    cfg = ExperimentConfig(profile=GT3_PROFILE,
                           decision_points=decision_points,
                           n_clients=120,
                           name=f"gt3-{decision_points}dp")
    return cfg.with_(**overrides) if overrides else cfg


def canonical_gt4(decision_points: int = 1, **overrides) -> ExperimentConfig:
    """The paper's GT4 DI-GRUBER environment (Figs 9-12, Table 2).

    The GT4 test fleet is smaller (the paper notes a different client
    count, "close to [N] in this case"); 50 hosts reproduces the
    documented unsaturated-at-ten-DPs / saturated-at-three behaviour.
    """
    cfg = ExperimentConfig(profile=GT4_PROFILE,
                           decision_points=decision_points,
                           n_clients=50,
                           name=f"gt4-{decision_points}dp")
    return cfg.with_(**overrides) if overrides else cfg


def smoke_config(**overrides) -> ExperimentConfig:
    """A seconds-scale configuration for tests: small grid, short run."""
    cfg = ExperimentConfig(
        decision_points=1, n_clients=8, duration_s=300.0,
        n_sites=12, total_cpus=600, n_vos=2, groups_per_vo=2,
        users_per_group=2, monitor_interval_s=120.0, sync_interval_s=60.0,
        job_model=JobModel(duration_mean_s=120.0, min_duration_s=10.0),
        name="smoke")
    return cfg.with_(**overrides) if overrides else cfg
