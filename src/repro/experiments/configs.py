"""Experiment configuration.

The canonical environment reconstructs the paper's §4.3 setup (all
numerals were lost to the OCR; see DESIGN.md for the derivation):

* emulated grid: 300 sites / 40,000 CPUs (10x Grid3), 10 VOs x 10
  groups;
* ~120 submission hosts for GT3 (a smaller fleet for GT4 — the paper's
  GT4 runs used a different client count), each submitting one job per
  second, ramped in slowly by DiPerF over the first half of the run;
* one-hour experiments; 15 s client timeout; 3-minute sync interval;
  decision points in a mesh.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.control.policy import AutoscaleConfig

from repro.core.sync import DisseminationStrategy
from repro.net.container import ContainerProfile, GT3_PROFILE, GT4_PROFILE
from repro.resilience.policy import ResilienceConfig
from repro.workloads.models import JobModel

__all__ = ["ExperimentConfig", "canonical_gt3", "canonical_gt4",
           "smoke_config", "chaos_smoke_config", "scale_config",
           "CANONICAL_TIMEOUT_S", "CANONICAL_SYNC_INTERVAL_S"]

CANONICAL_TIMEOUT_S = 15.0
CANONICAL_SYNC_INTERVAL_S = 180.0


@dataclass(frozen=True)
class ExperimentConfig:
    """Full description of one DI-GRUBER run."""

    # Broker side.
    profile: ContainerProfile = GT3_PROFILE
    decision_points: int = 1
    topology: str = "mesh"
    sync_interval_s: float = CANONICAL_SYNC_INTERVAL_S
    monitor_interval_s: float = 600.0
    strategy: DisseminationStrategy = DisseminationStrategy.USAGE_ONLY
    usla_aware: bool = False
    selector: str = "least_used"
    selector_spread: float = 0.85  # least-used herd-avoidance window

    # Client side.
    n_clients: int = 120
    timeout_s: float = CANONICAL_TIMEOUT_S
    interarrival_s: float = 1.0
    ramp_fraction: float = 0.5   # clients join over this fraction of the run
    one_phase: bool = False      # §7's broker/job-manager tight coupling
    client_assignment: str = "random"  # "random" (paper §4.3) | "nearest"

    # Environment.
    duration_s: float = 3600.0
    n_sites: int = 300
    total_cpus: int = 40000
    backfill: bool = False  # site schedulers: FIFO (default) or backfill
    n_vos: int = 10
    groups_per_vo: int = 10
    users_per_group: int = 3
    job_model: JobModel = field(default_factory=JobModel)

    # WAN.  ``lan=True`` swaps in sub-millisecond LAN latency and free
    # transfers (the paper: "we expect that performance will be
    # significantly better in a LAN environment").
    lan: bool = False
    wan_median_ms: float = 60.0
    wan_sigma: float = 0.6
    wan_loss_rate: float = 0.0   # per-message drop probability
    kb_transfer_s: float = 0.15
    site_state_kb: float = 0.06

    # Chaos (repro.faults): named fault scenario injected through the
    # DES clock ("" = no faults).  See repro.faults.scenarios.
    chaos_scenario: str = ""

    # Resilience (repro.resilience): client-side retry/backoff, circuit
    # breakers and probe-driven failover (None = the paper's
    # single-attempt timeout → random fallback).
    resilience: Optional[ResilienceConfig] = None

    # Bounded-queue load shedding at every decision point's container
    # (None = unbounded, the paper's behaviour).
    dp_queue_bound: Optional[int] = None

    # Control plane (repro.control): closed-loop decision-point
    # autoscaling with dynamic client placement (None = static fleet,
    # the paper's behaviour).  ``decision_points`` is the *initial*
    # fleet; the planner grows/shrinks it within the policy's bounds.
    autoscale: Optional["AutoscaleConfig"] = None
    # Named arrival profile (repro.workloads.profiles): "steady" is the
    # paper's fixed cadence; "diurnal"/"bursty" make demand move so the
    # autoscaler has something to track.
    workload_profile: str = "steady"

    # Scale plane.  ``fast_paths`` gates the result-preserving kernel
    # and state-view optimizations (heap compaction, pooled timeouts,
    # indexed view) — off reproduces the pre-optimization cost model
    # for A/B benchmarks and determinism proofs.  ``sync_delta`` ships
    # per-peer deltas instead of re-flooding the horizon; it changes
    # payload sizes (hence simulated timing), so it is a separate
    # opt-in rather than part of ``fast_paths``.
    fast_paths: bool = True
    sync_delta: bool = False
    # Decouple the state-view index from the other fast paths for
    # differential replay (indexed vs legacy view under identical
    # kernel behaviour).  None = follow ``fast_paths``.
    state_index: Optional[bool] = None
    # Event-batch dispatch: the kernel drains each timestamp as one
    # batch instead of re-peeking the heap per event.  Result-identical
    # to the scalar loop (``digruber diff --pair batch-dispatch``); a
    # separate flag so the equivalence stays independently testable.
    batch_dispatch: bool = True
    # Vectorized site scheduler: numpy FIFO drain prefix + bucketed
    # completion timers on deep queues.  Result-identical to the scalar
    # drain (``digruber diff --pair vectorized-sites``).
    vectorized_sites: bool = True

    # Correctness plane (repro.check).  The online invariant checker
    # rides the run as a periodic checkpoint pass — opt-in because it
    # costs per-checkpoint work; zero-cost when off (nothing is
    # constructed).  ``check_strict`` raises on the first violation
    # (tests); otherwise violations count + trace and the run finishes.
    check_enabled: bool = False
    check_interval_s: float = 30.0
    check_strict: bool = False

    # Observability (repro.obs).  Counters/histograms are always on;
    # the structured trace is opt-in because it costs per-event work.
    trace_enabled: bool = False
    trace_path: str = ""        # stream events to this JSONL file
    trace_capacity: int = 65536  # ring-buffer size when tracing
    # Causal span tracing (repro.obs.spans): per-job lifecycle spans,
    # decide-staleness annotations, sync-round propagation.  Setting a
    # path implies enabling; sampling keeps every Nth trace root.
    spans_enabled: bool = False
    spans_path: str = ""         # export spans to this JSONL file
    spans_sample: int = 1        # head sampling: record every Nth trace
    # Telemetry timeline (repro.obs.timeline): a DES-clock sampler
    # taking one MetricsRegistry.collect() pass per interval into a
    # bounded series.  Strictly read-only — telemetry-on runs are
    # event-identical to telemetry-off (``digruber diff --pair
    # telemetry``).  Setting a path implies enabling; ``serve``
    # flushes every row so ``digruber top`` can tail the live file.
    telemetry_enabled: bool = False
    telemetry_interval_s: float = 30.0
    telemetry_path: str = ""       # stream timeline rows to this JSONL file
    telemetry_capacity: int = 512  # bound on the in-memory series
    serve_telemetry: bool = False  # flush per row for live `digruber top`
    # Flight recorder (repro.obs.flight): bounded black box dumped on
    # crash / strict-check violation / SIGTERM.  Zero-cost while the
    # run is healthy (references only, nothing copied per event).
    flight_enabled: bool = False
    flight_path: str = ""          # "" = flight-<seed>.json

    # Checkpointing (repro.sim.snapshot): write a CRC-stamped snapshot
    # every ``checkpoint_every_s`` simulated seconds into
    # ``checkpoint_dir``.  Checkpoint callbacks are read-only and drawn
    # from no RNG stream, and both the reference and the resumed run
    # carry identical checkpoint scheduling, so checkpointing-on runs
    # are event-identical to checkpointing-off modulo the checkpoint
    # events themselves (``digruber diff --pair resume`` proves the
    # resume contract end to end).
    checkpoint_every_s: float = 0.0   # 0 = checkpointing off
    checkpoint_dir: str = ""

    # Reproducibility.
    seed: int = 20050101
    name: str = "experiment"
    # Job ids are dense per run starting at ``1 + jid_offset``.  The
    # sharded runtime gives every DP neighborhood a disjoint id block
    # so per-hood traces can be merged without collisions.
    jid_offset: int = 0

    def __post_init__(self):
        if self.decision_points < 1:
            raise ValueError("decision_points must be >= 1")
        if self.n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if not (0.0 < self.ramp_fraction <= 1.0):
            raise ValueError("ramp_fraction must be in (0, 1]")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        if self.client_assignment not in ("random", "nearest"):
            raise ValueError(
                f"unknown client_assignment {self.client_assignment!r}")
        if self.chaos_scenario:
            from repro.faults.scenarios import scenario_names
            if self.chaos_scenario not in scenario_names():
                raise ValueError(
                    f"unknown chaos scenario {self.chaos_scenario!r}; "
                    f"expected one of {scenario_names()}")
        if self.dp_queue_bound is not None and self.dp_queue_bound < 0:
            raise ValueError("dp_queue_bound must be >= 0 or None")
        if self.autoscale is not None:
            from repro.control.policy import AutoscaleConfig
            if not isinstance(self.autoscale, AutoscaleConfig):
                raise ValueError("autoscale must be an AutoscaleConfig")
        if self.workload_profile:
            from repro.workloads.profiles import arrival_profile
            arrival_profile(self.workload_profile)  # raises on unknown
        if self.spans_sample < 1:
            raise ValueError("spans_sample must be >= 1")
        if self.telemetry_interval_s <= 0:
            raise ValueError("telemetry_interval_s must be > 0")
        if self.telemetry_capacity < 1:
            raise ValueError("telemetry_capacity must be >= 1")
        if self.check_interval_s <= 0:
            raise ValueError("check_interval_s must be > 0")
        if self.jid_offset < 0:
            raise ValueError("jid_offset must be >= 0")
        if self.checkpoint_every_s < 0:
            raise ValueError("checkpoint_every_s must be >= 0")
        if self.checkpoint_every_s > 0 and not self.checkpoint_dir:
            raise ValueError(
                "checkpoint_every_s > 0 requires a checkpoint_dir")

    def with_(self, **overrides) -> "ExperimentConfig":
        """A modified copy (sweeps use this)."""
        return replace(self, **overrides)

    @property
    def ramp_span_s(self) -> float:
        return self.duration_s * self.ramp_fraction


def canonical_gt3(decision_points: int = 1, **overrides) -> ExperimentConfig:
    """The paper's GT3 DI-GRUBER environment (Figs 5-8, Table 1)."""
    cfg = ExperimentConfig(profile=GT3_PROFILE,
                           decision_points=decision_points,
                           n_clients=120,
                           name=f"gt3-{decision_points}dp")
    return cfg.with_(**overrides) if overrides else cfg


def canonical_gt4(decision_points: int = 1, **overrides) -> ExperimentConfig:
    """The paper's GT4 DI-GRUBER environment (Figs 9-12, Table 2).

    The GT4 test fleet is smaller (the paper notes a different client
    count, "close to [N] in this case"); 50 hosts reproduces the
    documented unsaturated-at-ten-DPs / saturated-at-three behaviour.
    """
    cfg = ExperimentConfig(profile=GT4_PROFILE,
                           decision_points=decision_points,
                           n_clients=50,
                           name=f"gt4-{decision_points}dp")
    return cfg.with_(**overrides) if overrides else cfg


def scale_config(multiplier: int = 1, decision_points: int = 3,
                 duration_s: float = 600.0, **overrides) -> ExperimentConfig:
    """A k×-grid configuration for the scale sweep.

    Scales the canonical GT3 environment by ``multiplier``: k× sites,
    k× CPUs, and k× submission hosts.  ``multiplier=10`` is the paper's
    headline question — a grid ten times Grid3/OSG.  Short default
    duration keeps a full sweep benchable.
    """
    if multiplier < 1:
        raise ValueError("multiplier must be >= 1")
    cfg = ExperimentConfig(
        profile=GT3_PROFILE,
        decision_points=decision_points,
        n_clients=120 * multiplier,
        duration_s=duration_s,
        n_sites=300 * multiplier,
        total_cpus=40000 * multiplier,
        name=f"scale-{multiplier}x-{decision_points}dp")
    return cfg.with_(**overrides) if overrides else cfg


def smoke_config(**overrides) -> ExperimentConfig:
    """A seconds-scale configuration for tests: small grid, short run."""
    cfg = ExperimentConfig(
        decision_points=1, n_clients=8, duration_s=300.0,
        n_sites=12, total_cpus=600, n_vos=2, groups_per_vo=2,
        users_per_group=2, monitor_interval_s=120.0, sync_interval_s=60.0,
        job_model=JobModel(duration_mean_s=120.0, min_duration_s=10.0),
        name="smoke")
    return cfg.with_(**overrides) if overrides else cfg


def chaos_smoke_config(scenario: str = "dp_crash_restart",
                       resilient: bool = True,
                       **overrides) -> ExperimentConfig:
    """A seconds-scale chaos run: small grid, injected faults.

    Two decision points so crash/partition scenarios leave somewhere to
    fail over to; ``resilient`` toggles the full policy stack (retry +
    breaker + failover + bounded queues) against the paper's
    timeout-only baseline.
    """
    cfg = smoke_config(
        decision_points=2, n_clients=10, duration_s=600.0,
        chaos_scenario=scenario,
        resilience=ResilienceConfig() if resilient else None,
        dp_queue_bound=50 if resilient else None,
        name=f"chaos-{scenario}-{'resilient' if resilient else 'baseline'}")
    return cfg.with_(**overrides) if overrides else cfg
