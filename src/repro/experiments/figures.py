"""Per-figure / per-table regeneration functions.

Each function runs the experiment(s) behind one paper artifact and
returns plain data (plus a formatted text rendering) — the benchmark
harness calls these and prints the paper-shaped output.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.decision_point import DecisionPoint
from repro.diperf.collector import DiPerfResult
from repro.diperf.tester import run_instance_creation_test
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.grid.builder import GridBuilder
from repro.metrics.report import format_table
from repro.net.container import ContainerProfile, GT3_PROFILE
from repro.net.latency import PairwiseWanLatency
from repro.net.transport import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry

__all__ = [
    "run_fig1_service_creation",
    "run_scalability_sweep",
    "run_accuracy_sweep",
    "table_overall_performance",
]


def run_fig1_service_creation(n_clients: int = 300,
                              duration_s: float = 1800.0,
                              profile: ContainerProfile = GT3_PROFILE,
                              seed: int = 7,
                              window_s: float = 60.0) -> DiPerfResult:
    """Fig 1: GT3 service instance creation under a DiPerF client ramp.

    Response time, throughput, and load vs time for the bare
    instance-creation operation against one container.
    """
    sim = Simulator()
    rng = RngRegistry(seed)
    network = Network(sim, PairwiseWanLatency(rng.stream("wan")),
                      kb_transfer_s=0.0)
    grid = GridBuilder(sim, rng.stream("grid")).uniform(n_sites=4,
                                                        cpus_per_site=16)
    dp = DecisionPoint(sim, network, "svc", grid, profile, rng.stream("dp"),
                       monitor_interval_s=600.0)
    dp.start(neighbors=[])
    trace, testers = run_instance_creation_test(
        sim, network, "svc", profile, rng, n_clients=n_clients,
        ramp_span_s=duration_s * 0.6, duration_s=duration_s)
    sim.run(until=duration_s)
    return DiPerfResult(
        name=f"fig1-{profile.name}-instance-creation", trace=trace,
        t_start=0.0, t_end=duration_s,
        client_starts=np.array([t.start_at for t in testers]),
        client_ends=np.array([duration_s] * len(testers)),
        window_s=window_s)


def run_scalability_sweep(base: ExperimentConfig,
                          dp_counts: Sequence[int] = (1, 3, 10)
                          ) -> dict[int, ExperimentResult]:
    """Figs 5-7 (GT3) / 9-11 (GT4): one run per decision-point count."""
    import re
    root = re.sub(r"-\d+dp$", "", base.name)
    results = {}
    for k in dp_counts:
        cfg = base.with_(decision_points=k, name=f"{root}-{k}dp")
        results[k] = run_experiment(cfg)
    return results


def run_accuracy_sweep(base: ExperimentConfig,
                       intervals_min: Sequence[float] = (1.0, 3.0, 10.0, 30.0),
                       decision_points: int = 3) -> dict[float, ExperimentResult]:
    """Figs 8 / 12: scheduling accuracy vs sync exchange interval."""
    results = {}
    for minutes in intervals_min:
        cfg = base.with_(decision_points=decision_points,
                         sync_interval_s=minutes * 60.0,
                         name=f"{base.name}-sync{minutes:g}min")
        results[minutes] = run_experiment(cfg)
    return results


_TABLE_HEADERS = ["DPs", "Category", "% of Req", "# of Req",
                  "QTime (s)", "Norm QTime", "Util %", "Accuracy %"]


def table_overall_performance(results: dict[int, ExperimentResult]) -> str:
    """Tables 1-2: QTime / Norm QTime / Util / Accuracy by category.

    ``results`` maps decision-point count to the finished run (reuse
    the scalability sweep's runs — the paper derives the tables from
    the same executions as the figures).
    """
    rows = []
    for category, label in (("handled", "Handled"),
                            ("not_handled", "NOT handled"),
                            ("all", "All req")):
        for k in sorted(results):
            r = results[k].table_row(category)
            rows.append([
                k, label,
                round(r["pct_req"], 1), r["n_req"],
                round(r["qtime_s"], 1), f"{r['norm_qtime']:.5f}",
                round(r["util_pct"], 1),
                (round(r["accuracy_pct"], 1)
                 if r["accuracy_pct"] == r["accuracy_pct"] else float("nan")),
            ])
    return format_table(_TABLE_HEADERS, rows,
                        title="Overall DI-GRUBER Performance", col_width=12)


def accuracy_vs_interval_table(results: dict[float, ExperimentResult]) -> str:
    """Render the Figs 8/12 series as a table (interval -> accuracy)."""
    rows = [[f"{m:g} min", round(100.0 * results[m].accuracy("handled"), 1)]
            for m in sorted(results)]
    return format_table(["Exchange Interval", "Accuracy %"], rows,
                        title="Scheduling Accuracy vs Exchange Interval",
                        col_width=18)
