"""Parallel experiment execution.

Parameter sweeps (scalability, accuracy-vs-interval, ablations) are
embarrassingly parallel: every run is an independent, deterministic
simulation.  This module fans a list of configurations out over worker
processes and returns compact, picklable :class:`RunSummary` objects —
the full :class:`~repro.experiments.runner.ExperimentResult` holds live
simulator state and never crosses process boundaries.

    from repro.experiments.parallel import run_parallel
    summaries = run_parallel([canonical_gt3(k) for k in (1, 3, 10)])

Summaries carry everything the figures/tables need (series, summary
stats, category rows) plus the raw query rows, so GRUB-SIM can replay
them (``summary.to_trace()``).
"""

from __future__ import annotations

import os
import zlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.metrics.report import SummaryStats
from repro.workloads.trace import TraceRecorder

__all__ = ["FailedCell", "RunSummary", "summarize", "summary_digest",
           "run_parallel"]


@dataclass(frozen=True)
class RunSummary:
    """Picklable digest of one finished experiment."""

    config: ExperimentConfig
    n_jobs: int
    table_rows: dict                      # category -> table_row dict
    response_stats: SummaryStats
    throughput_stats: SummaryStats
    load_series: tuple                    # (times, values) as ndarrays
    response_series: tuple
    throughput_series: tuple
    fallbacks: dict
    query_rows: list = field(repr=False)  # raw trace rows for replay

    # -- derived -----------------------------------------------------------
    @property
    def peak_throughput(self) -> float:
        return self.throughput_stats.peak

    @property
    def avg_response(self) -> float:
        return self.response_stats.average

    def accuracy(self, category: str = "handled") -> float:
        return self.table_rows[category]["accuracy_pct"] / 100.0

    def utilization(self, category: str = "all") -> float:
        return self.table_rows[category]["util_pct"] / 100.0

    def table_row(self, category: str) -> dict:
        """Duck-compatible with ExperimentResult for the table renderers."""
        return self.table_rows[category]

    def to_trace(self) -> TraceRecorder:
        """Rebuild the query trace (GRUB-SIM input) from raw rows."""
        rec = TraceRecorder()
        rec._queries = list(self.query_rows)
        return rec

    def figure_view(self) -> "_FigureView":
        """Duck-compatible with DiPerfResult for the figure renderers."""
        return _FigureView(self)


class _FigureView:
    """Adapter exposing the DiPerfResult plotting surface of a summary."""

    def __init__(self, summary: RunSummary):
        self._s = summary
        self.name = summary.config.name
        self.t_start = 0.0
        self.t_end = summary.config.duration_s
        times = summary.load_series[0]
        self.window_s = float(times[1] - times[0]) if len(times) > 1 else 60.0

    def load_series(self):
        return self._s.load_series

    def response_series(self):
        return self._s.response_series

    def throughput_series(self):
        return self._s.throughput_series

    def response_stats(self):
        return self._s.response_stats

    def throughput_stats(self):
        return self._s.throughput_stats

    def summary(self) -> str:
        from repro.metrics.report import SummaryStats, format_table
        rows = [
            ["Response Time (s)"] + [round(v, 2)
                                     for v in self._s.response_stats.row()],
            ["Throughput (q/s)"] + [round(v, 2)
                                    for v in self._s.throughput_stats.row()],
        ]
        body = format_table(["Series", *SummaryStats.HEADER], rows,
                            title=f"DiPerF: {self.name}", col_width=11)
        q = self._s.query_rows
        answered = sum(1 for row in q if row[1] == row[1])  # non-NaN
        timed_out = sum(1 for row in q if row[3])
        _, load = self._s.load_series
        peak_load = int(load.max()) if len(load) else 0
        return body + (f"\nqueries={len(q)} answered={answered} "
                       f"timed_out={timed_out} peak_load={peak_load}")


def summarize(result: ExperimentResult, window_s: float = 60.0) -> RunSummary:
    """Digest an in-process result into its picklable summary."""
    d = result.diperf(window_s=window_s)
    return RunSummary(
        config=result.config,
        n_jobs=result.n_jobs,
        table_rows={cat: result.table_row(cat)
                    for cat in ("handled", "not_handled", "all")},
        response_stats=d.response_stats(),
        throughput_stats=d.throughput_stats(),
        load_series=d.load_series(),
        response_series=d.response_series(),
        throughput_series=d.throughput_series(),
        fallbacks=result.client_fallbacks(),
        query_rows=list(result.trace._queries),
    )


def summary_digest(summary: RunSummary) -> str:
    """Stable content digest of a summary (worker-count independence).

    Covers everything semantically meaningful — job count, table rows,
    summary stats, every series sample, fallback tallies, and the raw
    query rows — via repr of plain floats/ints, which round-trips
    exactly, so two digests agree iff the runs produced bitwise-equal
    results regardless of which process computed them.
    """
    crc = 0

    def feed(text: str) -> None:
        nonlocal crc
        crc = zlib.crc32(text.encode(), crc)

    feed(f"{summary.config.name}|{summary.n_jobs}")
    for cat in sorted(summary.table_rows):
        row = summary.table_rows[cat]
        feed(cat + "|" + "|".join(f"{k}={row[k]!r}" for k in sorted(row)))
    feed("|".join(repr(v) for v in summary.response_stats.row()))
    feed("|".join(repr(v) for v in summary.throughput_stats.row()))
    for times, values in (summary.load_series, summary.response_series,
                          summary.throughput_series):
        feed("|".join(repr(float(t)) for t in times))
        feed("|".join(repr(float(v)) for v in values))
    feed("|".join(f"{k}={summary.fallbacks[k]!r}"
                  for k in sorted(summary.fallbacks)))
    for row in summary.query_rows:
        feed("|".join(repr(x) for x in row))
    return f"{crc:08x}"


def _worker(config: ExperimentConfig) -> RunSummary:
    return summarize(run_experiment(config))


@dataclass(frozen=True)
class FailedCell:
    """Placeholder for a sweep cell whose worker process died.

    Returned in the cell's slot so surviving results keep their input
    positions; sweeps that expect clean runs should check
    ``isinstance(result, FailedCell)`` before using a slot.
    """

    config: ExperimentConfig
    error: str

    def __bool__(self) -> bool:
        return False


def _run_pool(configs_by_slot: dict[int, ExperimentConfig], workers: int,
              results: dict[int, RunSummary],
              worker=_worker) -> dict[int, ExperimentConfig]:
    """One pool generation; returns the slots the pool lost.

    A worker that dies (OOM kill, segfault, interpreter exit) breaks
    the whole :class:`ProcessPoolExecutor`: every outstanding future
    fails with :class:`BrokenProcessPool`, including cells that never
    ran.  Completed futures keep their results, so only the broken
    remainder is handed back for the retry generation.
    """
    lost: dict[int, ExperimentConfig] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {slot: pool.submit(worker, cfg)
                   for slot, cfg in configs_by_slot.items()}
        for slot, future in futures.items():
            try:
                results[slot] = future.result()
            except BrokenProcessPool:
                lost[slot] = configs_by_slot[slot]
    return lost


def run_parallel(configs: Sequence[ExperimentConfig],
                 max_workers: Optional[int] = None,
                 worker=None) -> list:
    """Run every configuration, fanning out across processes.

    Results come back in input order.  ``max_workers`` defaults to
    ``min(len(configs), cpu_count)``; with one config (or one worker)
    everything runs in-process, which keeps small sweeps cheap and
    makes the parallel path a pure optimization (results are identical
    either way — the simulations are deterministic).

    A worker process dying no longer aborts the sweep: completed cells
    keep their summaries, the cells stranded in the broken pool are
    resubmitted once to a fresh pool, and anything that fails again is
    reported in place as a :class:`FailedCell` instead of raising away
    every finished result.

    ``worker`` must be a picklable (module-level) callable taking one
    config.  The campaign runner passes a checkpoint-aware worker here;
    because the *same* worker serves the retry generation, a retried
    cell resumes from its own newest valid checkpoint — atomic
    checkpoint writes guarantee a half-written file is skipped, never
    restored (see :func:`repro.sim.snapshot.newest_checkpoint`).
    """
    if not configs:
        return []
    if worker is None:
        worker = _worker  # resolved at call time, so tests can patch it
    workers = max_workers if max_workers is not None else \
        min(len(configs), os.cpu_count() or 1)
    if workers <= 1 or len(configs) == 1:
        return [worker(cfg) for cfg in configs]
    results: dict[int, RunSummary] = {}
    pending = dict(enumerate(configs))
    lost = _run_pool(pending, workers, results, worker=worker)
    if lost:
        # One retry, each lost cell in its *own* single-worker pool:
        # transient deaths (a stray OOM kill) recover, and a cell that
        # reliably kills its worker cannot break a shared retry pool
        # and strand innocent neighbors a second time.  A cell that
        # dies twice is reported as permanently failed.
        for slot, cfg in sorted(lost.items()):
            _run_pool({slot: cfg}, 1, results, worker=worker)
    out: list = []
    for slot, cfg in enumerate(configs):
        if slot in results:
            out.append(results[slot])
        else:
            out.append(FailedCell(
                config=cfg,
                error="worker process died (twice) running this cell"))
    return out
