"""Full-reproduction report generator.

``python -m repro.experiments.report [--duration 1800] [--out FILE]``
runs every paper artifact end to end and emits a markdown report of
paper-shape vs measured values — the executable companion to
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import TextIO

from repro.experiments.configs import canonical_gt3, canonical_gt4
from repro.experiments.parallel import FailedCell
from repro.experiments.figures import (
    accuracy_vs_interval_table,
    run_accuracy_sweep,
    run_fig1_service_creation,
    run_scalability_sweep,
    table_overall_performance,
)
from repro.grubsim import DPPerformanceModel, GrubSim
from repro.metrics.ascii_plot import render_diperf_figure
from repro.net.container import GT3_PROFILE, GT4_PROFILE

__all__ = ["generate_report", "main"]


def _fig_block(title: str, body: str) -> str:
    return f"\n## {title}\n\n```\n{body}\n```\n"


def _live(cells: dict) -> dict:
    """The surviving slots of a sweep dict (``FailedCell`` filtered out).

    ``run_parallel`` reports a dead worker cell in place as a
    :class:`FailedCell`; rendering must skip those slots — previously a
    failed cell flowed into ``figure_view()`` / ``to_trace()`` and the
    resulting ``AttributeError`` threw away every surviving cell's
    output.
    """
    return {k: r for k, r in cells.items() if not isinstance(r, FailedCell)}


def _failed_note(cell: FailedCell) -> str:
    return f"cell {cell.config.name!r} FAILED: {cell.error}"


def generate_report(duration_s: float = 1800.0, out: TextIO = sys.stdout,
                    intervals_min=(1.0, 3.0, 10.0, 30.0),
                    parallel: bool = False,
                    max_workers=None) -> dict:
    """Run everything; write markdown to ``out``; return raw results.

    ``parallel=True`` fans the 14 experiment runs out over worker
    processes (the simulations are deterministic, so the report is
    byte-identical either way).
    """
    results: dict = {}
    write = out.write

    write("# DI-GRUBER reproduction report\n")
    write(f"\n(simulated duration per run: {duration_s:.0f} s)\n")

    # Fig 1 (always in-process: it is not an ExperimentConfig run).
    fig1 = run_fig1_service_creation(duration_s=duration_s)
    results["fig1"] = fig1
    write(_fig_block("Fig 1 — GT3 service instance creation",
                     render_diperf_figure(fig1) + "\n" + fig1.summary()))

    dp_counts = (1, 3, 10)
    if parallel:
        from repro.experiments.parallel import run_parallel
        configs = (
            [canonical_gt3(k, duration_s=duration_s) for k in dp_counts]
            + [canonical_gt3(3, duration_s=duration_s,
                             sync_interval_s=m * 60.0,
                             name=f"gt3-sync{m:g}min") for m in intervals_min]
            + [canonical_gt4(k, duration_s=duration_s) for k in dp_counts]
            + [canonical_gt4(3, duration_s=duration_s,
                             sync_interval_s=m * 60.0,
                             name=f"gt4-sync{m:g}min") for m in intervals_min]
        )
        summaries = run_parallel(configs, max_workers=max_workers)
        n, m = len(dp_counts), len(intervals_min)
        gt3 = dict(zip(dp_counts, summaries[:n]))
        fig8 = dict(zip(intervals_min, summaries[n:n + m]))
        gt4 = dict(zip(dp_counts, summaries[n + m:2 * n + m]))
        fig12 = dict(zip(intervals_min, summaries[2 * n + m:]))

        def figview(r):
            return r.figure_view()

        def trace_of(r):
            return r.to_trace()
    else:
        gt3 = run_scalability_sweep(canonical_gt3(duration_s=duration_s),
                                    dp_counts=dp_counts)
        fig8 = run_accuracy_sweep(canonical_gt3(duration_s=duration_s),
                                  intervals_min=intervals_min,
                                  decision_points=3)
        gt4 = run_scalability_sweep(canonical_gt4(duration_s=duration_s),
                                    dp_counts=dp_counts)
        fig12 = run_accuracy_sweep(canonical_gt4(duration_s=duration_s),
                                   intervals_min=intervals_min,
                                   decision_points=3)

        def figview(r):
            return r.diperf()

        def trace_of(r):
            return r.trace

    results.update(gt3=gt3, fig8=fig8, gt4=gt4, fig12=fig12)

    gt3_live, fig8_live = _live(gt3), _live(fig8)
    gt4_live, fig12_live = _live(gt4), _live(fig12)
    failed = [(label, key, cell)
              for label, cells in (("gt3", gt3), ("fig8", fig8),
                                   ("gt4", gt4), ("fig12", fig12))
              for key, cell in sorted(cells.items())
              if isinstance(cell, FailedCell)]
    results["failed_cells"] = failed
    if failed:
        write("\n## Failed cells\n\n")
        write("The following sweep cells lost their worker process; "
              "their figures/tables are annotated below and every "
              "surviving cell is reported normally.\n\n")
        for label, key, cell in failed:
            write(f"- `{label}[{key:g}]` — {_failed_note(cell)}\n")

    for i, k in enumerate(sorted(gt3)):
        title = f"Fig {5 + i} — GT3 DI-GRUBER, {k} decision point(s)"
        if k in gt3_live:
            d = figview(gt3[k])
            write(_fig_block(title,
                             render_diperf_figure(d) + "\n" + d.summary()))
        else:
            write(_fig_block(title, _failed_note(gt3[k])))
    write(_fig_block("Table 1 — GT3 overall performance",
                     table_overall_performance(gt3_live) if gt3_live
                     else "every GT3 cell failed"))
    write(_fig_block("Fig 8 — GT3 accuracy vs exchange interval",
                     accuracy_vs_interval_table(fig8_live) if fig8_live
                     else "every GT3 sync-interval cell failed"))
    for i, k in enumerate(sorted(gt4)):
        title = f"Fig {9 + i} — GT4 DI-GRUBER, {k} decision point(s)"
        if k in gt4_live:
            d = figview(gt4[k])
            write(_fig_block(title,
                             render_diperf_figure(d) + "\n" + d.summary()))
        else:
            write(_fig_block(title, _failed_note(gt4[k])))
    write(_fig_block("Table 2 — GT4 overall performance",
                     table_overall_performance(gt4_live) if gt4_live
                     else "every GT4 cell failed"))
    write(_fig_block("Fig 12 — GT4 accuracy vs exchange interval",
                     accuracy_vs_interval_table(fig12_live) if fig12_live
                     else "every GT4 sync-interval cell failed"))

    # Table 3 (needs the 1-DP traces from both stacks).
    gt3_sized = gt4_sized = None
    if 1 in gt3_live and 1 in gt4_live:
        gt3_sized = GrubSim(
            DPPerformanceModel.from_profile(GT3_PROFILE)).replay(
            trace_of(gt3[1]), initial_dps=1, name="GT3-based")
        gt4_sized = GrubSim(
            DPPerformanceModel.from_profile(GT4_PROFILE)).replay(
            trace_of(gt4[1]), initial_dps=1, name="GT4-based")
        results["table3"] = (gt3_sized, gt4_sized)
        write(_fig_block("Table 3 — GRUB-SIM: required decision points",
                         gt3_sized.summary() + "\n" + gt4_sized.summary()))
    else:
        results["table3"] = None
        missing = [_failed_note(d[1]) for d in (gt3, gt4)
                   if isinstance(d.get(1), FailedCell)]
        write(_fig_block("Table 3 — GRUB-SIM: required decision points",
                         "skipped (1-DP trace unavailable): "
                         + "; ".join(missing)))

    # Headline comparison.  Every line degrades to "n/a" when the cell
    # it rests on failed, so a partial sweep still renders end to end.
    p3 = {k: figview(gt3[k]).throughput_stats().peak for k in gt3_live}
    p4 = {k: figview(gt4[k]).throughput_stats().peak for k in gt4_live}
    na = "n/a (cell failed)"
    write("\n## Headline shapes\n\n")
    write("| claim (paper prose) | measured |\n|---|---|\n")
    write(f"| GT3 1 DP plateaus just under ~2 q/s | "
          f"{f'{p3[1]:.2f} q/s' if 1 in p3 else na} |\n")
    write(f"| GT3 3 DPs: 'two to three times' | "
          f"{f'{p3[3] / p3[1]:.1f}x' if 1 in p3 and 3 in p3 else na} |\n")
    write(f"| GT3 10 DPs: 'almost five times' | "
          f"{f'{p3[10] / p3[1]:.1f}x' if 1 in p3 and 10 in p3 else na} |\n")
    write(f"| GT4 1 DP plateaus just above ~1 q/s | "
          f"{f'{p4[1]:.2f} q/s' if 1 in p4 else na} |\n")
    common = sorted(set(p3) & set(p4))
    write(f"| GT4 slower than GT3 | "
          f"{('yes' if all(p4[k] < p3[k] for k in common) else 'NO') if common else na} |\n")
    if fig8_live:
        sync_key = 3.0 if 3.0 in fig8_live else sorted(fig8_live)[0]
        write(f"| {sync_key:g}-minute sync suffices (GT3) | "
              f"{fig8_live[sync_key].accuracy('handled'):.1%} accuracy |\n")
    else:
        write(f"| 3-minute sync suffices (GT3) | {na} |\n")
    write(f"| '4 or 5 decision points are enough' | "
          + (f"GT3: {gt3_sized.final_dps}, GT4: {gt4_sized.final_dps}"
             if gt3_sized is not None else na) + " |\n")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate the DI-GRUBER reproduction report")
    parser.add_argument("--duration", type=float, default=1800.0,
                        help="simulated seconds per run (paper: 3600)")
    parser.add_argument("--out", type=str, default="-",
                        help="output file ('-' = stdout)")
    parser.add_argument("--parallel", "-j", nargs="?", type=int,
                        const=0, default=None, metavar="WORKERS",
                        help="fan runs out over worker processes "
                             "(default workers: cpu count)")
    args = parser.parse_args(argv)
    parallel = args.parallel is not None
    workers = args.parallel or None
    if args.out == "-":
        generate_report(duration_s=args.duration, parallel=parallel,
                        max_workers=workers)
    else:
        with open(args.out, "w") as fh:
            generate_report(duration_s=args.duration, out=fh,
                            parallel=parallel, max_workers=workers)
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
