"""End-to-end experiment execution.

``run_experiment`` builds the whole stack — WAN, grid, DI-GRUBER
deployment, ramped client fleet — runs one simulated experiment, and
returns an :class:`ExperimentResult` from which every figure series and
table row derives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.broker import DIGruberDeployment
from repro.core.client import GruberClient
from repro.core.selectors import make_selector
from repro.diperf.collector import DiPerfResult
from repro.diperf.ramp import RampSchedule
from repro.experiments.configs import ExperimentConfig
from repro.grid.builder import Grid, GridBuilder
from repro.metrics import defs as metric_defs
from repro.net.latency import LanLatency, PairwiseWanLatency
from repro.net.topology import assign_clients, assign_clients_nearest
from repro.net.transport import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.trace import TraceRecorder

__all__ = ["BuiltExperiment", "ExperimentResult", "abort_experiment",
           "build_experiment", "finalize_experiment", "run_experiment"]


@dataclass
class ExperimentResult:
    """Everything one run produced, with metric/table accessors."""

    config: ExperimentConfig
    trace: TraceRecorder
    client_starts: np.ndarray
    client_ends: np.ndarray
    grid: Grid
    deployment: DIGruberDeployment = field(repr=False)
    clients: list[GruberClient] = field(repr=False, default_factory=list)
    sim: Optional[Simulator] = field(default=None, repr=False)
    network: Optional[Network] = field(default=None, repr=False)
    injector: Optional[object] = field(default=None, repr=False)
    failover: Optional[object] = field(default=None, repr=False)
    checker: Optional[object] = field(default=None, repr=False)
    planner: Optional[object] = field(default=None, repr=False)
    sampler: Optional[object] = field(default=None, repr=False)
    _jobs: dict = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self):
        self._jobs = self.trace.job_arrays()

    # -- DiPerF view ----------------------------------------------------------
    def diperf(self, window_s: float = 60.0) -> DiPerfResult:
        return DiPerfResult(
            name=self.config.name, trace=self.trace,
            t_start=0.0, t_end=self.config.duration_s,
            client_starts=self.client_starts, client_ends=self.client_ends,
            window_s=window_s)

    # -- job categories (Tables 1-2 rows) ----------------------------------------
    def _mask(self, category: str) -> np.ndarray:
        """Job-category masks over *dispatched* jobs.

        "Requests" in Tables 1-2 are brokering operations the clients
        actually issued; jobs still waiting in host backlogs at the end
        of the run (or whose query was still in flight) never became
        requests and are excluded from every category.
        """
        handled = self._jobs["handled"]
        dispatched = ~np.isnan(self._jobs["dispatched_at"])
        if category == "handled":
            return handled & dispatched
        if category == "not_handled":
            return ~handled & dispatched
        if category == "all":
            return dispatched
        raise ValueError(f"unknown category {category!r}")

    @property
    def n_jobs(self) -> int:
        """Dispatched jobs (the paper's request population)."""
        return int(self._mask("all").sum())

    def n_requests(self, category: str = "all") -> int:
        return int(self._mask(category).sum())

    def qtime(self, category: str = "all") -> float:
        return metric_defs.qtime(self._jobs["queue_time_s"],
                                 self._mask(category))

    def normalized_qtime(self, category: str = "all") -> float:
        return metric_defs.normalized_qtime(
            self._jobs["queue_time_s"], self.n_requests(category),
            self._mask(category))

    def utilization(self, category: str = "all") -> float:
        return metric_defs.utilization(
            self._jobs["started_at"], self._jobs["completed_at"],
            self._jobs["cpus"], total_cpus=self.grid.total_cpus,
            t_end=self.config.duration_s, mask=self._mask(category))

    def accuracy(self, category: str = "handled") -> float:
        return metric_defs.accuracy(self._jobs["accuracy"],
                                    self._mask(category))

    def table_row(self, category: str) -> dict:
        """One Tables-1/2 row for a job category."""
        n = self.n_requests(category)
        row = {
            "category": category,
            "pct_req": 100.0 * n / self.n_jobs if self.n_jobs else 0.0,
            "n_req": n,
            "qtime_s": self.qtime(category),
            "norm_qtime": self.normalized_qtime(category),
            "util_pct": 100.0 * self.utilization(category),
            "accuracy_pct": (100.0 * self.accuracy(category)
                             if category != "not_handled" else float("nan")),
        }
        return row

    # -- observability ---------------------------------------------------------
    def obs_summary(self) -> str:
        """Counters, latency histograms, and trace tallies for this run."""
        from repro.metrics.report import render_obs_summary
        return render_obs_summary(
            self.sim.metrics if self.sim is not None else None,
            network_stats=self.network.stats if self.network is not None else None,
            tracer=self.sim.trace if self.sim is not None else None,
            spans=self.sim.spans if self.sim is not None else None,
            title=f"{self.config.name}: observability")

    def dropped_sync_chains(self) -> int:
        """Periodic-chain errors during the run (should be zero — the
        accuracy figures assume every sync/monitor tick fired)."""
        if self.sim is None:
            return 0
        return self.sim.metrics.counter_value("kernel.periodic_errors")

    # -- broker-side stats -----------------------------------------------------
    def dp_ops(self) -> dict[str, int]:
        return {dp_id: dp.container.completed_ops
                for dp_id, dp in self.deployment.decision_points.items()}

    def client_fallbacks(self) -> dict[str, int]:
        return {
            "handled": sum(c.n_handled for c in self.clients),
            "timeout": sum(c.n_fallback_timeout for c in self.clients),
            "backlogged": sum(c.backlog_len for c in self.clients),
        }

    def resilience_stats(self) -> dict[str, int]:
        """Policy-action tallies across the fleet (chaos benches)."""
        return {
            "retries": sum(c.n_retries for c in self.clients),
            "breaker_fastfail": sum(c.n_breaker_fastfail
                                    for c in self.clients),
            "failovers": sum(c.n_failovers for c in self.clients),
            "rebinds": sum(c.rebinds for c in self.clients),
            "shed": sum(dp.container.shed_ops
                        for dp in self.deployment.decision_points.values()),
            "dp_crashes": sum(dp.crashes
                              for dp in self.deployment.decision_points.values()),
            "dp_restarts": sum(dp.restarts
                               for dp in self.deployment.decision_points.values()),
            "resync_records": sum(
                dp.resync_records
                for dp in self.deployment.decision_points.values()),
            "faults_injected": (len(self.injector.applied)
                                if self.injector is not None else 0),
        }

    def control_stats(self) -> Optional[dict]:
        """Planner tallies for autoscaled runs (None when static)."""
        if self.planner is None:
            return None
        return self.planner.stats()

    def summary(self) -> str:
        d = self.diperf()
        fb = self.client_fallbacks()
        lines = [
            f"== {self.config.name}: {self.config.decision_points} decision "
            f"point(s), {self.config.n_clients} clients, "
            f"{self.config.duration_s:.0f} s ==",
            d.summary(),
            f"requests={self.n_jobs} handled={fb['handled']} "
            f"timeout-fallback={fb['timeout']} backlogged={fb['backlogged']}",
            f"util(all)={self.utilization('all'):.1%} "
            f"accuracy(handled)={self.accuracy('handled'):.1%} "
            f"qtime(all)={self.qtime('all'):.1f}s",
        ]
        cs = self.control_stats()
        if cs is not None:
            lines.append(
                f"autoscale[{cs['policy']}/{cs['placement']}]: "
                f"dps {self.config.decision_points}->{cs['final_dps']} "
                f"(converged {cs['converged_dps']}), "
                f"ups={cs['scale_ups']} downs={cs['scale_downs']} "
                f"rebalances={cs['rebalances']} "
                f"moved={cs['clients_moved']}")
        return "\n".join(lines)


@dataclass
class BuiltExperiment:
    """A fully constructed, started-but-not-run experiment.

    ``build_experiment`` returns one of these with every component
    started (deployment, failover, clients) and zero simulated seconds
    elapsed; the caller decides how the clock advances.  The plain
    runner calls ``sim.run(until=duration)`` once; the sharded runtime
    (:mod:`repro.sim.sharded`) advances many of these in lockstep epoch
    windows on a shared simulator.
    """

    config: ExperimentConfig
    sim: Simulator
    rng: RngRegistry
    network: Network
    grid: Grid
    deployment: DIGruberDeployment
    clients: list[GruberClient]
    hosts: list[str]
    offsets: dict
    trace: TraceRecorder
    injector: Optional[object] = None
    failover: Optional[object] = None
    checker: Optional[object] = None
    planner: Optional[object] = None
    trace_sink: Optional[object] = None
    sampler: Optional[object] = None
    flight: Optional[object] = None
    checkpointer: Optional[object] = None


def build_experiment(config: ExperimentConfig,
                     sim: Optional[Simulator] = None) -> BuiltExperiment:
    """Construct and start one experiment without running the clock.

    ``sim`` lets several experiments share one simulator (the sharded
    lockstep executor builds every neighborhood of a shard on the same
    event heap); sharing requires per-sim observability (trace/spans)
    to stay off in ``config``, which the sharded config derivation
    enforces.
    """
    if sim is None:
        sim = Simulator(fast=config.fast_paths,
                        batch_dispatch=config.batch_dispatch)
    rng = RngRegistry(config.seed)

    trace_sink = None
    if config.trace_enabled or config.trace_path:
        sim.trace.enabled = True
        sim.trace.set_capacity(config.trace_capacity)
        if config.trace_path:
            from repro.obs import JsonlSink
            trace_sink = JsonlSink(config.trace_path)
            sim.trace.add_sink(trace_sink)

    if config.spans_enabled or config.spans_path:
        sim.spans.enabled = True
        sim.spans.sample_every = config.spans_sample
        # Dedicated RNG stream: span IDs never perturb any other draw,
        # so a spans-on run replays a spans-off run event for event.
        sim.spans.seed_ids(rng.stream("spans"))

    loss_kw = ({"loss_rate": config.wan_loss_rate,
                "loss_rng": rng.stream("loss")}
               if config.wan_loss_rate > 0 else {})
    if config.lan:
        latency = LanLatency()
        network = Network(sim, latency, kb_transfer_s=0.0, **loss_kw)
    else:
        latency = PairwiseWanLatency(rng.stream("wan"),
                                     median_ms=config.wan_median_ms,
                                     sigma=config.wan_sigma)
        network = Network(sim, latency, kb_transfer_s=config.kb_transfer_s,
                          **loss_kw)

    grid = GridBuilder(sim, rng.stream("grid")).build(
        n_sites=config.n_sites, total_cpus=config.total_cpus,
        n_vos=config.n_vos, groups_per_vo=config.groups_per_vo,
        users_per_group=config.users_per_group, name=config.name,
        backfill=config.backfill, vectorized=config.vectorized_sites)

    deployment = DIGruberDeployment(
        sim=sim, network=network, grid=grid, profile=config.profile,
        rng=rng, n_decision_points=config.decision_points,
        topology_kind=config.topology,
        sync_interval_s=config.sync_interval_s,
        monitor_interval_s=config.monitor_interval_s,
        strategy=config.strategy, usla_aware=config.usla_aware,
        site_state_kb=config.site_state_kb,
        assumed_job_lifetime_s=config.job_model.duration_mean_s,
        dp_queue_bound=config.dp_queue_bound,
        sync_delta=config.sync_delta,
        state_index=(config.state_index if config.state_index is not None
                     else config.fast_paths))

    hosts = [f"host{i:03d}" for i in range(config.n_clients)]
    ramp = RampSchedule(n_clients=config.n_clients, span_s=config.ramp_span_s)
    offsets = ramp.offsets(hosts)
    if config.client_assignment == "nearest":
        assignment = assign_clients_nearest(hosts, deployment.dp_ids, latency)
    else:
        assignment = assign_clients(hosts, deployment.dp_ids,
                                    rng.stream("assignment"))

    generator = WorkloadGenerator(grid.vos, config.job_model,
                                  rng.stream("workload"))
    # "steady" stays on the exact legacy draw path (profile=None makes
    # zero extra RNG calls), so existing seeds reproduce bit-identically.
    profile = None
    if config.workload_profile and config.workload_profile != "steady":
        from repro.workloads.profiles import arrival_profile
        profile = arrival_profile(config.workload_profile)
    trace = TraceRecorder()
    state_kb = config.n_sites * config.site_state_kb

    failover = None
    if config.resilience is not None:
        from repro.resilience import FailoverManager
        failover = FailoverManager(sim, network, deployment,
                                   config.resilience)

    clients = []
    # Run-deterministic job ids, dense across the fleet; the offset
    # gives sharded neighborhoods disjoint id blocks.
    next_jid = 1 + config.jid_offset
    for host in hosts:
        workload = generator.host_workload(
            host, duration_s=config.duration_s - offsets[host],
            interarrival_s=config.interarrival_s, start_s=offsets[host],
            profile=profile)
        workload.jid_base = next_jid
        next_jid += len(workload)
        client = GruberClient(
            sim=sim, network=network, host_id=host,
            decision_point=assignment[host], grid=grid, workload=workload,
            selector=make_selector(config.selector,
                                   rng.stream(f"selector:{host}"),
                                   spread=config.selector_spread),
            profile=config.profile, rng=rng.stream(f"client:{host}"),
            trace=trace, timeout_s=config.timeout_s,
            state_response_kb=state_kb, one_phase=config.one_phase,
            resilience=config.resilience, failover=failover)
        deployment.attach_client(client)
        clients.append(client)

    injector = None
    if config.chaos_scenario:
        from repro.faults import FaultInjector
        from repro.faults.scenarios import build_scenario
        schedule = build_scenario(config.chaos_scenario,
                                  dp_ids=deployment.dp_ids, hosts=hosts,
                                  duration_s=config.duration_s)
        injector = FaultInjector(sim, network, schedule,
                                 rng.stream("faults"), deployment=deployment)
        injector.arm()

    planner = None
    if config.autoscale is not None:
        from repro.control import AutoscalePlanner
        planner = AutoscalePlanner(sim, deployment, config.autoscale,
                                   rng.stream("autoscale"))

    checker = None
    if config.check_enabled:
        from repro.check import InvariantChecker
        checker = InvariantChecker(sim, interval_s=config.check_interval_s,
                                   strict=config.check_strict)
        checker.watch_deployment(deployment)
        for site in grid.sites.values():
            checker.watch_site(site)
        for client in clients:
            checker.watch_client(client)
        if planner is not None:
            checker.watch_controller(planner)
        checker.install()

    sampler = None
    if (config.telemetry_enabled or config.telemetry_path
            or config.serve_telemetry):
        from repro.obs.timeline import TimelineSampler
        # With a planner present, its SignalBus is *the* control-plane
        # sampler; telemetry reads the gauges it publishes rather than
        # owning a second bus (one gauge computation per control tick).
        sampler = TimelineSampler(
            sim, interval_s=config.telemetry_interval_s,
            capacity=config.telemetry_capacity,
            deployment=deployment if planner is None else None,
            bus=planner.bus if planner is not None else None,
            grid=grid, path=config.telemetry_path,
            flush_rows=config.serve_telemetry,
            meta={"name": config.name, "seed": config.seed,
                  "duration_s": config.duration_s,
                  "decision_points": config.decision_points,
                  "n_clients": config.n_clients,
                  "n_sites": config.n_sites,
                  "total_cpus": config.total_cpus})
        sampler.start()

    deployment.start()
    if failover is not None:
        failover.start()
    if planner is not None:
        planner.start()
    for client in clients:
        client.start()

    built = BuiltExperiment(config=config, sim=sim, rng=rng, network=network,
                            grid=grid, deployment=deployment, clients=clients,
                            hosts=hosts, offsets=offsets, trace=trace,
                            injector=injector, failover=failover,
                            checker=checker, planner=planner,
                            trace_sink=trace_sink, sampler=sampler)
    if config.flight_enabled or config.flight_path:
        from repro.obs.flight import FlightRecorder
        built.flight = FlightRecorder(built, path=config.flight_path)
    if config.checkpoint_every_s > 0:
        # Last, so the first checkpoint tick's heap slot is pinned by
        # construction order — identical on fresh and restored runs.
        from repro.sim.snapshot import Checkpointer
        built.checkpointer = Checkpointer(built)
    return built


def finalize_experiment(built: BuiltExperiment) -> ExperimentResult:
    """Close out a run whose clock has reached ``config.duration_s``."""
    config, sim, trace = built.config, built.sim, built.trace
    clients, hosts, offsets = built.clients, built.hosts, built.offsets

    if built.checker is not None:
        # One final checkpoint at end-of-run state, after the last
        # scheduled check.
        built.checker.check()

    if built.sampler is not None:
        # Stops the periodic chain, records one last row at end-of-run
        # state, and flushes/closes the JSONL sink.
        built.sampler.close()

    if built.trace_sink is not None:
        # Detach before closing: generator finalizers can still spawn
        # (and trace) processes after the run window.
        sim.trace.remove_sink(built.trace_sink)
        built.trace_sink.close()

    if config.spans_path:
        # Spans still open here (suspended brokering generators, jobs
        # past the run window) export flagged as orphans.
        sim.spans.export_jsonl(config.spans_path)

    # Finalize: record every job's terminal (or end-of-run) state.
    for client in clients:
        for job in client.jobs:
            trace.record_job(job)

    client_starts = np.array([offsets[h] for h in hosts])
    client_ends = np.array([
        c.active_until if c.active_until is not None else config.duration_s
        for c in clients])

    return ExperimentResult(config=config, trace=trace,
                            client_starts=client_starts,
                            client_ends=client_ends, grid=built.grid,
                            deployment=built.deployment, clients=clients,
                            sim=sim, network=built.network,
                            injector=built.injector, failover=built.failover,
                            checker=built.checker, planner=built.planner,
                            sampler=built.sampler)


def abort_experiment(built: BuiltExperiment,
                     exc: BaseException) -> Optional[str]:
    """Best-effort teardown for a run that died mid-flight.

    Dumps the flight recorder (when armed), then closes the telemetry
    sampler and trace sink so their JSONL files end on whole lines —
    an aborted run must still leave valid, tail-able artifacts.  Never
    raises; returns the flight-dump path (or ``None``).
    """
    path = None
    if built.flight is not None:
        from repro.obs.flight import abort_reason
        path = built.flight.dump(reason=abort_reason(exc), exc=exc)
    if built.sampler is not None:
        try:
            built.sampler.close(final_sample=False)
        except Exception:  # pragma: no cover - teardown best-effort
            pass
    if built.trace_sink is not None:
        try:
            built.sim.trace.remove_sink(built.trace_sink)
        except ValueError:  # pragma: no cover - already detached
            pass
        built.trace_sink.close()
    return path


def run_experiment(config: ExperimentConfig,
                   deployment_hook=None) -> ExperimentResult:
    """Build and run one experiment to completion.

    ``deployment_hook(sim, deployment, detector_args...)`` — optional
    callable invoked after deployment construction and before the run;
    the dynamic-reconfiguration benches attach observers through it.

    Abnormal exits (crash, strict-check violation, SIGTERM-as-
    :class:`~repro.obs.flight.Terminated`, Ctrl-C) go through
    :func:`abort_experiment` — flight-recorder dump plus sink flushing
    — and then re-raise.
    """
    built = build_experiment(config)
    if deployment_hook is not None:
        deployment_hook(sim=built.sim, deployment=built.deployment,
                        network=built.network, grid=built.grid,
                        rng=built.rng)
    try:
        built.sim.run(until=config.duration_s)
    except BaseException as exc:
        abort_experiment(built, exc)
        raise
    return finalize_experiment(built)
