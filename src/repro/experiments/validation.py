"""Model-based validation of experiment results.

Predicts a run's equilibrium throughput and response time from its
configuration using the machine-repairman closed form (``repro.analysis``)
and compares against the measured outcome — the reproduction's numbers
are then theory-backed, not merely internally consistent.

The mapping from an :class:`ExperimentConfig` to the queueing model:

* each decision point is an M/M/1-ish station at the container's
  brokering rate ``1 / (query_service_s + report_service_s)``;
* its "machines" are the clients assigned to it (``n_clients / k`` on
  average), each with think time = everything a brokering operation
  spends *off* the container: client stack overhead, the protocol's
  WAN round trips, and the bulk state transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.queueing import QueueMetrics, machine_repairman
from repro.experiments.configs import ExperimentConfig

__all__ = ["EquilibriumPrediction", "predict_equilibrium", "validate_result"]


@dataclass(frozen=True)
class EquilibriumPrediction:
    """Theory-side numbers for one configuration at full ramp."""

    per_dp: QueueMetrics
    decision_points: int

    @property
    def throughput_qps(self) -> float:
        return self.per_dp.throughput * self.decision_points

    @property
    def response_s(self) -> float:
        """End-to-end operation time = station response + think."""
        return self.per_dp.response_s + self._think_s

    _think_s: float = 0.0


def _think_time_s(config: ExperimentConfig) -> float:
    """Mean off-container time per brokering operation."""
    wan_rtt = 0.0 if config.lan else 2.0 * config.wan_median_ms / 1000.0
    rtts = config.profile.query_rtts + 1  # protocol RTTs + the report RTT
    transfer = (0.0 if config.lan else
                config.kb_transfer_s * config.site_state_kb * config.n_sites)
    return config.profile.client_overhead_s + rtts * wan_rtt + transfer


def predict_equilibrium(config: ExperimentConfig) -> EquilibriumPrediction:
    """Machine-repairman prediction at full client participation."""
    think = _think_time_s(config)
    service_rate = config.profile.query_capacity_qps
    clients_per_dp = max(config.n_clients / config.decision_points, 1.0)
    per_dp = machine_repairman(
        n_clients=max(int(round(clients_per_dp)), 1),
        think_s=think, service_rate=service_rate, c=1)
    return EquilibriumPrediction(per_dp=per_dp,
                                 decision_points=config.decision_points,
                                 _think_s=think)


@dataclass(frozen=True)
class ValidationReport:
    """Measured vs predicted, with relative errors."""

    predicted_throughput: float
    measured_throughput: float
    predicted_response: float
    measured_response: float

    @property
    def throughput_error(self) -> float:
        return abs(self.measured_throughput - self.predicted_throughput) \
            / max(self.predicted_throughput, 1e-12)

    @property
    def response_error(self) -> float:
        return abs(self.measured_response - self.predicted_response) \
            / max(self.predicted_response, 1e-12)

    def summary(self) -> str:
        return (f"throughput: predicted {self.predicted_throughput:.2f} q/s, "
                f"measured {self.measured_throughput:.2f} "
                f"({self.throughput_error:.0%} off)\n"
                f"response:   predicted {self.predicted_response:.1f} s, "
                f"measured {self.measured_response:.1f} "
                f"({self.response_error:.0%} off)")


def validate_result(result) -> ValidationReport:
    """Compare a finished run's peak windows against the prediction.

    Peak-window throughput and peak windowed response are compared
    against the full-ramp equilibrium (the ramp's earlier windows run
    below it, so whole-run averages would be biased low).
    """
    prediction = predict_equilibrium(result.config)
    d = result.diperf()
    return ValidationReport(
        predicted_throughput=prediction.throughput_qps,
        measured_throughput=d.throughput_stats().peak,
        predicted_response=prediction.response_s,
        measured_response=d.response_stats().peak)
