"""``repro.faults`` — deterministic fault injection.

Three pieces:

* :mod:`repro.faults.netem` — the transport fault model: per-link and
  per-node loss, latency spikes, duplication/reordering, and cuts,
  consulted by :class:`repro.net.transport.Network` per message;
* :mod:`repro.faults.schedule` — typed fault events, validated
  schedules, and the :class:`FaultInjector` that arms them on the DES
  clock (including decision-point crash/restart and degraded-container
  profiles);
* :mod:`repro.faults.scenarios` — named, reproducible chaos scenarios
  (``dp_crash_restart``, ``partition2``, ``flaky_dp``, ...) keyed to a
  deployment's shape.

Pair with :mod:`repro.resilience` for the client-side policies these
faults prove out.
"""

from repro.faults.netem import Fate, LinkFault, TransportFaultModel
from repro.faults.schedule import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
)
from repro.faults.scenarios import SCENARIOS, build_scenario, scenario_names

__all__ = [
    "FAULT_KINDS",
    "Fate",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "LinkFault",
    "SCENARIOS",
    "TransportFaultModel",
    "build_scenario",
    "scenario_names",
]
