"""Per-link and per-node transport fault emulation.

The global ``Network.loss_rate`` models an independently-lossy WAN;
real outages are *structured* — one flapping PlanetLab path, one
overloaded node, one asymmetric cut.  :class:`TransportFaultModel` is
the structured layer: the transport consults it once per message (when
installed at all — ``Network.faults is None`` costs one attribute
check) and gets back a :class:`Fate` saying whether the message is
dropped and, per delivered copy, how much extra delay it suffers.

Rules compose:

* **link rules** key on the ordered ``(src, dst)`` pair, so a cut can
  be asymmetric (A hears B, B never hears A);
* **node rules** apply to every message touching the node — an
  isolated node (``cut=True``) is a network-level island, a flaky node
  (``loss``/``jitter_s``) models a degraded container host.

Duplication and reordering fall out of the same mechanism: a
``dup_rate`` delivers extra copies, and ``jitter_s`` adds a uniform
extra delay per copy, which lets later messages overtake earlier ones
on the simulated wire.

Determinism: all draws come from one dedicated RNG stream, and rules
are installed/removed by :class:`~repro.faults.schedule.FaultInjector`
at schedule-fixed instants, so identical seed + identical fault
schedule reproduces identical message fates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable, NamedTuple, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.transport import Message
    from repro.sim.kernel import Simulator

__all__ = ["LinkFault", "Fate", "TransportFaultModel", "CLEAN_FATE"]


class Fate(NamedTuple):
    """What happens to one message: dropped, or delivered in copies.

    ``extra_delays`` has one entry per delivered copy (normally one);
    each entry is added to the copy's sampled transport delay.
    """

    drop: bool
    extra_delays: tuple[float, ...]


CLEAN_FATE = Fate(False, (0.0,))
_DROPPED_FATE = Fate(True, ())


@dataclass(frozen=True)
class LinkFault:
    """One rule: how a link (or node) misbehaves while installed.

    ``cut`` drops everything; ``loss`` drops independently per message;
    ``extra_delay_s`` is a fixed latency penalty; ``jitter_s`` adds a
    uniform ``[0, jitter_s]`` draw per delivered copy (reordering);
    ``dup_rate`` is the per-message probability of one extra copy.
    """

    cut: bool = False
    loss: float = 0.0
    extra_delay_s: float = 0.0
    jitter_s: float = 0.0
    dup_rate: float = 0.0

    def __post_init__(self):
        if not (0.0 <= self.loss <= 1.0):
            raise ValueError(f"loss must be in [0, 1], got {self.loss}")
        if not (0.0 <= self.dup_rate <= 1.0):
            raise ValueError(f"dup_rate must be in [0, 1], got {self.dup_rate}")
        if self.extra_delay_s < 0 or self.jitter_s < 0:
            raise ValueError("delays must be >= 0")

    @property
    def is_noop(self) -> bool:
        return (not self.cut and self.loss == 0.0 and self.extra_delay_s == 0.0
                and self.jitter_s == 0.0 and self.dup_rate == 0.0)


class TransportFaultModel:
    """Rule table the transport consults per message.

    Installed on :attr:`repro.net.transport.Network.faults`; the
    :class:`~repro.faults.schedule.FaultInjector` mutates the rule
    table at scheduled instants.  Every drop/duplicate is counted in
    ``sim.metrics`` and traced (``fault.drop`` / ``fault.dup``).
    """

    def __init__(self, sim: "Simulator", rng):
        self.sim = sim
        self.rng = rng
        self._links: dict[tuple[Hashable, Hashable], LinkFault] = {}
        self._nodes: dict[Hashable, LinkFault] = {}
        # Tallies (also mirrored into sim.metrics counters).
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    # -- rule management -------------------------------------------------
    def set_link(self, a: Hashable, b: Hashable, fault: LinkFault,
                 symmetric: bool = True) -> None:
        """Install (or replace) the rule for ``a -> b`` (and ``b -> a``)."""
        if fault.is_noop:
            self.clear_link(a, b, symmetric=symmetric)
            return
        self._links[(a, b)] = fault
        if symmetric:
            self._links[(b, a)] = fault

    def clear_link(self, a: Hashable, b: Hashable,
                   symmetric: bool = True) -> None:
        self._links.pop((a, b), None)
        if symmetric:
            self._links.pop((b, a), None)

    def cut_link(self, a: Hashable, b: Hashable,
                 symmetric: bool = True) -> None:
        self.set_link(a, b, LinkFault(cut=True), symmetric=symmetric)

    def set_node(self, node: Hashable, fault: LinkFault) -> None:
        """Install (or replace) the rule for all traffic touching ``node``."""
        if fault.is_noop:
            self._nodes.pop(node, None)
            return
        self._nodes[node] = fault

    def isolate_node(self, node: Hashable) -> None:
        self.set_node(node, LinkFault(cut=True))

    def restore_node(self, node: Hashable) -> None:
        self._nodes.pop(node, None)

    def clear(self) -> None:
        self._links.clear()
        self._nodes.clear()

    @property
    def n_rules(self) -> int:
        return len(self._links) + len(self._nodes)

    def link_fault(self, a: Hashable, b: Hashable) -> Optional[LinkFault]:
        return self._links.get((a, b))

    def node_fault(self, node: Hashable) -> Optional[LinkFault]:
        return self._nodes.get(node)

    # -- the per-message consultation -------------------------------------
    def on_message(self, msg: "Message") -> Fate:
        """Decide one message's fate; counts and traces what it does."""
        rules = []
        rule = self._nodes.get(msg.src)
        if rule is not None:
            rules.append(rule)
        rule = self._nodes.get(msg.dst)
        if rule is not None:
            rules.append(rule)
        rule = self._links.get((msg.src, msg.dst))
        if rule is not None:
            rules.append(rule)
        if not rules:
            return CLEAN_FATE

        rng = self.rng
        for rule in rules:
            if rule.cut or (rule.loss > 0.0 and rng.random() < rule.loss):
                self.dropped += 1
                self.sim.metrics.counter("faults.msgs_dropped").inc()
                if self.sim.trace.enabled:
                    self.sim.trace.emit("fault.drop", node=msg.src,
                                        dst=str(msg.dst), op=msg.op,
                                        msg_kind=msg.kind,
                                        cut=rule.cut)
                return _DROPPED_FATE

        extra = 0.0
        copies = 1
        for rule in rules:
            extra += rule.extra_delay_s
            if rule.jitter_s > 0.0:
                extra += float(rng.uniform(0.0, rule.jitter_s))
            if rule.dup_rate > 0.0 and rng.random() < rule.dup_rate:
                copies += 1
        if copies == 1 and extra == 0.0:
            return CLEAN_FATE

        delays = [extra]
        for _ in range(copies - 1):
            # Each duplicate gets its own jitter draw so copies spread
            # out (and can arrive before the "original").
            dup_extra = extra
            for rule in rules:
                if rule.jitter_s > 0.0:
                    dup_extra += float(rng.uniform(0.0, rule.jitter_s))
            delays.append(dup_extra)
        if copies > 1:
            self.duplicated += copies - 1
            self.sim.metrics.counter("faults.msgs_duplicated").inc(copies - 1)
            if self.sim.trace.enabled:
                self.sim.trace.emit("fault.dup", node=msg.src,
                                    dst=str(msg.dst), op=msg.op, copies=copies)
        if extra > 0.0:
            self.delayed += 1
            self.sim.metrics.counter("faults.msgs_delayed").inc()
        return Fate(False, tuple(delays))


def degraded(fault: LinkFault, **overrides) -> LinkFault:
    """A modified copy of a rule (schedule builders compose with this)."""
    return replace(fault, **overrides)
