"""Named chaos scenarios: reusable fault schedules for a deployment.

Each builder maps a deployment's shape (decision-point ids, submission
hosts, run length) onto a :class:`~repro.faults.schedule.FaultSchedule`.
Scenarios are pure functions of their inputs — the same deployment
shape always yields the same schedule, which is what makes the chaos
benches reproducible.

The canonical windows: faults strike at ``T/3`` (after the DiPerF ramp
has brought most clients online) and heal at ``2T/3`` (leaving a third
of the run to observe recovery).
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.faults.schedule import FaultSchedule

__all__ = ["SCENARIOS", "build_scenario", "scenario_names"]


def _window(duration_s: float) -> tuple[float, float]:
    return duration_s / 3.0, 2.0 * duration_s / 3.0


def dp_crash_restart(dp_ids: Sequence[str], hosts: Sequence[Hashable],
                     duration_s: float) -> FaultSchedule:
    """First decision point crashes mid-run and later restarts.

    Between crash and restart its clients see pure silence; after the
    restart the broker re-syncs state from its overlay peers.
    """
    start, stop = _window(duration_s)
    return (FaultSchedule(name="dp_crash_restart")
            .add(start, "dp.crash", dp=dp_ids[0])
            .add(stop, "dp.restart", dp=dp_ids[0]))


def dp_crash(dp_ids: Sequence[str], hosts: Sequence[Hashable],
             duration_s: float) -> FaultSchedule:
    """Terminal crash (the paper's §2.2 failure mode): no restart."""
    start, _ = _window(duration_s)
    return (FaultSchedule(name="dp_crash")
            .add(start, "dp.crash", dp=dp_ids[0]))


def partition2(dp_ids: Sequence[str], hosts: Sequence[Hashable],
               duration_s: float) -> FaultSchedule:
    """Two-way mesh partition, later healed.

    Decision points and hosts are split alternately, so roughly half
    the hosts end up on the far side of the cut from the decision
    point they are bound to (static random assignment does not respect
    the partition — exactly the failure that makes failover matter).
    """
    start, stop = _window(duration_s)
    members = list(dp_ids) + list(hosts)
    islands = [members[0::2], members[1::2]]
    return (FaultSchedule(name="partition2")
            .add(start, "partition", islands=islands)
            .add(stop, "heal"))


def flaky_dp(dp_ids: Sequence[str], hosts: Sequence[Hashable],
             duration_s: float) -> FaultSchedule:
    """All traffic touching the first decision point turns lossy + jittery."""
    start, stop = _window(duration_s)
    return (FaultSchedule(name="flaky_dp")
            .add(start, "node.fault", node=dp_ids[0], loss=0.35, jitter_s=2.0)
            .add(stop, "node.restore", node=dp_ids[0]))


def slow_dp(dp_ids: Sequence[str], hosts: Sequence[Hashable],
            duration_s: float) -> FaultSchedule:
    """Degraded container: the first decision point runs 4x slower."""
    start, stop = _window(duration_s)
    return (FaultSchedule(name="slow_dp")
            .add(start, "node.degrade", dp=dp_ids[0], factor=4.0)
            .add(stop, "node.degrade", dp=dp_ids[0], factor=1.0))


def dup_reorder(dp_ids: Sequence[str], hosts: Sequence[Hashable],
                duration_s: float) -> FaultSchedule:
    """Duplication + reordering on the first decision point's links."""
    start, stop = _window(duration_s)
    return (FaultSchedule(name="dup_reorder")
            .add(start, "node.fault", node=dp_ids[0], dup_rate=0.25,
                 jitter_s=3.0)
            .add(stop, "node.restore", node=dp_ids[0]))


def sync_partition(dp_ids: Sequence[str], hosts: Sequence[Hashable],
                   duration_s: float) -> FaultSchedule:
    """Partition only the broker overlay (clients unaffected).

    The sync flood splits into islands whose views diverge; client
    traffic keeps flowing, so this isolates the accuracy cost of a
    sync-layer partition from the availability cost of a full one.
    """
    start, stop = _window(duration_s)
    islands = [list(dp_ids[0::2]), list(dp_ids[1::2])]
    return (FaultSchedule(name="sync_partition")
            .add(start, "partition", islands=islands)
            .add(stop, "heal"))


def asymmetric_cut(dp_ids: Sequence[str], hosts: Sequence[Hashable],
                   duration_s: float) -> FaultSchedule:
    """One-way cut between the first two decision points.

    dp1 still hears dp0's sync floods but dp0 never hears dp1 — the
    views drift apart asymmetrically (a classic WAN routing pathology).
    """
    start, stop = _window(duration_s)
    if len(dp_ids) < 2:
        raise ValueError("asymmetric_cut needs at least two decision points")
    return (FaultSchedule(name="asymmetric_cut")
            .add(start, "link.fault", a=dp_ids[1], b=dp_ids[0], cut=True,
                 symmetric=False)
            .add(stop, "link.restore", a=dp_ids[1], b=dp_ids[0],
                 symmetric=False))


SCENARIOS = {
    "dp_crash_restart": dp_crash_restart,
    "dp_crash": dp_crash,
    "partition2": partition2,
    "flaky_dp": flaky_dp,
    "slow_dp": slow_dp,
    "dup_reorder": dup_reorder,
    "sync_partition": sync_partition,
    "asymmetric_cut": asymmetric_cut,
}


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


def build_scenario(name: str, *, dp_ids: Sequence[str],
                   hosts: Sequence[Hashable],
                   duration_s: float) -> FaultSchedule:
    """Instantiate a named scenario for one deployment shape."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown chaos scenario {name!r}; "
                         f"known: {scenario_names()}") from None
    if not dp_ids:
        raise ValueError("need at least one decision point")
    if duration_s <= 0:
        raise ValueError("duration_s must be > 0")
    return builder(list(dp_ids), list(hosts), float(duration_s))
