"""Deterministic fault schedules and the injector that drives them.

A fault scenario is *data*: an ordered list of typed
:class:`FaultEvent` entries, each saying what goes wrong (or heals)
at which simulated instant.  The :class:`FaultInjector` arms every
event on the DES clock before the run starts, so two runs with the
same seed and the same schedule are bit-for-bit identical — failure
scenarios are first-class, reproducible inputs (the GridSim lesson),
not ad-hoc test hooks.

Event kinds
-----------
``link.fault`` / ``link.restore``
    Install / remove a :class:`~repro.faults.netem.LinkFault` on an
    (optionally asymmetric) endpoint pair: loss, latency spikes,
    duplication, or a full cut.
``node.fault`` / ``node.restore``
    Same, for every message touching one node (isolation = ``cut``).
``partition`` / ``heal``
    Split the listed islands at the transport: every cross-island
    ordered pair is cut (sync-layer islands follow automatically,
    since the flooding protocol rides the same wire).  ``heal``
    removes exactly the cuts the partition installed.
``dp.crash`` / ``dp.restart``
    Take a decision point down (requests unanswered, timers stopped) /
    bring it back with a fresh monitor sweep plus a state re-sync pull
    from its overlay peers.
``node.degrade``
    Scale a decision point's container service times by ``factor``
    (a slow node); ``factor=1.0`` restores full speed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Optional, TYPE_CHECKING

from repro.faults.netem import LinkFault, TransportFaultModel
from repro.net.topology import cross_pairs

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.broker import DIGruberDeployment
    from repro.net.transport import Network
    from repro.sim.kernel import Simulator

__all__ = ["FaultEvent", "FaultSchedule", "FaultInjector", "FAULT_KINDS"]

FAULT_KINDS = (
    "link.fault", "link.restore",
    "node.fault", "node.restore",
    "partition", "heal",
    "dp.crash", "dp.restart",
    "node.degrade",
)

_LINK_FAULT_PARAMS = ("cut", "loss", "extra_delay_s", "jitter_s", "dup_rate")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault (or repair) action."""

    at: float            # simulated seconds from run start
    kind: str            # one of FAULT_KINDS
    args: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.at < 0:
            raise ValueError(f"fault event time must be >= 0, got {self.at}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")

    def link_fault(self) -> LinkFault:
        """The :class:`LinkFault` described by this event's params."""
        return LinkFault(**{k: self.args[k] for k in _LINK_FAULT_PARAMS
                            if k in self.args})

    def to_dict(self) -> dict:
        return {"at": self.at, "kind": self.kind, **self.args}


class FaultSchedule:
    """An ordered, validated list of fault events.

    Events are stably sorted by time (ties keep insertion order), so a
    schedule is a deterministic input regardless of how it was built.
    """

    def __init__(self, events: Iterable[FaultEvent] = (), name: str = ""):
        self.name = name
        self.events: list[FaultEvent] = sorted(events, key=lambda e: e.at)

    def add(self, at: float, kind: str, **args) -> "FaultSchedule":
        """Append one event (chainable); keeps the schedule sorted."""
        self.events.append(FaultEvent(at=at, kind=kind, args=args))
        self.events.sort(key=lambda e: e.at)
        return self

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon_s(self) -> float:
        """Time of the last scheduled event."""
        return self.events[-1].at if self.events else 0.0

    # -- (de)serialization -------------------------------------------------
    @classmethod
    def from_dicts(cls, specs: Iterable[dict],
                   name: str = "") -> "FaultSchedule":
        events = []
        for spec in specs:
            spec = dict(spec)
            at = float(spec.pop("at"))
            kind = spec.pop("kind")
            events.append(FaultEvent(at=at, kind=kind, args=spec))
        return cls(events, name=name)

    def to_dicts(self) -> list[dict]:
        return [e.to_dict() for e in self.events]

    @classmethod
    def from_json(cls, text: str, name: str = "") -> "FaultSchedule":
        return cls.from_dicts(json.loads(text), name=name)

    def to_json(self) -> str:
        return json.dumps(self.to_dicts(), indent=2)


class FaultInjector:
    """Arms a :class:`FaultSchedule` against one running deployment.

    The injector owns the transport fault model (installing it on
    ``network.faults`` if absent), resolves decision-point targets via
    the deployment, and emits one ``fault.inject`` trace event plus
    ``faults.injected`` / per-kind counters for every applied event.
    """

    def __init__(self, sim: "Simulator", network: "Network",
                 schedule: FaultSchedule, rng,
                 deployment: Optional["DIGruberDeployment"] = None):
        self.sim = sim
        self.network = network
        self.schedule = schedule
        self.deployment = deployment
        if network.faults is None:
            network.faults = TransportFaultModel(sim, rng)
        self.model: TransportFaultModel = network.faults
        self.applied: list[FaultEvent] = []
        self._partition_cuts: list[tuple[Hashable, Hashable]] = []
        self._armed = False

    # -- lifecycle -------------------------------------------------------
    def arm(self) -> int:
        """Schedule every event on the DES clock; returns the count."""
        if self._armed:
            raise RuntimeError("fault schedule already armed")
        for event in self.schedule:
            self.sim.schedule_at(event.at,
                                 lambda e=event: self._apply(e))
        self._armed = True
        return len(self.schedule)

    # -- application -----------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        handler = getattr(self, "_apply_" + event.kind.replace(".", "_"))
        handler(event)
        self.applied.append(event)
        metrics = self.sim.metrics
        metrics.counter("faults.injected").inc()
        metrics.counter(f"faults.apply.{event.kind}").inc()
        if self.sim.trace.enabled:
            # Detail keys are namespaced ("fault_kind", "arg_node", ...)
            # so they can never collide with emit()'s own kind=/node=
            # parameters.
            self.sim.trace.emit("fault.inject", node="injector",
                                fault_kind=event.kind,
                                **{f"arg_{k}": _traceable(v)
                                   for k, v in event.args.items()})

    def _dp(self, dp_id: str):
        if self.deployment is None:
            raise RuntimeError(
                f"fault event targets decision point {dp_id!r} but the "
                "injector was built without a deployment")
        return self.deployment.dp(dp_id)

    def _apply_link_fault(self, event: FaultEvent) -> None:
        self.model.set_link(event.args["a"], event.args["b"],
                            event.link_fault(),
                            symmetric=event.args.get("symmetric", True))

    def _apply_link_restore(self, event: FaultEvent) -> None:
        self.model.clear_link(event.args["a"], event.args["b"],
                              symmetric=event.args.get("symmetric", True))

    def _apply_node_fault(self, event: FaultEvent) -> None:
        self.model.set_node(event.args["node"], event.link_fault())

    def _apply_node_restore(self, event: FaultEvent) -> None:
        self.model.restore_node(event.args["node"])

    def _apply_partition(self, event: FaultEvent) -> None:
        pairs = cross_pairs(event.args["islands"])
        for a, b in pairs:
            self.model.set_link(a, b, LinkFault(cut=True), symmetric=False)
        self._partition_cuts.extend(pairs)

    def _apply_heal(self, event: FaultEvent) -> None:
        for a, b in self._partition_cuts:
            self.model.clear_link(a, b, symmetric=False)
        self._partition_cuts.clear()

    def _apply_dp_crash(self, event: FaultEvent) -> None:
        self._dp(event.args["dp"]).crash()

    def _apply_dp_restart(self, event: FaultEvent) -> None:
        self._dp(event.args["dp"]).restart()

    def _apply_node_degrade(self, event: FaultEvent) -> None:
        self._dp(event.args["dp"]).container.set_degradation(
            float(event.args.get("factor", 1.0)))


def _traceable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
