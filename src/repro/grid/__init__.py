"""Emulated grid fabric: sites, clusters, CPUs, VOs, and jobs.

The paper emulates "an environment similar to OSG but ten times larger"
from Grid3 configuration settings.  This package provides the same:
:class:`~repro.grid.builder.GridBuilder` constructs a
:class:`~repro.grid.builder.Grid` of sites (each one or more clusters
of CPUs, with a FIFO local scheduler) and the VO/group/user hierarchy;
:class:`~repro.grid.job.Job` carries the paper's four-state lifecycle.
"""

from repro.grid.builder import Grid, GridBuilder
from repro.grid.job import Job, JobState
from repro.grid.site import Cluster, Site
from repro.grid.spep import SitePolicyEnforcementPoint
from repro.grid.storage import StorageAllocation, StorageManager, build_storage
from repro.grid.vo import Group, User, VirtualOrganization, VORegistry

__all__ = [
    "Cluster",
    "Grid",
    "GridBuilder",
    "Group",
    "Job",
    "JobState",
    "Site",
    "SitePolicyEnforcementPoint",
    "StorageAllocation",
    "StorageManager",
    "User",
    "VORegistry",
    "VirtualOrganization",
    "build_storage",
]
