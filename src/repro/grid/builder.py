"""Grid construction: Grid3-scale presets and the paper's 10x emulation.

Grid3/OSG at the time of the paper comprised on the order of 30 sites
and ~4500 CPUs; the paper's emulated environment is "approximately ten
times larger" — hundreds of sites representing tens of thousands of
nodes, "based on Grid3 configuration settings in terms of CPU counts,
network connectivity, etc."  Site sizes here follow a heavy-tailed
(lognormal) distribution normalized to the requested CPU total, which
matches the few-big-many-small shape of Grid3's published site list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.grid.site import Cluster, Site
from repro.grid.vo import VORegistry
from repro.sim.kernel import Simulator

__all__ = ["Grid", "GridBuilder"]


@dataclass
class Grid:
    """A built grid: sites plus the participating VO hierarchy.

    Maintains an incrementally-updated free-CPU vector (hooked into
    every site's start/complete callbacks) so per-dispatch ground-truth
    lookups — the Accuracy metric needs one per job — are O(sites) numpy
    reductions instead of Python attribute walks.
    """

    sites: dict[str, Site]
    vos: VORegistry
    name: str = "grid"
    _site_list: list[Site] = field(default_factory=list, repr=False)
    _site_index: dict[str, int] = field(default_factory=dict, repr=False)
    _free: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self):
        self._site_list = list(self.sites.values())
        self._site_index = {s.name: i for i, s in enumerate(self._site_list)}
        self._free = np.array([s.total_cpus for s in self._site_list],
                              dtype=np.int64)
        for site in self._site_list:
            site.on_job_started.append(self._on_job_started)
            site.on_job_completed.append(self._on_job_ended)

    def _on_job_started(self, job) -> None:
        self._free[self._site_index[job.site]] -= job.cpus

    def _on_job_ended(self, job) -> None:
        # Fires for completions and failures; only jobs that actually
        # started had consumed CPUs (dispatch-time rejections did not).
        if job.started_at is not None:
            self._free[self._site_index[job.site]] += job.cpus

    @property
    def site_names(self) -> list[str]:
        return list(self.sites)

    @property
    def total_cpus(self) -> int:
        return sum(s.total_cpus for s in self._site_list)

    @property
    def total_free_cpus(self) -> int:
        return sum(s.free_cpus for s in self._site_list)

    def site(self, name: str) -> Site:
        try:
            return self.sites[name]
        except KeyError:
            raise KeyError(f"unknown site {name!r}") from None

    def free_cpu_vector(self) -> np.ndarray:
        """Ground-truth free CPUs per site, in ``site_names`` order.

        Used by the Accuracy metric: SA_i compares the free capacity of
        the selected site against the best available site at the
        dispatch instant.
        """
        return self._free.copy()

    def max_free_cpus(self) -> int:
        """Ground-truth best free capacity across the grid (for SA_i)."""
        return int(self._free.max())

    def free_at(self, site: str) -> int:
        """Ground-truth free CPUs at one site (cached, O(1))."""
        return int(self._free[self._site_index[site]])

    def snapshot(self) -> dict[str, dict]:
        """Full monitoring snapshot (what a site monitor sweep returns)."""
        return {s.name: s.snapshot() for s in self._site_list}

    def __len__(self) -> int:
        return len(self.sites)


class GridBuilder:
    """Deterministic factory for emulated grids."""

    def __init__(self, sim: Simulator, rng: np.random.Generator):
        self.sim = sim
        self.rng = rng

    def build(self, n_sites: int, total_cpus: int, n_vos: int = 10,
              groups_per_vo: int = 10, users_per_group: int = 5,
              min_site_cpus: int = 8, name: str = "grid",
              size_sigma: float = 0.9, backfill: bool = False,
              vectorized: bool = True) -> Grid:
        """Construct a grid with heavy-tailed site sizes summing to target.

        Parameters mirror the paper's canonical environment; see
        :func:`grid3` and :func:`grid3_x10` for the presets.
        """
        if n_sites < 1:
            raise ValueError("need at least one site")
        if total_cpus < n_sites * min_site_cpus:
            raise ValueError(
                f"total_cpus={total_cpus} cannot give {n_sites} sites at "
                f">= {min_site_cpus} CPUs each")
        weights = self.rng.lognormal(0.0, size_sigma, size=n_sites)
        raw = weights / weights.sum() * (total_cpus - n_sites * min_site_cpus)
        cpu_counts = np.floor(raw).astype(np.int64) + min_site_cpus
        # Distribute the rounding remainder to the largest sites.
        shortfall = total_cpus - int(cpu_counts.sum())
        order = np.argsort(-cpu_counts)
        for i in range(shortfall):
            cpu_counts[order[i % n_sites]] += 1

        sites: dict[str, Site] = {}
        for i in range(n_sites):
            site_name = f"{name}-site{i:03d}"
            cpus = int(cpu_counts[i])
            # Split big sites into a few clusters (cosmetic fidelity to
            # the paper: "each site is composed of one or more clusters").
            n_clusters = 1 if cpus < 128 else int(self.rng.integers(1, 4))
            per = cpus // n_clusters
            clusters = [Cluster(f"{site_name}-c{j}", per) for j in range(n_clusters)]
            leftover = cpus - per * n_clusters
            if leftover:
                clusters[0] = Cluster(clusters[0].name, clusters[0].cpus + leftover)
            sites[site_name] = Site(self.sim, site_name, clusters,
                                    backfill=backfill, vectorized=vectorized)

        vos = VORegistry()
        for v in range(n_vos):
            vos.create(f"vo{v}", n_groups=groups_per_vo,
                       users_per_group=users_per_group)
        return Grid(sites=sites, vos=vos, name=name)

    def grid3(self, **overrides) -> Grid:
        """Grid3/OSG-scale preset: ~30 sites, ~4500 CPUs."""
        params = dict(n_sites=30, total_cpus=4500, name="grid3")
        params.update(overrides)
        return self.build(**params)

    def grid3_x10(self, **overrides) -> Grid:
        """The paper's emulated environment: ten times Grid3."""
        params = dict(n_sites=300, total_cpus=40000, name="grid3x10")
        params.update(overrides)
        return self.build(**params)

    def uniform(self, n_sites: int, cpus_per_site: int,
                name: str = "uniform", **overrides) -> Grid:
        """Equal-size sites — handy for analytically-checkable tests."""
        grid = self.build(n_sites=n_sites, total_cpus=n_sites * cpus_per_site,
                          min_site_cpus=cpus_per_site, size_sigma=0.0,
                          name=name, **overrides)
        return grid
