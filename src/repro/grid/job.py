"""Job lifecycle.

The paper's workload model: "jobs pass through four states: 1)
submitted by a user to a submission host; 2) submitted by a submission
host to a site, but queued or held; 3) running at a site; and 4)
completed."  Timestamps for each transition feed the five evaluation
metrics (Response is measured on the brokering query, QTime is
``started_at - dispatched_at``, Util integrates ``cpus * runtime``).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Job", "JobState"]

_job_ids = itertools.count(1)


class JobState(enum.Enum):
    """The four paper states (plus FAILED for fault-injection tests)."""

    CREATED = "created"          # at the submission host
    DISPATCHED = "dispatched"    # at a site, queued or held
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class Job:
    """A unit of work flowing through the brokering infrastructure."""

    vo: str
    group: str
    user: str
    cpus: int = 1
    duration_s: float = 600.0
    jid: int = field(default_factory=lambda: next(_job_ids))
    state: JobState = JobState.CREATED

    # Lifecycle timestamps (simulated seconds); None until reached.
    created_at: Optional[float] = None
    dispatched_at: Optional[float] = None
    started_at: Optional[float] = None
    completed_at: Optional[float] = None

    # Brokering annotations.
    site: Optional[str] = None
    submission_host: Optional[str] = None
    decision_point: Optional[str] = None
    handled_by_gruber: bool = False   # answered within the client timeout?
    query_response_s: Optional[float] = None  # brokering query response time
    scheduling_accuracy: Optional[float] = None  # SA_i at dispatch instant
    replans: int = 0                  # Euryale re-planning count
    #: Span context of the dispatch span (``(trace_id, span_id)``), set
    #: by the client when span tracing is on so the site can parent its
    #: queue span to the causal chain.  None when tracing is off or the
    #: trace was sampled out.
    trace_ctx: Optional[tuple] = None

    def __post_init__(self):
        if self.cpus < 1:
            raise ValueError(f"job needs >= 1 CPU, got {self.cpus}")
        if self.duration_s <= 0:
            raise ValueError(f"job duration must be > 0, got {self.duration_s}")

    # -- transitions --------------------------------------------------------
    def mark_created(self, now: float) -> None:
        self._expect(JobState.CREATED)
        self.created_at = now

    def mark_dispatched(self, now: float, site: str) -> None:
        self._expect(JobState.CREATED)
        self.state = JobState.DISPATCHED
        self.dispatched_at = now
        self.site = site

    def mark_running(self, now: float) -> None:
        self._expect(JobState.DISPATCHED)
        self.state = JobState.RUNNING
        self.started_at = now

    def mark_completed(self, now: float) -> None:
        self._expect(JobState.RUNNING)
        self.state = JobState.COMPLETED
        self.completed_at = now

    def mark_failed(self, now: float) -> None:
        if self.state in (JobState.COMPLETED, JobState.FAILED):
            raise ValueError(f"job {self.jid} already terminal ({self.state})")
        self.state = JobState.FAILED
        self.completed_at = now

    def reset_for_replan(self) -> None:
        """Return a failed job to CREATED for Euryale re-planning."""
        if self.state != JobState.FAILED:
            raise ValueError(f"only failed jobs can be re-planned, job {self.jid} "
                             f"is {self.state}")
        self.state = JobState.CREATED
        self.dispatched_at = None
        self.started_at = None
        self.completed_at = None
        self.site = None
        self.replans += 1

    def _expect(self, state: JobState) -> None:
        if self.state != state:
            raise ValueError(
                f"job {self.jid}: invalid transition from {self.state} "
                f"(expected {state})")

    # -- derived metrics ------------------------------------------------------
    @property
    def queue_time_s(self) -> Optional[float]:
        """QTime: dispatch-to-start delay (None until the job starts)."""
        if self.started_at is None or self.dispatched_at is None:
            return None
        return self.started_at - self.dispatched_at

    @property
    def execution_time_s(self) -> Optional[float]:
        if self.completed_at is None or self.started_at is None:
            return None
        return self.completed_at - self.started_at

    @property
    def cpu_seconds(self) -> Optional[float]:
        et = self.execution_time_s
        return None if et is None else et * self.cpus

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Job {self.jid} {self.vo}/{self.group} {self.state.value} "
                f"site={self.site}>")
