"""Sites: clusters of CPUs with a FIFO local scheduler.

Per the paper's experimental setup, site policy enforcement points
(S-PEPs) are out of scope — "the decision points have total control
over scheduling decisions" — so a site simply runs whatever it is sent,
FIFO, as CPUs free up.  Sites track per-VO usage and busy-CPU
integrals, which feed the Util metric and the decision points' monitor
views.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.grid.job import Job, JobState
from repro.sim.kernel import Simulator

__all__ = ["Cluster", "Site"]


@dataclass(frozen=True)
class Cluster:
    """A homogeneous pool of CPUs within a site."""

    name: str
    cpus: int

    def __post_init__(self):
        if self.cpus < 1:
            raise ValueError(f"cluster {self.name!r} needs >= 1 CPU")


class Site:
    """One resource-provider site.

    The default scheduler is strict FIFO with head-of-line blocking: a
    queued job that does not fit keeps later jobs waiting (matching
    simple space-shared cluster schedulers of the Grid3 era, where this
    is the conservative default).  ``backfill=True`` switches to an
    aggressive backfill discipline: any queued job that fits may start,
    in queue order (EASY-style without reservations — small jobs slip
    past a stuck wide job).
    """

    def __init__(self, sim: Simulator, name: str, clusters: list[Cluster],
                 backfill: bool = False):
        if not clusters:
            raise ValueError(f"site {name!r} needs at least one cluster")
        self.sim = sim
        self.name = name
        self.backfill = backfill
        self.clusters = list(clusters)
        self.total_cpus = sum(c.cpus for c in clusters)
        self.busy_cpus = 0
        self._queue: Deque[Job] = deque()
        self._running: dict[int, Job] = {}
        # Observers: called with the job on each transition.
        self.on_job_dispatched: list[Callable[[Job], None]] = []
        self.on_job_started: list[Callable[[Job], None]] = []
        self.on_job_completed: list[Callable[[Job], None]] = []
        # CPU-seconds integral for Util computations.
        self._busy_integral = 0.0
        self._last_change = 0.0
        # Cumulative per-VO CPU-seconds delivered (USLA verification input).
        self.vo_cpu_seconds: dict[str, float] = {}
        # Conservation ledger: every job counted in ``jobs_dispatched``
        # is, at any instant, exactly one of completed / failed /
        # running / queued.  Oversized submissions never enter the
        # ledger — they are rejected at the door (``jobs_rejected``).
        self.jobs_dispatched = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_rejected = 0

    # -- public API --------------------------------------------------------
    @property
    def free_cpus(self) -> int:
        return self.total_cpus - self.busy_cpus

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def running_jobs(self) -> int:
        return len(self._running)

    def submit(self, job: Job) -> None:
        """Receive a dispatched job; start it now or queue it FIFO."""
        if job.cpus > self.total_cpus:
            job.mark_dispatched(self.sim.now, self.name)
            self._fail(job)
            return
        job.mark_dispatched(self.sim.now, self.name)
        self.jobs_dispatched += 1
        for cb in self.on_job_dispatched:
            cb(job)
        self._queue.append(job)
        self._drain()

    def utilization(self, until: Optional[float] = None) -> float:
        """Time-averaged CPU utilization over ``[0, until]`` (default: now)."""
        until = self.sim.now if until is None else until
        if until <= 0.0:
            return 0.0
        integral = self._busy_integral + self.busy_cpus * (self.sim.now - self._last_change)
        return integral / (self.total_cpus * until)

    def snapshot(self) -> dict:
        """Monitoring view of this site (what a site monitor reports)."""
        return {
            "name": self.name,
            "total_cpus": self.total_cpus,
            "free_cpus": self.free_cpus,
            "queue_length": self.queue_length,
            "running_jobs": self.running_jobs,
        }

    # -- internals ------------------------------------------------------------
    def _advance_integral(self) -> None:
        now = self.sim.now
        self._busy_integral += self.busy_cpus * (now - self._last_change)
        self._last_change = now

    def _drain(self) -> None:
        if not self.backfill:
            while self._queue and self._queue[0].cpus <= self.free_cpus:
                job = self._queue.popleft()
                self._start(job)
            return
        # Backfill: one pass in queue order, starting whatever fits.
        # (One pass suffices: starting jobs only reduces free CPUs.)
        kept = deque()
        while self._queue:
            if self.free_cpus <= 0:
                kept.extend(self._queue)
                self._queue.clear()
                break
            job = self._queue.popleft()
            if job.cpus <= self.free_cpus:
                self._start(job)
            else:
                kept.append(job)
        self._queue.extend(kept)

    def _start(self, job: Job) -> None:
        self._advance_integral()
        self.busy_cpus += job.cpus
        now = self.sim.now
        job.mark_running(now)
        if job.dispatched_at is not None:
            # Per-VO queue-wait attribution (QTime, sliced by VO) —
            # always-on, like the other registry histograms.
            self.sim.metrics.histogram(
                "site.qwait_s." + job.vo).observe(now - job.dispatched_at)
            spans = self.sim.spans
            if spans.enabled and job.trace_ctx is not None:
                # Recorded retroactively: the wait is only known once
                # the job starts, so the span covers [dispatch, start].
                spans.record("queue", self.name, job.trace_ctx,
                             start=job.dispatched_at, end=now,
                             jid=job.jid, vo=job.vo)
        self._running[job.jid] = job
        for cb in self.on_job_started:
            cb(job)
        self.sim.schedule(job.duration_s,
                          lambda: self._complete(job, started=now))

    def _complete(self, job: Job, started: Optional[float] = None) -> None:
        if job.jid not in self._running:
            return
        if started is not None and job.started_at != started:
            # Stale timer from a preempted incarnation: the job was
            # failed and re-planned back onto this site, and the new
            # start scheduled its own completion.  Without this guard
            # the dead timer completed the new run early, truncating
            # its execution to the old deadline.
            return
        del self._running[job.jid]
        self._advance_integral()
        self.busy_cpus -= job.cpus
        job.mark_completed(self.sim.now)
        self.jobs_completed += 1
        self.vo_cpu_seconds[job.vo] = (self.vo_cpu_seconds.get(job.vo, 0.0)
                                       + job.cpu_seconds)
        for cb in self.on_job_completed:
            cb(job)
        self._drain()

    def _fail(self, job: Job) -> None:
        job.mark_failed(self.sim.now)
        self.jobs_rejected += 1
        for cb in self.on_job_completed:
            cb(job)

    def fail_running_job(self, jid: int) -> Job:
        """Fault injection: kill a running job (Euryale replanning tests)."""
        job = self._running.pop(jid, None)
        if job is None:
            raise KeyError(f"job {jid} is not running at site {self.name!r}")
        self._advance_integral()
        self.busy_cpus -= job.cpus
        job.mark_failed(self.sim.now)
        self.jobs_failed += 1
        # The job held CPUs from start to preemption; credit the partial
        # run to its VO or the busy integral no longer decomposes into
        # delivered CPU-seconds (the invariant checker's site.cpu_seconds
        # rule caught exactly this omission).
        self.vo_cpu_seconds[job.vo] = (self.vo_cpu_seconds.get(job.vo, 0.0)
                                       + job.cpu_seconds)
        for cb in self.on_job_completed:
            cb(job)
        self._drain()
        return job

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Site {self.name} cpus={self.busy_cpus}/{self.total_cpus} "
                f"queue={self.queue_length}>")
