"""Sites: clusters of CPUs with a FIFO local scheduler.

Per the paper's experimental setup, site policy enforcement points
(S-PEPs) are out of scope — "the decision points have total control
over scheduling decisions" — so a site simply runs whatever it is sent,
FIFO, as CPUs free up.  Sites track per-VO usage and busy-CPU
integrals, which feed the Util metric and the decision points' monitor
views.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import Callable, Deque, Optional

import numpy as np

from repro.grid.job import Job, JobState
from repro.sim.kernel import Simulator

#: Below this queue depth the vectorized drain falls back to the scalar
#: loop: numpy call overhead beats the per-job bookkeeping it saves on
#: short queues.  Both paths compute the same FIFO prefix, so the
#: threshold is a pure performance knob (results are bit-identical).
_VECTORIZE_MIN_QUEUE = 16

__all__ = ["Cluster", "Site"]


@dataclass(frozen=True)
class Cluster:
    """A homogeneous pool of CPUs within a site."""

    name: str
    cpus: int

    def __post_init__(self):
        if self.cpus < 1:
            raise ValueError(f"cluster {self.name!r} needs >= 1 CPU")


class Site:
    """One resource-provider site.

    The default scheduler is strict FIFO with head-of-line blocking: a
    queued job that does not fit keeps later jobs waiting (matching
    simple space-shared cluster schedulers of the Grid3 era, where this
    is the conservative default).  ``backfill=True`` switches to an
    aggressive backfill discipline: any queued job that fits may start,
    in queue order (EASY-style without reservations — small jobs slip
    past a stuck wide job).

    ``vectorized=True`` (default) computes the FIFO drain prefix in one
    numpy cumsum/searchsorted pass when the queue is deep, and batches
    completion timers per (site, completion-time) bucket so a wave of
    equal-duration jobs started at the same instant shares one heap
    entry.  Both are result-preserving — the prefix is exactly the set
    the scalar while-loop would start, and bucketed completions run
    each job through the same per-job path in the same order — proven
    by ``digruber diff --pair vectorized-sites``.  Backfill is
    sequential-dependent (each start changes what fits next for the
    jobs it skipped), so it always uses the scalar pass.
    """

    def __init__(self, sim: Simulator, name: str, clusters: list[Cluster],
                 backfill: bool = False, vectorized: bool = True):
        if not clusters:
            raise ValueError(f"site {name!r} needs at least one cluster")
        self.sim = sim
        self.name = name
        self.backfill = backfill
        self.vectorized = vectorized
        self.clusters = list(clusters)
        self.total_cpus = sum(c.cpus for c in clusters)
        self.busy_cpus = 0
        self._queue: Deque[Job] = deque()
        self._running: dict[int, Job] = {}
        # Observers: called with the job on each transition.
        self.on_job_dispatched: list[Callable[[Job], None]] = []
        self.on_job_started: list[Callable[[Job], None]] = []
        self.on_job_completed: list[Callable[[Job], None]] = []
        # CPU-seconds integral for Util computations.
        self._busy_integral = 0.0
        self._last_change = 0.0
        # Cumulative per-VO CPU-seconds delivered (USLA verification input).
        self.vo_cpu_seconds: dict[str, float] = {}
        # Conservation ledger: every job counted in ``jobs_dispatched``
        # is, at any instant, exactly one of completed / failed /
        # running / queued.  Oversized submissions never enter the
        # ledger — they are rejected at the door (``jobs_rejected``).
        self.jobs_dispatched = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_rejected = 0
        #: Drains served by the numpy prefix pass (tests/benches use
        #: this to prove the vectorized path actually engaged).
        self.vector_drains = 0

    # -- public API --------------------------------------------------------
    @property
    def free_cpus(self) -> int:
        return self.total_cpus - self.busy_cpus

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def running_jobs(self) -> int:
        return len(self._running)

    def submit(self, job: Job) -> None:
        """Receive a dispatched job; start it now or queue it FIFO."""
        if job.cpus > self.total_cpus:
            job.mark_dispatched(self.sim.now, self.name)
            self._fail(job)
            return
        job.mark_dispatched(self.sim.now, self.name)
        self.jobs_dispatched += 1
        for cb in self.on_job_dispatched:
            cb(job)
        self._queue.append(job)
        self._drain()

    def utilization(self, until: Optional[float] = None) -> float:
        """Time-averaged CPU utilization over ``[0, until]`` (default: now).

        The live tail segment (busy CPUs since the last state change)
        is clamped to ``until``: asking for utilization over a window
        that ends before ``now`` must not credit busy time accrued
        after the window.  The query never mutates the integral, so
        repeated queries at one timestamp agree exactly.  Exact for any
        ``until >= _last_change``; an ``until`` inside committed
        history is answered with the full committed integral (the
        per-segment history needed to subdivide it is not kept), capped
        at 1.0 — a site can never have delivered more than its
        capacity, where the unclamped tail used to report exactly that.
        """
        until = self.sim.now if until is None else until
        if until <= 0.0:
            return 0.0
        integral = self._busy_integral
        tail = min(self.sim.now, until) - self._last_change
        if tail > 0.0:
            integral += self.busy_cpus * tail
        util = integral / (self.total_cpus * until)
        return util if util < 1.0 else 1.0

    def snapshot(self) -> dict:
        """Monitoring view of this site (what a site monitor reports)."""
        return {
            "name": self.name,
            "total_cpus": self.total_cpus,
            "free_cpus": self.free_cpus,
            "queue_length": self.queue_length,
            "running_jobs": self.running_jobs,
        }

    def snapshot_state(self) -> dict:
        """Canonical site state for snapshot digests (JSON-able).

        Captures the FIFO queue (in order), the busy ledger, the
        in-flight job set (completion timers live in the kernel heap,
        which the kernel's own capture covers), and the conservation
        counters.
        """
        return {
            "name": self.name,
            "busy_cpus": self.busy_cpus,
            "queue": [[j.jid, j.cpus] for j in self._queue],
            "running": sorted(self._running),
            "busy_integral": self._busy_integral,
            "last_change": self._last_change,
            "vo_cpu_seconds": sorted(self.vo_cpu_seconds.items()),
            "jobs_dispatched": self.jobs_dispatched,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "jobs_rejected": self.jobs_rejected,
        }

    # -- internals ------------------------------------------------------------
    def _advance_integral(self) -> None:
        now = self.sim.now
        self._busy_integral += self.busy_cpus * (now - self._last_change)
        self._last_change = now

    def _drain(self) -> None:
        if not self.backfill:
            if self.vectorized and len(self._queue) >= _VECTORIZE_MIN_QUEUE:
                self._drain_vectorized()
                return
            while self._queue and self._queue[0].cpus <= self.free_cpus:
                job = self._queue.popleft()
                self._start(job)
            return
        # Backfill: one pass in queue order, starting whatever fits.
        # (One pass suffices: starting jobs only reduces free CPUs.)
        kept = deque()
        while self._queue:
            if self.free_cpus <= 0:
                kept.extend(self._queue)
                self._queue.clear()
                break
            job = self._queue.popleft()
            if job.cpus <= self.free_cpus:
                self._start(job)
            else:
                kept.append(job)
        self._queue.extend(kept)

    def _drain_vectorized(self) -> None:
        """Start the FIFO drain prefix in one cumsum/searchsorted pass.

        Head-of-line FIFO starts the longest queue prefix whose total
        CPU demand fits the free CPUs — exactly what the scalar
        while-loop computes one job at a time.  Each job needs at least
        one CPU, so only the first ``free_cpus`` queue entries can ever
        be part of the prefix; the scan is bounded by that, not by the
        queue depth.
        """
        q = self._queue
        free = self.free_cpus
        if not q or q[0].cpus > free:
            return
        n = len(q) if len(q) < free else free
        cpus = np.fromiter((job.cpus for job in islice(q, n)),
                           dtype=np.int64, count=n)
        take = int(np.searchsorted(np.cumsum(cpus), free, side="right"))
        if take == 0:  # pragma: no cover - head-fits guard above
            return
        self.vector_drains += 1
        batch = [q.popleft() for _ in range(take)]
        self._start_batch(batch)

    def _start(self, job: Job) -> None:
        self._advance_integral()
        now = self.sim.now
        self._start_body(job, now)
        self.sim.schedule(job.duration_s,
                          lambda: self._complete(job, started=now))

    def _start_batch(self, jobs: list[Job]) -> None:
        """Start a drain prefix with completion timers bucketed by time.

        Jobs from one drain wave that complete at the same instant
        share a single heap entry; the bucket's timer is scheduled when
        its first member starts, so it holds the seq slot that member's
        scalar timer would have held, and members complete in start
        (= queue) order — the scalar pop order for equal-time timers.
        Completion itself stays per-job (:meth:`_complete`), including
        the re-drain after each job, so downstream effects interleave
        exactly as in the scalar path.
        """
        self._advance_integral()
        now = self.sim.now
        schedule = self.sim.schedule
        buckets: dict[float, list[Job]] = {}
        for job in jobs:
            self._start_body(job, now)
            group = buckets.get(job.duration_s)
            if group is None:
                group = buckets[job.duration_s] = [job]
                schedule(job.duration_s,
                         lambda g=group: self._complete_batch(g, started=now))
            else:
                group.append(job)

    def _start_body(self, job: Job, now: float) -> None:
        self.busy_cpus += job.cpus
        job.mark_running(now)
        if job.dispatched_at is not None:
            # Per-VO queue-wait attribution (QTime, sliced by VO) —
            # always-on, like the other registry histograms.
            self.sim.metrics.histogram(
                "site.qwait_s." + job.vo).observe(now - job.dispatched_at)
            spans = self.sim.spans
            if spans.enabled and job.trace_ctx is not None:
                # Recorded retroactively: the wait is only known once
                # the job starts, so the span covers [dispatch, start].
                spans.record("queue", self.name, job.trace_ctx,
                             start=job.dispatched_at, end=now,
                             jid=job.jid, vo=job.vo)
        self._running[job.jid] = job
        for cb in self.on_job_started:
            cb(job)

    def _complete_batch(self, jobs: list[Job], started: float) -> None:
        for job in jobs:
            self._complete(job, started=started)

    def _complete(self, job: Job, started: Optional[float] = None) -> None:
        if job.jid not in self._running:
            return
        if started is not None and job.started_at != started:
            # Stale timer from a preempted incarnation: the job was
            # failed and re-planned back onto this site, and the new
            # start scheduled its own completion.  Without this guard
            # the dead timer completed the new run early, truncating
            # its execution to the old deadline.
            return
        del self._running[job.jid]
        self._advance_integral()
        self.busy_cpus -= job.cpus
        job.mark_completed(self.sim.now)
        self.jobs_completed += 1
        self.vo_cpu_seconds[job.vo] = (self.vo_cpu_seconds.get(job.vo, 0.0)
                                       + job.cpu_seconds)
        for cb in self.on_job_completed:
            cb(job)
        self._drain()

    def _fail(self, job: Job) -> None:
        job.mark_failed(self.sim.now)
        self.jobs_rejected += 1
        for cb in self.on_job_completed:
            cb(job)

    def fail_running_job(self, jid: int) -> Job:
        """Fault injection: kill a running job (Euryale replanning tests)."""
        job = self._running.pop(jid, None)
        if job is None:
            raise KeyError(f"job {jid} is not running at site {self.name!r}")
        self._advance_integral()
        self.busy_cpus -= job.cpus
        job.mark_failed(self.sim.now)
        self.jobs_failed += 1
        # The job held CPUs from start to preemption; credit the partial
        # run to its VO or the busy integral no longer decomposes into
        # delivered CPU-seconds (the invariant checker's site.cpu_seconds
        # rule caught exactly this omission).
        self.vo_cpu_seconds[job.vo] = (self.vo_cpu_seconds.get(job.vo, 0.0)
                                       + job.cpu_seconds)
        for cb in self.on_job_completed:
            cb(job)
        self._drain()
        return job

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Site {self.name} cpus={self.busy_cpus}/{self.total_cpus} "
                f"queue={self.queue_length}>")
