"""Site policy enforcement points (S-PEPs).

"Site policy enforcement points (S-PEPs) reside at all sites and
enforce site-specific policies."  The paper's experiments excluded them
("we did not take S-PEPs into consideration as they were outside our
scope, and assumed the decision points have total control"), but they
are part of the GRUBER model — so they are implemented here and
exercised by the enforcement and fairness benches: with an S-PEP
attached, a site holds jobs of consumers (VOs, and recursively
VO groups) that are over their *site-level* USLA share and releases
them as the share frees up.

An S-PEP wraps a site's scheduler decision: before a queued job is
started, the S-PEP checks the owning consumers' current shares of the
site's CPUs against the site's policy engine.  Held jobs do not block
later jobs of compliant consumers (the S-PEP inspects the whole queue,
relaxing the plain site's FIFO head-of-line discipline — enforcement
requires reordering by definition).

Implementation notes: enforcement sits on the hot path of every job
completion, so the S-PEP keeps incremental per-consumer busy counters
(updated via the site's start/complete callbacks) and caches each
consumer's effective cap from the (static) policy — one drain pass is
O(queue) with O(1) per-job checks.  A single pass suffices because
starting a job only *tightens* both constraints (free CPUs and shares),
so no job skipped earlier in the pass can become eligible later in it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.grid.job import Job
from repro.grid.site import Site
from repro.usla.policy import PolicyEngine

__all__ = ["SitePolicyEnforcementPoint"]


def _consumers(job: Job) -> tuple[str, ...]:
    if job.group:
        return (job.vo, f"{job.vo}.{job.group}")
    return (job.vo,)


class SitePolicyEnforcementPoint:
    """USLA enforcement at one site.

    Parameters
    ----------
    site:
        The site to govern; the S-PEP interposes on the site's
        ``_drain`` step (composition by interception — the site itself
        stays policy-free, as in the paper's layering).
    policy:
        Site-local policy engine; rules with ``provider == site.name``
        govern admission, both for VOs and for ``vo.group`` consumers.
        Consumers without rules run opportunistically.
    """

    def __init__(self, site: Site, policy: PolicyEngine):
        self.site = site
        self.policy = policy
        self.holds = 0          # start attempts vetoed
        self.releases = 0       # jobs started after having been held
        self._held_jids: set[int] = set()
        # Incremental busy CPUs per consumer (vo and vo.group).
        self._busy: dict[str, int] = {}
        # Effective cap fraction per consumer, resolved from the policy
        # once (None = no applicable rule = opportunistic).
        self._cap_cache: dict[str, Optional[float]] = {}
        self._original_drain = site._drain
        site._drain = self._enforcing_drain  # type: ignore[method-assign]
        site.on_job_started.append(self._on_started)
        site.on_job_completed.append(self._on_ended)

    # -- incremental accounting ---------------------------------------------
    def _on_started(self, job: Job) -> None:
        for c in _consumers(job):
            self._busy[c] = self._busy.get(c, 0) + job.cpus

    def _on_ended(self, job: Job) -> None:
        if job.started_at is None:
            return  # dispatch-time rejection: never consumed CPUs
        for c in _consumers(job):
            self._busy[c] = self._busy.get(c, 0) - job.cpus

    def _cap(self, consumer: str) -> Optional[float]:
        if consumer not in self._cap_cache:
            decision = self.policy.check_admission(
                self.site.name, consumer, usage_fraction=0.0)
            rule = decision.binding_rule
            self._cap_cache[consumer] = rule.fraction if rule else None
        return self._cap_cache[consumer]

    # -- policy check ------------------------------------------------------------
    def vo_share(self, vo: str, group: str = "") -> float:
        """A consumer's current share of this site's CPUs (running jobs)."""
        consumer = f"{vo}.{group}" if group else vo
        return self._busy.get(consumer, 0) / self.site.total_cpus

    def admits(self, job: Job) -> bool:
        """Check the job against VO-level and group-level site rules."""
        total = self.site.total_cpus
        for consumer in _consumers(job):
            cap = self._cap(consumer)
            if cap is None:
                continue
            if self._busy.get(consumer, 0) + job.cpus > cap * total + 1e-9:
                return False
        return True

    # -- enforcing scheduler --------------------------------------------------------
    def _enforcing_drain(self) -> None:
        """Start every queued job that fits *and* is within its shares."""
        site = self.site
        queue = site._queue
        if not queue:
            return
        kept: Deque[Job] = deque()
        while queue:
            if site.free_cpus <= 0:
                kept.extend(queue)
                queue.clear()
                break
            job = queue.popleft()
            if job.cpus <= site.free_cpus and self.admits(job):
                if job.jid in self._held_jids:
                    self._held_jids.discard(job.jid)
                    self.releases += 1
                site._start(job)
            else:
                if not self.admits(job) and job.jid not in self._held_jids:
                    self._held_jids.add(job.jid)
                    self.holds += 1
                kept.append(job)
        queue.extend(kept)

    def detach(self) -> None:
        """Remove enforcement, restoring the site's plain FIFO drain."""
        self.site._drain = self._original_drain  # type: ignore[method-assign]
        self.site.on_job_started.remove(self._on_started)
        self.site.on_job_completed.remove(self._on_ended)

    @property
    def held_jobs(self) -> int:
        """Queued jobs currently vetoed by policy."""
        return sum(1 for job in self.site._queue
                   if job.jid in self._held_jids)
