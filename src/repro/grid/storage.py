"""Site storage: the second resource class USLAs allocate.

"Allocations are made for processor time, permanent storage, or network
bandwidth resources" (§3.3).  A :class:`StorageManager` tracks the
permanent-storage pool of one site, with per-VO accounting so storage
USLAs (``storage|site:vo=25%+``) can be enforced and verified exactly
like CPU shares.  The Euryale planner charges staged input files and
registered outputs against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.usla.fairshare import ResourceType
from repro.usla.policy import PolicyEngine

__all__ = ["StorageAllocation", "StorageManager"]


@dataclass(frozen=True)
class StorageAllocation:
    """One accepted reservation of site storage."""

    site: str
    vo: str
    lfn: str
    size_gb: float


@dataclass
class StorageManager:
    """Permanent-storage pool of one site with per-VO accounting."""

    site: str
    capacity_gb: float
    policy: Optional[PolicyEngine] = None
    _used_gb: float = 0.0
    _by_vo: dict = field(default_factory=dict)
    _allocations: dict = field(default_factory=dict)  # lfn -> allocation
    denials: int = 0

    def __post_init__(self):
        if self.capacity_gb <= 0:
            raise ValueError("capacity_gb must be > 0")

    # -- queries --------------------------------------------------------
    @property
    def used_gb(self) -> float:
        return self._used_gb

    @property
    def free_gb(self) -> float:
        return self.capacity_gb - self._used_gb

    def vo_used_gb(self, vo: str) -> float:
        return self._by_vo.get(vo, 0.0)

    def vo_fraction(self, vo: str) -> float:
        return self.vo_used_gb(vo) / self.capacity_gb

    def holds(self, lfn: str) -> bool:
        return lfn in self._allocations

    # -- allocation ------------------------------------------------------
    def can_allocate(self, vo: str, size_gb: float) -> bool:
        """Capacity + storage-USLA admission check."""
        if size_gb < 0:
            raise ValueError("size_gb must be >= 0")
        if size_gb > self.free_gb:
            return False
        if self.policy is None:
            return True
        decision = self.policy.check_admission(
            self.site, vo,
            usage_fraction=self.vo_fraction(vo),
            request_fraction=size_gb / self.capacity_gb,
            resource=ResourceType.STORAGE)
        return decision.allowed

    def allocate(self, vo: str, lfn: str, size_gb: float
                 ) -> Optional[StorageAllocation]:
        """Reserve space for a file; returns None (and counts a denial)
        when capacity or the VO's storage share forbids it.

        Allocating an lfn already held at this site is a no-op returning
        the existing allocation (replicas are stored once per site).
        """
        existing = self._allocations.get(lfn)
        if existing is not None:
            return existing
        if not self.can_allocate(vo, size_gb):
            self.denials += 1
            return None
        alloc = StorageAllocation(site=self.site, vo=vo, lfn=lfn,
                                  size_gb=size_gb)
        self._allocations[lfn] = alloc
        self._used_gb += size_gb
        self._by_vo[vo] = self._by_vo.get(vo, 0.0) + size_gb
        return alloc

    def release(self, lfn: str) -> None:
        """Free a file's space (replica deletion / cleanup)."""
        alloc = self._allocations.pop(lfn, None)
        if alloc is None:
            return
        self._used_gb -= alloc.size_gb
        self._by_vo[alloc.vo] = self._by_vo.get(alloc.vo, 0.0) - alloc.size_gb

    def usage_snapshot(self) -> dict[str, float]:
        """Per-VO used fractions (USLA verification input)."""
        return {vo: used / self.capacity_gb
                for vo, used in self._by_vo.items() if used > 0}


def build_storage(grid, gb_per_cpu: float = 2.0,
                  policy: Optional[PolicyEngine] = None
                  ) -> dict[str, StorageManager]:
    """Storage pools for every site of a grid, sized by CPU count.

    Grid3-era sites provisioned disk roughly proportionally to compute;
    ``gb_per_cpu`` sets that ratio.  A shared ``policy`` carries the
    storage USLAs (rules with ``resource == STORAGE``).
    """
    if gb_per_cpu <= 0:
        raise ValueError("gb_per_cpu must be > 0")
    return {site.name: StorageManager(site=site.name,
                                      capacity_gb=site.total_cpus * gb_per_cpu,
                                      policy=policy)
            for site in grid.sites.values()}
