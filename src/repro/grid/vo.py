"""Virtual organizations, groups, and users.

The USLA model assigns resources at two levels: "to a VO, by a resource
owner, and to a VO user or group, by a VO" — so the entity hierarchy is
provider → VO → group → user, and it is recursive by design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["User", "Group", "VirtualOrganization", "VORegistry"]


@dataclass(frozen=True)
class User:
    """An individual investigator submitting work under a group."""

    name: str
    group: str
    vo: str


@dataclass
class Group:
    """A VO group (e.g. a physics analysis team within an experiment)."""

    name: str
    vo: str
    users: list[User] = field(default_factory=list)

    def add_user(self, name: str) -> User:
        user = User(name=name, group=self.name, vo=self.vo)
        self.users.append(user)
        return user


@dataclass
class VirtualOrganization:
    """A VO: a collaboration spanning institutions, owning USLA shares."""

    name: str
    groups: dict[str, Group] = field(default_factory=dict)

    def add_group(self, name: str) -> Group:
        if name in self.groups:
            raise ValueError(f"group {name!r} already exists in VO {self.name!r}")
        group = Group(name=name, vo=self.name)
        self.groups[name] = group
        return group

    @property
    def users(self) -> list[User]:
        return [u for g in self.groups.values() for u in g.users]


class VORegistry:
    """All VOs participating in a grid, with lookup helpers."""

    def __init__(self) -> None:
        self._vos: dict[str, VirtualOrganization] = {}

    def add(self, vo: VirtualOrganization) -> VirtualOrganization:
        if vo.name in self._vos:
            raise ValueError(f"VO {vo.name!r} already registered")
        self._vos[vo.name] = vo
        return vo

    def create(self, name: str, n_groups: int = 0, users_per_group: int = 0
               ) -> VirtualOrganization:
        """Create and register a VO with ``n_groups`` uniform groups."""
        vo = self.add(VirtualOrganization(name=name))
        for g in range(n_groups):
            group = vo.add_group(f"{name}-g{g}")
            for u in range(users_per_group):
                group.add_user(f"{name}-g{g}-u{u}")
        return vo

    def get(self, name: str) -> VirtualOrganization:
        try:
            return self._vos[name]
        except KeyError:
            raise KeyError(f"unknown VO {name!r}") from None

    @property
    def names(self) -> list[str]:
        return list(self._vos)

    def __len__(self) -> int:
        return len(self._vos)

    def __iter__(self):
        return iter(self._vos.values())

    def __contains__(self, name: str) -> bool:
        return name in self._vos
