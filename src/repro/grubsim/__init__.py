"""GRUB-SIM: trace-driven decision-point sizing (paper §5).

"GRUB-SIM took the traces from the tests presented in the previous
section, and attempted to identify the saturation points and the
optimum number of decision points needed. ... GRUB-SIM automatically
traces the Response metric and all overload events, and simulates new
decision points on the fly."
"""

from repro.grubsim.model import DPPerformanceModel
from repro.grubsim.simulator import GrubSim, GrubSimResult, OverloadEvent

__all__ = ["DPPerformanceModel", "GrubSim", "GrubSimResult", "OverloadEvent"]
