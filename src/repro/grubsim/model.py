"""Per-decision-point performance model.

"We use performance models created by DiPerF to establish an upper
bound on the number of transactions that a decision point can handle
per time interval."  The model carries that calibrated upper bound plus
the response-time expectations needed to translate client counts into
query demand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.container import ContainerProfile

__all__ = ["DPPerformanceModel"]


@dataclass(frozen=True)
class DPPerformanceModel:
    """Calibrated capacity/latency model of one decision point.

    Attributes
    ----------
    capacity_qps:
        DiPerF-measured saturation throughput of one decision point
        (full brokering operations per second).
    unloaded_response_s:
        End-to-end query response when unqueued (WAN + stack + service).
    target_response_s:
        The "adequate Response" bar GRUB-SIM sizes for; the natural
        choice is the client timeout — responses beyond it produce
        random placements, i.e. the service has effectively failed the
        request.
    headroom:
        Fraction of nominal capacity considered safely usable (running
        a queueing system at 100% is saturation by definition).
    """

    capacity_qps: float
    unloaded_response_s: float
    target_response_s: float = 15.0
    headroom: float = 0.85

    def __post_init__(self):
        if self.capacity_qps <= 0:
            raise ValueError("capacity_qps must be > 0")
        if self.unloaded_response_s <= 0:
            raise ValueError("unloaded_response_s must be > 0")
        if not (0.0 < self.headroom <= 1.0):
            raise ValueError("headroom must be in (0, 1]")

    @property
    def usable_qps(self) -> float:
        return self.capacity_qps * self.headroom

    def demand_qps(self, active_clients: int) -> float:
        """Query demand of N serialized clients given adequate response.

        Each submission host keeps one query in flight, so a fleet
        offered adequate service issues ``N / response`` queries per
        second, with response bounded below by the unloaded cost.
        """
        if active_clients < 0:
            raise ValueError("active_clients must be >= 0")
        effective_response = max(self.unloaded_response_s,
                                 self.target_response_s)
        return active_clients / effective_response

    def required_dps(self, active_clients: int) -> int:
        """Decision points needed to serve N clients adequately."""
        demand = self.demand_qps(active_clients)
        if demand == 0.0:
            return 1
        import math
        return max(1, math.ceil(demand / self.usable_qps))

    @staticmethod
    def from_profile(profile: ContainerProfile, wan_rtt_s: float = 0.12,
                     state_transfer_s: float = 2.7,
                     target_response_s: float = 15.0,
                     headroom: float = 0.85) -> "DPPerformanceModel":
        """Build the model from a container profile + WAN constants.

        This mirrors how the paper built its models from DiPerF fits;
        the constants are the same calibration inputs the experiment
        configs use (see EXPERIMENTS.md).
        """
        unloaded = (profile.client_overhead_s
                    + profile.query_rtts * wan_rtt_s
                    + state_transfer_s
                    + profile.query_service_s + profile.report_service_s)
        return DPPerformanceModel(capacity_qps=profile.query_capacity_qps,
                                  unloaded_response_s=unloaded,
                                  target_response_s=target_response_s,
                                  headroom=headroom)
