"""The GRUB-SIM replay engine.

Replays a recorded query trace window by window: reconstructs the
active-client curve, converts it into query demand via the calibrated
per-decision-point model, flags every window whose demand exceeds the
deployed capacity (an *overload event*), and adds decision points on
the fly until the demand is served at the target response — producing
the Table 3 answer: how many decision points this grid actually needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grubsim.model import DPPerformanceModel
from repro.metrics.report import format_table
from repro.workloads.trace import TraceRecorder

__all__ = ["OverloadEvent", "GrubSimResult", "GrubSim"]


@dataclass(frozen=True)
class OverloadEvent:
    """One window in which the deployed decision points were saturated."""

    time: float
    active_clients: int
    demand_qps: float
    deployed_dps: int
    required_dps: int


@dataclass
class GrubSimResult:
    """Outcome of one replay."""

    name: str
    initial_dps: int
    final_dps: int
    overloads: list[OverloadEvent] = field(default_factory=list)
    required_series: list[tuple[float, int]] = field(default_factory=list)

    @property
    def additional_dps(self) -> int:
        return self.final_dps - self.initial_dps

    @property
    def peak_required(self) -> int:
        return max((k for _, k in self.required_series), default=self.initial_dps)

    def summary(self) -> str:
        rows = [[self.name, self.initial_dps, self.additional_dps,
                 self.final_dps, len(self.overloads)]]
        return format_table(
            ["Trace", "Initial DPs", "Additional DPs", "Total DPs",
             "Overload Events"],
            rows, title="GRUB-SIM: required decision points", col_width=16)


class GrubSim:
    """Window-by-window trace replay with on-the-fly DP provisioning."""

    def __init__(self, model: DPPerformanceModel, window_s: float = 60.0,
                 grow_only: bool = True):
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        self.model = model
        self.window_s = window_s
        self.grow_only = grow_only

    # -- input shaping -----------------------------------------------------
    @staticmethod
    def active_clients_per_window(trace: TraceRecorder, edges: np.ndarray
                                  ) -> np.ndarray:
        """Reconstruct the DiPerF load curve from the query trace.

        A client is considered active from its first query to its last
        activity (response or send) — the controller's view of tester
        lifetimes when only the log survives.
        """
        q = trace.query_arrays()
        if len(q["sent_at"]) == 0:
            return np.zeros(len(edges) - 1, dtype=np.int64)
        clients = q["client"]
        spans: dict[str, list[float]] = {}
        last_seen = np.where(np.isnan(q["responded_at"]), q["sent_at"],
                             q["responded_at"])
        for c, s, e in zip(clients, q["sent_at"], last_seen):
            span = spans.get(c)
            if span is None:
                spans[c] = [s, e]
            else:
                span[0] = min(span[0], s)
                span[1] = max(span[1], e)
        starts = np.array([s for s, _ in spans.values()])
        ends = np.array([e for _, e in spans.values()])
        lo = edges[:-1][:, None]
        hi = edges[1:][:, None]
        active = (starts[None, :] < hi) & (ends[None, :] > lo)
        return active.sum(axis=1)

    # -- replay ------------------------------------------------------------------
    def replay(self, trace: TraceRecorder, initial_dps: int = 1,
               name: str = "trace") -> GrubSimResult:
        """Size the decision-point set against a recorded trace."""
        if initial_dps < 1:
            raise ValueError("initial_dps must be >= 1")
        q = trace.query_arrays()
        if len(q["sent_at"]) == 0:
            return GrubSimResult(name=name, initial_dps=initial_dps,
                                 final_dps=initial_dps)
        t_end = float(np.nanmax(
            np.where(np.isnan(q["responded_at"]), q["sent_at"],
                     q["responded_at"])))
        n_windows = max(1, int(np.ceil(t_end / self.window_s)))
        edges = np.arange(n_windows + 1) * self.window_s
        active = self.active_clients_per_window(trace, edges)

        result = GrubSimResult(name=name, initial_dps=initial_dps,
                               final_dps=initial_dps)
        deployed = initial_dps
        for w in range(n_windows):
            n_clients = int(active[w])
            required = self.model.required_dps(n_clients)
            result.required_series.append((float(edges[w]), required))
            if required > deployed:
                result.overloads.append(OverloadEvent(
                    time=float(edges[w]), active_clients=n_clients,
                    demand_qps=self.model.demand_qps(n_clients),
                    deployed_dps=deployed, required_dps=required))
                deployed = required  # "simulates new decision points on the fly"
            elif not self.grow_only and required < deployed:
                deployed = required
        result.final_dps = deployed
        return result
