"""The paper's evaluation metrics.

Section 4.2 defines five metrics: Average Response Time, Throughput,
Queue Time (plus the Normalized QTime used in Tables 1-2), Average
Resource Utilization, and Average Scheduling Accuracy.  All are numpy
reductions over the columnar traces of
:class:`~repro.workloads.trace.TraceRecorder`.
"""

from repro.metrics.ascii_plot import render_diperf_figure, render_series, sparkline
from repro.metrics.defs import (
    accuracy,
    normalized_qtime,
    qtime,
    throughput,
    utilization,
)
from repro.metrics.report import SummaryStats, format_table, render_obs_summary
from repro.metrics.timeseries import concurrency_series, windowed_mean, windowed_rate

__all__ = [
    "SummaryStats",
    "accuracy",
    "concurrency_series",
    "format_table",
    "normalized_qtime",
    "qtime",
    "render_diperf_figure",
    "render_obs_summary",
    "render_series",
    "sparkline",
    "throughput",
    "utilization",
    "windowed_mean",
    "windowed_rate",
]
