"""ASCII rendering of the paper's figure layout.

Each DiPerF figure plots three series against experiment time — load
(concurrent clients), service response time, and throughput.  These
helpers render them as aligned sparkline rows plus a compact multi-row
chart, so the benchmark harness can print something figure-shaped next
to the summary tables.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sparkline", "render_series", "render_diperf_figure"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 60) -> str:
    """One-row unicode sparkline, NaN-safe, resampled to ``width``."""
    v = np.asarray(values, dtype=np.float64)
    if len(v) == 0:
        return ""
    if len(v) > width:
        # Bin-mean resample to the target width.
        edges = np.linspace(0, len(v), width + 1).astype(int)
        v = np.array([np.nanmean(v[a:b]) if b > a else np.nan
                      for a, b in zip(edges[:-1], edges[1:])])
    finite = v[~np.isnan(v)]
    if len(finite) == 0:
        return " " * len(v)
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo
    chars = []
    for x in v:
        if np.isnan(x):
            chars.append(" ")
        elif span == 0:
            chars.append(_BLOCKS[4])
        else:
            idx = int((x - lo) / span * (len(_BLOCKS) - 2)) + 1
            chars.append(_BLOCKS[idx])
    return "".join(chars)


def render_series(label: str, times, values, unit: str = "",
                  width: int = 60) -> str:
    """One labelled sparkline row with its min/max annotations."""
    v = np.asarray(values, dtype=np.float64)
    finite = v[~np.isnan(v)]
    lo = float(finite.min()) if len(finite) else 0.0
    hi = float(finite.max()) if len(finite) else 0.0
    return (f"{label:<18} |{sparkline(v, width)}| "
            f"min={lo:.2f} max={hi:.2f} {unit}")


def render_diperf_figure(result, width: int = 60) -> str:
    """Render a DiPerfResult as the paper's three stacked series."""
    t1, load = result.load_series()
    t2, resp = result.response_series()
    t3, thr = result.throughput_series()
    lines = [
        f"[{result.name}]  t = 0 .. {result.t_end:.0f} s "
        f"({len(t1)} windows of {result.window_s:.0f} s)",
        render_series("load (clients)", t1, load, width=width),
        render_series("response (s)", t2, resp, width=width),
        render_series("throughput (q/s)", t3, thr, width=width),
    ]
    return "\n".join(lines)
