"""Scalar metric definitions (paper §4.2).

Each function takes columnar job/query arrays (or plain numpy arrays)
and returns a scalar.  NaN entries — lifecycle stages never reached —
are excluded, matching the paper's per-processed-job averages.
"""

from __future__ import annotations

import numpy as np

__all__ = ["throughput", "qtime", "normalized_qtime", "utilization", "accuracy"]


def throughput(responded_at: np.ndarray, t_start: float = 0.0,
               t_end: float | None = None) -> float:
    """Requests completed successfully per second over ``[t_start, t_end]``.

    ``Throughput = N_completed / T`` — the paper's definition of "the
    number of requests completed successfully by the service per unit
    time".  NaN entries (never-answered queries) do not count.
    """
    done = responded_at[~np.isnan(responded_at)]
    if t_end is None:
        t_end = float(done.max()) if len(done) else t_start
    span = t_end - t_start
    if span <= 0:
        return 0.0
    n = int(((done >= t_start) & (done <= t_end)).sum())
    return n / span


def qtime(queue_time_s: np.ndarray, mask: np.ndarray | None = None) -> float:
    """``QTime = sum(QT_i) / N`` over jobs that started (paper eq. 3).

    ``mask`` restricts to a job category (handled / not handled / all).
    """
    q = queue_time_s if mask is None else queue_time_s[mask]
    q = q[~np.isnan(q)]
    return float(q.mean()) if len(q) else 0.0


def normalized_qtime(queue_time_s: np.ndarray, n_requests: int,
                     mask: np.ndarray | None = None) -> float:
    """QTime divided by the request count of the category (Tables 1-2).

    The paper introduces this "in order to take into account both the
    number of requests and the resource utilization" — it exposes the
    deceivingly low raw QTime of the underloaded single-decision-point
    run.
    """
    if n_requests <= 0:
        return 0.0
    return qtime(queue_time_s, mask) / n_requests


def utilization(started_at: np.ndarray, completed_at: np.ndarray,
                cpus: np.ndarray, total_cpus: int, t_end: float,
                t_start: float = 0.0, mask: np.ndarray | None = None) -> float:
    """``Util = sum(ET_i * cpus_i) / (total_cpus * T)`` (paper eq. 4).

    Execution intervals are clipped to the measurement window, so jobs
    still running at the end contribute the CPU time they actually
    consumed inside the window.
    """
    if total_cpus <= 0:
        raise ValueError("total_cpus must be > 0")
    span = t_end - t_start
    if span <= 0:
        return 0.0
    s = started_at if mask is None else started_at[mask]
    c = completed_at if mask is None else completed_at[mask]
    p = cpus if mask is None else cpus[mask]
    started = ~np.isnan(s)
    s = s[started]
    c = c[started]
    p = p[started]
    c = np.where(np.isnan(c), t_end, c)  # still running at window end
    begin = np.clip(s, t_start, t_end)
    finish = np.clip(c, t_start, t_end)
    cpu_seconds = np.maximum(finish - begin, 0.0) * p
    return float(cpu_seconds.sum()) / (total_cpus * span)


def accuracy(accuracy_col: np.ndarray, mask: np.ndarray | None = None) -> float:
    """``Accuracy = sum(SA_i) / N`` (paper eq. 5).

    ``SA_i`` is recorded at dispatch time by the brokering client: the
    ratio of free resources at the selected site to the free resources
    at the best available site at that instant (1.0 = the selector
    picked an optimal site given ground truth).
    """
    a = accuracy_col if mask is None else accuracy_col[mask]
    a = a[~np.isnan(a)]
    return float(a.mean()) if len(a) else 0.0
