"""Summary statistics and text tables in the paper's reporting format."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["SummaryStats", "format_table"]


@dataclass(frozen=True)
class SummaryStats:
    """DiPerF's per-series summary: min / median / average / max / stdev.

    ``peak`` is the best windowed value (highest throughput window, or
    highest mean-response window), matching the "Peak" rows under the
    paper's figures.
    """

    minimum: float
    median: float
    average: float
    maximum: float
    stdev: float
    peak: float

    @staticmethod
    def from_array(values: np.ndarray, peak: float | None = None
                   ) -> "SummaryStats":
        v = np.asarray(values, dtype=np.float64)
        v = v[~np.isnan(v)]
        if len(v) == 0:
            return SummaryStats(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return SummaryStats(
            minimum=float(v.min()),
            median=float(np.median(v)),
            average=float(v.mean()),
            maximum=float(v.max()),
            stdev=float(v.std()),
            peak=float(peak) if peak is not None else float(v.max()),
        )

    def row(self) -> list[float]:
        return [self.minimum, self.median, self.average, self.maximum,
                self.stdev, self.peak]

    HEADER = ("Minimum", "Median", "Average", "Maximum", "StdDev", "Peak")


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "", col_width: int = 12) -> str:
    """Fixed-width text table (the benches print paper tables with this)."""
    if any(len(r) != len(headers) for r in rows):
        raise ValueError("row length does not match header length")

    def fmt(cell) -> str:
        if isinstance(cell, float):
            if cell != cell:  # NaN
                return "-"
            if abs(cell) >= 1000:
                return f"{cell:,.0f}"
            return f"{cell:.2f}"
        return str(cell)

    lines = []
    if title:
        lines.append(title)
    lines.append("".join(f"{h:>{col_width}}" for h in headers))
    lines.append("-" * (col_width * len(headers)))
    for r in rows:
        lines.append("".join(f"{fmt(c):>{col_width}}" for c in r))
    return "\n".join(lines)
