"""Summary statistics and text tables in the paper's reporting format."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["SummaryStats", "format_table", "render_obs_summary"]


@dataclass(frozen=True)
class SummaryStats:
    """DiPerF's per-series summary: min / median / average / max / stdev.

    ``peak`` is the best windowed value (highest throughput window, or
    highest mean-response window), matching the "Peak" rows under the
    paper's figures.
    """

    minimum: float
    median: float
    average: float
    maximum: float
    stdev: float
    peak: float

    @staticmethod
    def from_array(values: np.ndarray, peak: float | None = None
                   ) -> "SummaryStats":
        v = np.asarray(values, dtype=np.float64)
        v = v[~np.isnan(v)]
        if len(v) == 0:
            return SummaryStats(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return SummaryStats(
            minimum=float(v.min()),
            median=float(np.median(v)),
            average=float(v.mean()),
            maximum=float(v.max()),
            stdev=float(v.std()),
            peak=float(peak) if peak is not None else float(v.max()),
        )

    def row(self) -> list[float]:
        return [self.minimum, self.median, self.average, self.maximum,
                self.stdev, self.peak]

    HEADER = ("Minimum", "Median", "Average", "Maximum", "StdDev", "Peak")


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "", col_width: int = 12) -> str:
    """Fixed-width text table (the benches print paper tables with this)."""
    if any(len(r) != len(headers) for r in rows):
        raise ValueError("row length does not match header length")

    def fmt(cell) -> str:
        if cell is None:  # empty-histogram percentiles etc.
            return "-"
        if isinstance(cell, float):
            if cell != cell:  # NaN
                return "-"
            if abs(cell) >= 1000:
                return f"{cell:,.0f}"
            return f"{cell:.2f}"
        return str(cell)

    lines = []
    if title:
        lines.append(title)
    lines.append("".join(f"{h:>{col_width}}" for h in headers))
    lines.append("-" * (col_width * len(headers)))
    for r in rows:
        lines.append("".join(f"{fmt(c):>{col_width}}" for c in r))
    return "\n".join(lines)


def render_obs_summary(metrics, network_stats=None, tracer=None,
                       spans=None, title: str = "run summary") -> str:
    """Render one run's observability state as a text report.

    Unifies the three collection layers introduced with ``repro.obs``:

    * ``metrics`` — a :class:`~repro.obs.MetricsRegistry` (always-on
      counters + fixed-bucket histograms, e.g. ``rpc.latency_s``);
    * ``network_stats`` — the transport's
      :class:`~repro.net.transport.NetworkStats`, including the
      timeout/loss failure counts that used to go unreported;
    * ``tracer`` — the (optional) structured trace; only its per-kind
      tallies are shown here;
    * ``spans`` — the (optional) :class:`~repro.obs.SpanRecorder`;
      shown as finished/open tallies plus the sampling ratio.
    """
    lines = [f"== {title} =="]

    if network_stats is not None:
        ns = network_stats
        lines.append(
            f"transport: messages={ns.messages} kb={ns.kb:.1f} "
            f"dropped={ns.dropped}")
        lines.append(
            f"rpcs: started={ns.rpcs_started} completed={ns.rpcs_completed} "
            f"failed={ns.rpcs_failed} (timed_out={ns.rpcs_timed_out} "
            f"lost={ns.rpcs_lost}) discarded={ns.responses_discarded}")

    counters = dict(getattr(metrics, "counters", {}))
    if counters:
        rows = [(name, c.value) for name, c in sorted(counters.items())]
        lines.append(format_table(("counter", "value"), rows, col_width=28))

    histograms = dict(getattr(metrics, "histograms", {}))
    if histograms:
        rows = []
        for name, h in sorted(histograms.items()):
            s = h.summary()
            rows.append((name, s["count"], s["mean"], s["p50"], s["p90"],
                         s["p99"], s["max"]))
        lines.append(format_table(
            ("histogram", "count", "mean", "p50", "p90", "p99", "max"),
            rows, col_width=14))

    if tracer is not None and tracer.counts:
        rows = sorted(tracer.counts.items())
        lines.append(format_table(("trace event", "count"), rows,
                                  col_width=28))
        lines.append(f"trace: buffered={len(tracer)} evicted={tracer.evicted}")

    if spans is not None and (spans.enabled or len(spans)):
        lines.append(
            f"spans: finished={len(spans.finished)} "
            f"open={len(spans.open_spans)} "
            f"sampled={spans.roots_sampled}/{spans.roots_seen} "
            f"(1/{spans.sample_every})")

    return "\n".join(lines)
