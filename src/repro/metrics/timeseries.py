"""Windowed time series for the DiPerF-style figures.

The paper's figures plot three series against experiment time: number
of concurrent clients (load), service response time, and throughput.
These helpers bin event streams into fixed windows, vectorized with
``numpy.histogram``-style binning.
"""

from __future__ import annotations

import numpy as np

__all__ = ["windowed_rate", "windowed_mean", "concurrency_series"]


def _edges(t_start: float, t_end: float, window_s: float) -> np.ndarray:
    if window_s <= 0:
        raise ValueError("window_s must be > 0")
    if t_end <= t_start:
        raise ValueError(f"empty window [{t_start}, {t_end}]")
    n = int(np.ceil((t_end - t_start) / window_s))
    edges = t_start + np.arange(n + 1) * window_s
    # Float accumulation can leave the last edge a hair below t_end
    # when the span is a near-integer multiple of the window; events in
    # that final sliver would silently fall outside every bin.  Clamp
    # so the edges always cover [t_start, t_end].
    if edges[-1] < t_end:
        edges[-1] = t_end
    return edges


def windowed_rate(event_times: np.ndarray, t_start: float, t_end: float,
                  window_s: float) -> tuple[np.ndarray, np.ndarray]:
    """Events per second in each window.

    Returns ``(centers, rates)``; NaN event times are ignored.  This is
    the throughput series of Figs 1 and 5-11.
    """
    edges = _edges(t_start, t_end, window_s)
    t = np.asarray(event_times, dtype=np.float64)
    t = t[~np.isnan(t)]
    counts, _ = np.histogram(t, bins=edges)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, counts / window_s


def windowed_mean(event_times: np.ndarray, values: np.ndarray,
                  t_start: float, t_end: float, window_s: float
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Mean of ``values`` grouped by event window (NaN where empty).

    This is the response-time series: events are query completions,
    values are their response times.
    """
    edges = _edges(t_start, t_end, window_s)
    t = np.asarray(event_times, dtype=np.float64)
    v = np.asarray(values, dtype=np.float64)
    keep = ~(np.isnan(t) | np.isnan(v))
    t, v = t[keep], v[keep]
    counts, _ = np.histogram(t, bins=edges)
    sums, _ = np.histogram(t, bins=edges, weights=v)
    centers = (edges[:-1] + edges[1:]) / 2.0
    with np.errstate(invalid="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return centers, means


def concurrency_series(start_times: np.ndarray, end_times: np.ndarray,
                       t_start: float, t_end: float, window_s: float
                       ) -> tuple[np.ndarray, np.ndarray]:
    """How many clients are active in each window (the "load" series).

    A client is active in a window if its ``[start, end]`` interval
    overlaps the window.  NaN end times mean active through ``t_end``.
    """
    edges = _edges(t_start, t_end, window_s)
    s = np.sort(np.asarray(start_times, dtype=np.float64))
    e = np.asarray(end_times, dtype=np.float64)
    e = np.sort(np.where(np.isnan(e), t_end, e))
    # Overlap counting without the (windows x clients) boolean matrix
    # (O(GB) at 10x-scale fleets): since end >= start for every client,
    #   active(window) = #(start < hi) - #(end <= lo)
    # and both terms are searchsorted lookups on the sorted arrays —
    # O(windows + clients log clients) total.
    started = np.searchsorted(s, edges[1:], side="left")
    ended = np.searchsorted(e, edges[:-1], side="right")
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, started - ended
