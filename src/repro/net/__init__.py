"""WAN network and Globus-container models.

This package substitutes for the paper's PlanetLab + Globus Toolkit
deployment substrate:

* :mod:`repro.net.latency` — per-pair WAN/LAN latency models with
  PlanetLab-like lognormal round-trip times;
* :mod:`repro.net.topology` — decision-point overlay topologies (mesh,
  ring, star) and the static random client→decision-point assignment
  the paper uses;
* :mod:`repro.net.transport` — simulated message passing and RPC on
  top of the DES kernel;
* :mod:`repro.net.container` — GT3/GT4 service-container profiles
  (authentication + SOAP processing costs, request concurrency) that
  determine per-decision-point service capacity.
"""

from repro.net.container import (
    GT3_PROFILE,
    GT4_PROFILE,
    GT4C_PROFILE,
    ContainerProfile,
    OverloadShed,
    ServiceContainer,
    lognormal_for_mean,
)
from repro.net.latency import (
    ConstantLatency,
    LanLatency,
    LatencyModel,
    PairwiseWanLatency,
    UniformLatency,
)
from repro.net.topology import (
    BrokerTopology,
    assign_clients,
    assign_clients_nearest,
    cross_pairs,
)
from repro.net.transport import Endpoint, Message, Network, RpcError, RpcTimeout

__all__ = [
    "BrokerTopology",
    "ConstantLatency",
    "ContainerProfile",
    "Endpoint",
    "GT3_PROFILE",
    "GT4_PROFILE",
    "GT4C_PROFILE",
    "LanLatency",
    "lognormal_for_mean",
    "LatencyModel",
    "Message",
    "Network",
    "OverloadShed",
    "PairwiseWanLatency",
    "RpcError",
    "RpcTimeout",
    "ServiceContainer",
    "UniformLatency",
    "assign_clients",
    "assign_clients_nearest",
    "cross_pairs",
]
