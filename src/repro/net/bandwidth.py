"""Network bandwidth as an allocatable, USLA-governed resource.

"Allocations are made for processor time, permanent storage, or network
bandwidth resources" (§3.3).  A :class:`BandwidthPool` models a site's
WAN uplink as a fair-shared channel: concurrent transfers split the
capacity evenly (processor-sharing), per-VO USLAs cap how much of the
link a VO may hold, and completed transfers report their effective
rates for verification.

Transfer times under processor sharing are computed event-exactly: when
a transfer starts or ends, the remaining bytes of every active transfer
are re-scheduled at the new per-transfer rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.kernel import Event, ScheduledCall, Simulator
from repro.usla.fairshare import ResourceType
from repro.usla.policy import PolicyEngine

__all__ = ["BandwidthPool", "TransferRecord"]


@dataclass(frozen=True)
class TransferRecord:
    """One completed transfer (verification input)."""

    vo: str
    size_mb: float
    started_at: float
    completed_at: float

    @property
    def effective_mb_s(self) -> float:
        dt = self.completed_at - self.started_at
        return self.size_mb / dt if dt > 0 else float("inf")


@dataclass
class _ActiveTransfer:
    vo: str
    size_mb: float
    remaining_mb: float
    started_at: float
    done: Event
    completion: Optional[ScheduledCall] = None
    last_update: float = 0.0


class BandwidthPool:
    """Processor-shared link with per-VO USLA admission.

    Parameters
    ----------
    capacity_mb_s:
        Aggregate link capacity.
    policy:
        Optional policy engine; rules like ``network|site:vo=25%+`` cap
        the *number share* of concurrent transfers a VO may hold (the
        natural processor-sharing reading of a bandwidth share).
    """

    def __init__(self, sim: Simulator, site: str, capacity_mb_s: float,
                 policy: Optional[PolicyEngine] = None):
        if capacity_mb_s <= 0:
            raise ValueError("capacity_mb_s must be > 0")
        self.sim = sim
        self.site = site
        self.capacity_mb_s = capacity_mb_s
        self.policy = policy
        self._active: list[_ActiveTransfer] = []
        self.records: list[TransferRecord] = []
        self.denials = 0

    # -- introspection -----------------------------------------------------
    @property
    def active_transfers(self) -> int:
        return len(self._active)

    def vo_active(self, vo: str) -> int:
        return sum(1 for t in self._active if t.vo == vo)

    def current_rate_mb_s(self) -> float:
        """Per-transfer rate right now (processor sharing)."""
        n = len(self._active)
        return self.capacity_mb_s / n if n else self.capacity_mb_s

    # -- admission ------------------------------------------------------------
    def _admits(self, vo: str) -> bool:
        if self.policy is None:
            return True
        decision = self.policy.check_admission(
            self.site, vo, usage_fraction=0.0,
            request_fraction=0.0, resource=ResourceType.NETWORK)
        if decision.binding_rule is None:
            return True
        total_after = len(self._active) + 1
        held_after = self.vo_active(vo) + 1
        # A share of concurrent transfers, with a floor of one slot —
        # otherwise a capped VO could never transfer on an idle link.
        allowed = max(1, int(decision.binding_rule.fraction * total_after
                             + 1e-12))
        return held_after <= allowed

    # -- transfers ---------------------------------------------------------------
    def transfer(self, vo: str, size_mb: float) -> Event:
        """Start a transfer; the event succeeds at completion.

        Fails immediately (event failure) when the VO's network USLA
        forbids another concurrent transfer on this link.
        """
        if size_mb <= 0:
            raise ValueError("size_mb must be > 0")
        done = self.sim.event(name=f"xfer:{self.site}:{vo}")
        if not self._admits(vo):
            self.denials += 1
            done.fail(PermissionError(
                f"network USLA denies {vo!r} another transfer at {self.site!r}"))
            return done
        self._progress_all()
        t = _ActiveTransfer(vo=vo, size_mb=size_mb, remaining_mb=size_mb,
                            started_at=self.sim.now, done=done,
                            last_update=self.sim.now)
        self._active.append(t)
        self._reschedule_all()
        return done

    # -- processor-sharing mechanics ------------------------------------------------
    def _progress_all(self) -> None:
        """Advance every active transfer's remaining bytes to `now`."""
        now = self.sim.now
        rate = self.current_rate_mb_s()
        for t in self._active:
            elapsed = now - t.last_update
            t.remaining_mb = max(t.remaining_mb - elapsed * rate, 0.0)
            t.last_update = now

    def _reschedule_all(self) -> None:
        rate = self.current_rate_mb_s()
        for t in self._active:
            if t.completion is not None:
                t.completion.cancel()
            eta = t.remaining_mb / rate
            t.completion = self.sim.schedule(eta, lambda t=t: self._complete(t))

    def _complete(self, t: _ActiveTransfer) -> None:
        self._progress_all()
        self._active.remove(t)
        self.records.append(TransferRecord(
            vo=t.vo, size_mb=t.size_mb, started_at=t.started_at,
            completed_at=self.sim.now))
        t.done.succeed(self.sim.now - t.started_at)
        self._reschedule_all()

    # -- verification -----------------------------------------------------------
    def vo_mb_transferred(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for rec in self.records:
            out[rec.vo] = out.get(rec.vo, 0.0) + rec.size_mb
        return out

    def usage_snapshot(self) -> dict[str, float]:
        """Per-VO fraction of total bytes moved (verification input)."""
        totals = self.vo_mb_transferred()
        total = sum(totals.values())
        if total == 0:
            return {}
        return {vo: mb / total for vo, mb in totals.items()}
