"""Globus Toolkit service-container model (GT3 vs GT4 profiles).

The paper measures the *same* broker hosted on two container stacks and
finds different per-request costs ("the factors limiting performance
are primarily authentication and SOAP processing").  We model a
container as a finite-concurrency server whose per-request service time
and client-side stack overhead are drawn from lognormal distributions
around profile means.

Calibration
-----------
Absolute numbers in the paper text were lost to OCR; the profile
constants below are calibrated so the *prose-documented* relations hold
under the canonical experiment (see DESIGN.md §5 and EXPERIMENTS.md):

* GT3 single decision point saturates just under ~2 queries/s
  (``query_service_s = 0.5`` with concurrency 1);
* GT4 (the functionally-equivalent but slower prerelease) saturates
  just above ~1 query/s and has roughly double the end-to-end query
  latency;
* bare GT3 service-instance creation (Fig 1) is an order of magnitude
  cheaper than a full brokering query, peaking around ~15 requests/s
  with ~2 s unloaded response.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.kernel import Simulator
from repro.sim.resources import Server

__all__ = ["ContainerProfile", "ServiceContainer", "OverloadShed",
           "GT3_PROFILE", "GT4_PROFILE", "GT4C_PROFILE", "lognormal_for_mean"]


class OverloadShed(Exception):
    """Raised by a bounded-queue container that refuses a request.

    Load shedding turns a slow failure (minutes in the queue, then a
    client timeout) into a fast one: the handler fails immediately and
    the caller sees an :class:`~repro.net.transport.RpcError` one round
    trip later — which a resilient client converts into an instant
    retry/failover instead of a burned timeout.
    """


def lognormal_for_mean(rng: np.random.Generator, mean: float, sigma: float) -> float:
    """Draw a lognormal variate with the requested *mean* (not median).

    Shared by the container (service times) and the clients (stack
    overheads) so both sides of the protocol use the same noise model.
    """
    if mean <= 0:
        return 0.0
    mu = np.log(mean) - 0.5 * sigma * sigma
    return float(rng.lognormal(mu, sigma))


_lognormal_for_mean = lognormal_for_mean  # internal alias


@dataclass(frozen=True)
class ContainerProfile:
    """Per-request cost structure of one container technology.

    Attributes
    ----------
    name:
        Display name ("GT3", "GT4").
    query_service_s:
        Mean decision-point CPU time per brokering query; the
        container's saturation throughput is
        ``query_concurrency / query_service_s``.
    query_concurrency:
        Requests the container processes concurrently.
    query_rtts:
        WAN round trips per brokering query (the paper: "a query ...
        may include multiple message exchanges").
    client_overhead_s:
        Mean client-side stack time per query (auth handshake, SOAP
        marshalling) — latency the *client* pays that does not consume
        decision-point capacity.
    instance_service_s / instance_concurrency / instance_rtts /
    instance_client_overhead_s:
        Same quantities for the bare service-instance-creation
        operation of Fig 1.
    sigma:
        Lognormal shape shared by all service-time draws.
    """

    name: str
    query_service_s: float
    report_service_s: float
    query_concurrency: int
    query_rtts: int
    client_overhead_s: float
    instance_service_s: float
    instance_concurrency: int
    instance_rtts: int
    instance_client_overhead_s: float
    sigma: float = 0.25

    def __post_init__(self):
        for field_name in ("query_service_s", "report_service_s",
                           "client_overhead_s", "instance_service_s",
                           "instance_client_overhead_s"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")
        if self.query_concurrency < 1 or self.instance_concurrency < 1:
            raise ValueError("concurrency must be >= 1")

    @property
    def query_capacity_qps(self) -> float:
        """Saturation throughput for full brokering operations.

        One brokering operation costs the availability query *plus* the
        dispatch report on the same container (the paper: "the site
        selector first requests information about current site
        availabilities and then informs the decision point about its
        site selection").
        """
        return self.query_concurrency / (self.query_service_s
                                         + self.report_service_s)

    @property
    def instance_capacity_qps(self) -> float:
        return self.instance_concurrency / self.instance_service_s


#: GT3.2-style container: faster per-request stack, chattier client side
#: (heavyweight pre-WS auth handshake dominates the client overhead).
GT3_PROFILE = ContainerProfile(
    name="GT3",
    query_service_s=0.42,
    report_service_s=0.08,
    query_concurrency=1,
    query_rtts=4,
    client_overhead_s=6.0,
    instance_service_s=0.13,
    instance_concurrency=2,
    instance_rtts=1,
    instance_client_overhead_s=1.3,
)

#: GT4 prerelease container: "functionality equivalent to the final GT4
#: release, but provides somewhat lower performance" — slower
#: per-request processing (lower saturation throughput), leaner WSRF
#: client messaging.
GT4_PROFILE = ContainerProfile(
    name="GT4",
    query_service_s=0.72,
    report_service_s=0.13,
    query_concurrency=1,
    query_rtts=4,
    client_overhead_s=3.5,
    instance_service_s=0.22,
    instance_concurrency=2,
    instance_rtts=1,
    instance_client_overhead_s=2.4,
)

#: The paper's future-work target: "DI-GRUBER performance can be
#: improved further by porting it to a C-based Web services core, such
#: as is supported in GT4."  Modeled as the GT4 message layout on a
#: much faster native core (the C WS-core's published speedups over the
#: Java container are roughly 2-4x per operation).
GT4C_PROFILE = ContainerProfile(
    name="GT4-C",
    query_service_s=0.20,
    report_service_s=0.04,
    query_concurrency=1,
    query_rtts=4,
    client_overhead_s=1.2,
    instance_service_s=0.06,
    instance_concurrency=2,
    instance_rtts=1,
    instance_client_overhead_s=0.8,
)


class ServiceContainer:
    """A deployed container instance hosting one service (e.g. one DP).

    Provides ``service_query()`` / ``service_instance_creation()``
    generators that the owning endpoint's handlers delegate to: they
    acquire a container slot, burn the drawn service time, and release.
    The container also keeps an operations log (timestamps of completed
    requests) that saturation detection samples.
    """

    def __init__(self, sim: Simulator, profile: ContainerProfile,
                 rng: np.random.Generator, name: str = "container",
                 max_queue: int | None = None):
        self.sim = sim
        self.profile = profile
        self.rng = rng
        self.name = name
        #: Bounded admission queue: requests arriving while this many
        #: are already waiting are shed (``None`` = unbounded, the
        #: original behaviour).
        self.max_queue = max_queue
        #: Degraded-container multiplier on every service-time draw
        #: (a "slow node" fault profile; 1.0 = healthy).
        self.degrade_factor = 1.0
        self._query_server = Server(sim, profile.query_concurrency,
                                    name=f"{name}.query")
        self._instance_server = Server(sim, profile.instance_concurrency,
                                       name=f"{name}.create")
        self.completed_ops: int = 0
        self.shed_ops: int = 0
        self.op_timestamps: list[float] = []

    # -- fault/limit knobs -------------------------------------------------
    def set_degradation(self, factor: float) -> None:
        """Scale all service times by ``factor`` (1.0 restores health)."""
        if factor <= 0:
            raise ValueError(f"degrade factor must be > 0, got {factor}")
        self.degrade_factor = factor

    def set_queue_bound(self, max_queue: int | None) -> None:
        """Change the admission bound; tightening sheds immediately.

        Admission only checks the bound on arrival, so a bound lowered
        mid-run (the autoscale actuator does this under drain) used to
        leave requests already queued beyond the new bound sitting
        there — under-shedding until the next arrival, and never
        shedding at all once arrivals stop.  Now the excess waiters are
        shed at the instant the bound tightens, newest first (exactly
        the requests that would have been refused at admission had the
        bound arrived before them), through the same counter/trace/
        exception path as an admission-time shed.
        """
        if max_queue is not None and max_queue < 0:
            raise ValueError("max_queue must be >= 0 or None")
        self.max_queue = max_queue
        if max_queue is None:
            return
        excess = self._query_server.queue_len - max_queue
        if excess <= 0:
            return
        for ev in self._query_server.drop_newest(excess):
            self.shed_ops += 1
            self.sim.metrics.counter("container.shed").inc()
            if self.sim.trace.enabled:
                self.sim.trace.emit("container.shed", node=self.name,
                                    queue_len=self._query_server.queue_len,
                                    max_queue=max_queue)
            ev.fail(OverloadShed(
                f"{self.name}: queued beyond tightened bound {max_queue}"))

    def _admit(self) -> None:
        """Shed the request if the admission queue is full."""
        if (self.max_queue is not None
                and self._query_server.queue_len >= self.max_queue):
            self.shed_ops += 1
            self.sim.metrics.counter("container.shed").inc()
            if self.sim.trace.enabled:
                self.sim.trace.emit("container.shed", node=self.name,
                                    queue_len=self._query_server.queue_len,
                                    max_queue=self.max_queue)
            raise OverloadShed(
                f"{self.name}: queue {self._query_server.queue_len} "
                f">= bound {self.max_queue}")

    # -- generators used inside RPC handlers ------------------------------
    def service_query(self, extra_s: float = 0.0):
        """Consume one brokering-query service slot.

        ``extra_s`` adds request-specific work (e.g. per-site state
        marshalling proportional to grid size).
        """
        self._admit()
        yield self._query_server.acquire()
        try:
            svc = _lognormal_for_mean(self.rng, self.profile.query_service_s,
                                      self.profile.sigma) + extra_s
            yield svc * self.degrade_factor
        finally:
            self._query_server.release()
        self.completed_ops += 1
        self.op_timestamps.append(self.sim.now)

    def service_report(self):
        """Consume the dispatch-report share of a brokering operation."""
        self._admit()
        yield self._query_server.acquire()
        try:
            yield _lognormal_for_mean(self.rng, self.profile.report_service_s,
                                      self.profile.sigma) * self.degrade_factor
        finally:
            self._query_server.release()
        self.completed_ops += 1
        self.op_timestamps.append(self.sim.now)

    def service_instance_creation(self):
        """Consume one bare instance-creation slot (Fig 1 workload)."""
        yield self._instance_server.acquire()
        try:
            yield _lognormal_for_mean(self.rng, self.profile.instance_service_s,
                                      self.profile.sigma) * self.degrade_factor
        finally:
            self._instance_server.release()
        self.completed_ops += 1
        self.op_timestamps.append(self.sim.now)

    # -- client-side costs -------------------------------------------------
    def draw_client_overhead(self, rng: np.random.Generator) -> float:
        """Client stack time per query (drawn on the client's own stream)."""
        return _lognormal_for_mean(rng, self.profile.client_overhead_s,
                                   self.profile.sigma)

    def draw_instance_client_overhead(self, rng: np.random.Generator) -> float:
        return _lognormal_for_mean(rng, self.profile.instance_client_overhead_s,
                                   self.profile.sigma)

    # -- introspection -------------------------------------------------------
    @property
    def queue_len(self) -> int:
        return self._query_server.queue_len

    @property
    def in_service(self) -> int:
        return self._query_server.in_service

    def ops_in_window(self, window_s: float) -> int:
        """Completed operations in the trailing ``window_s`` seconds."""
        cutoff = self.sim.now - window_s
        # Timestamps are appended in nondecreasing order; scan from the end.
        count = 0
        for t in reversed(self.op_timestamps):
            if t < cutoff:
                break
            count += 1
        return count
