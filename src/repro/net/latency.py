"""One-way message latency models.

The paper deployed DI-GRUBER on PlanetLab, where node-to-node message
latencies are "in the 100s of milliseconds" once SOAP payloads are
involved.  :class:`PairwiseWanLatency` models that regime: each ordered
node pair gets a stable base latency drawn once from a lognormal
distribution (geography does not change during a run), and every
message adds lognormal jitter (cross traffic).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable

import numpy as np

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LanLatency",
    "PairwiseWanLatency",
]


class LatencyModel(ABC):
    """Maps an ordered endpoint pair to a one-way delay in seconds."""

    @abstractmethod
    def sample(self, src: Hashable, dst: Hashable) -> float:
        """One-way latency for one message from ``src`` to ``dst``."""

    def rtt(self, a: Hashable, b: Hashable) -> float:
        """One sampled round trip (two independent one-way draws)."""
        return self.sample(a, b) + self.sample(b, a)


class ConstantLatency(LatencyModel):
    """Fixed one-way delay; useful for tests and analytic validation."""

    def __init__(self, value: float):
        if value < 0:
            raise ValueError(f"latency must be >= 0, got {value}")
        self.value = value

    def sample(self, src: Hashable, dst: Hashable) -> float:
        return self.value


class UniformLatency(LatencyModel):
    """Uniform jitter in ``[lo, hi]``, independent per message."""

    def __init__(self, lo: float, hi: float, rng: np.random.Generator):
        if not 0 <= lo <= hi:
            raise ValueError(f"need 0 <= lo <= hi, got [{lo}, {hi}]")
        self.lo, self.hi, self.rng = lo, hi, rng

    def sample(self, src: Hashable, dst: Hashable) -> float:
        return float(self.rng.uniform(self.lo, self.hi))


class LanLatency(ConstantLatency):
    """Sub-millisecond LAN delay (the paper's suggested tighter coupling)."""

    def __init__(self, value: float = 0.0002):
        super().__init__(value)


class PairwiseWanLatency(LatencyModel):
    """PlanetLab-like WAN latency.

    Parameters
    ----------
    rng:
        Source of randomness (a named stream from ``RngRegistry``).
    median_ms:
        Median *base* one-way latency between two nodes.  PlanetLab
        pings cluster around 40-80 ms; SOAP-payload-bearing messages
        are effectively slower, so experiment configs use a higher
        value (see ``repro.experiments.configs``).
    sigma:
        Lognormal shape for the base latency draw (pair diversity).
    jitter_frac:
        Per-message multiplicative jitter: each message's latency is
        ``base * (1 + Lognormal(0, jitter_sigma) * jitter_frac)``-like;
        implemented as base times a lognormal with unit median.
    """

    def __init__(self, rng: np.random.Generator, median_ms: float = 60.0,
                 sigma: float = 0.6, jitter_sigma: float = 0.15):
        if median_ms <= 0:
            raise ValueError(f"median_ms must be > 0, got {median_ms}")
        if sigma < 0 or jitter_sigma < 0:
            raise ValueError("sigma parameters must be >= 0")
        self.rng = rng
        self.median_s = median_ms / 1000.0
        self.sigma = sigma
        self.jitter_sigma = jitter_sigma
        self._base: dict[tuple[Hashable, Hashable], float] = {}

    def base_latency(self, src: Hashable, dst: Hashable) -> float:
        """The stable component for this ordered pair (drawn once)."""
        if src == dst:
            return 0.0
        key = (src, dst) if repr(src) <= repr(dst) else (dst, src)
        base = self._base.get(key)
        if base is None:
            base = self.median_s * float(np.exp(self.rng.normal(0.0, self.sigma)))
            self._base[key] = base
        return base

    def sample(self, src: Hashable, dst: Hashable) -> float:
        base = self.base_latency(src, dst)
        if base == 0.0:
            return 0.0
        jitter = float(np.exp(self.rng.normal(0.0, self.jitter_sigma)))
        return base * jitter
