"""Decision-point overlay topologies and client assignment.

The paper connects decision points "in a mesh, a simple configuration
adopted to simplify analysis"; the ablation benches also exercise ring
and star overlays.  Clients (submission hosts) are assigned to exactly
one decision point, "selected randomly in the beginning", i.e. a static
random assignment.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import networkx as nx
import numpy as np

__all__ = ["BrokerTopology", "assign_clients", "assign_clients_nearest",
           "cross_pairs"]

_KINDS = ("mesh", "ring", "star", "line")


class BrokerTopology:
    """Overlay graph among decision points.

    Parameters
    ----------
    nodes:
        Decision-point identifiers (order defines ring/star/line layout).
    kind:
        ``"mesh"`` (complete graph — the paper's configuration),
        ``"ring"``, ``"star"`` (first node is the hub), or ``"line"``.
    """

    def __init__(self, nodes: Sequence[Hashable], kind: str = "mesh"):
        if kind not in _KINDS:
            raise ValueError(f"unknown topology kind {kind!r}; expected one of {_KINDS}")
        nodes = list(nodes)
        if len(nodes) != len(set(nodes)):
            raise ValueError("duplicate node identifiers in topology")
        if not nodes:
            raise ValueError("topology requires at least one node")
        self.kind = kind
        self.nodes = nodes
        self.graph = self._build(nodes, kind)

    @staticmethod
    def _build(nodes: Sequence[Hashable], kind: str) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(nodes)
        n = len(nodes)
        if n == 1:
            return g
        if kind == "mesh":
            g.add_edges_from((nodes[i], nodes[j])
                             for i in range(n) for j in range(i + 1, n))
        elif kind == "ring":
            g.add_edges_from((nodes[i], nodes[(i + 1) % n]) for i in range(n))
        elif kind == "star":
            hub = nodes[0]
            g.add_edges_from((hub, other) for other in nodes[1:])
        elif kind == "line":
            g.add_edges_from((nodes[i], nodes[i + 1]) for i in range(n - 1))
        return g

    def neighbors(self, node: Hashable) -> list[Hashable]:
        """Peers this decision point exchanges state with directly."""
        return list(self.graph.neighbors(node))

    def diameter(self) -> int:
        """Hops for information to reach every decision point (flooding depth)."""
        if len(self.nodes) == 1:
            return 0
        return nx.diameter(self.graph)

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph)

    def __len__(self) -> int:
        return len(self.nodes)


def cross_pairs(islands: Sequence[Sequence[Hashable]]
                ) -> list[tuple[Hashable, Hashable]]:
    """Every ordered node pair that straddles an island boundary.

    The fault injector cuts exactly these pairs to realize a mesh
    partition: traffic within an island flows, traffic across never
    arrives.  Nodes may be decision points or submission hosts; a node
    appearing in two islands is rejected (ambiguous membership).
    """
    seen: set[Hashable] = set()
    groups = [list(island) for island in islands]
    for island in groups:
        for node in island:
            if node in seen:
                raise ValueError(f"node {node!r} appears in two islands")
            seen.add(node)
    pairs: list[tuple[Hashable, Hashable]] = []
    for i, a_island in enumerate(groups):
        for j, b_island in enumerate(groups):
            if i == j:
                continue
            pairs.extend((a, b) for a in a_island for b in b_island)
    return pairs


def assign_clients(clients: Sequence[Hashable], decision_points: Sequence[Hashable],
                   rng: np.random.Generator) -> dict[Hashable, Hashable]:
    """Static random client → decision-point assignment (paper §4.3).

    Each submission host picks one decision point uniformly at random at
    the start of the run and keeps it; the returned dict maps client id
    to decision-point id.
    """
    if not decision_points:
        raise ValueError("need at least one decision point")
    dps = list(decision_points)
    picks = rng.integers(0, len(dps), size=len(clients))
    return {c: dps[int(i)] for c, i in zip(clients, picks)}


def assign_clients_nearest(clients: Sequence[Hashable],
                           decision_points: Sequence[Hashable],
                           latency, max_skew: int = 2
                           ) -> dict[Hashable, Hashable]:
    """Latency-aware assignment: each host binds to its nearest broker.

    An alternative to the paper's random static assignment — hosts sort
    decision points by measured base latency and take the closest one
    whose load does not exceed the current minimum by more than
    ``max_skew`` clients (so a popular corner of the WAN cannot starve
    a broker of clients entirely).  ``latency`` is any
    :class:`~repro.net.latency.LatencyModel` with stable per-pair bases.
    """
    if not decision_points:
        raise ValueError("need at least one decision point")
    if max_skew < 1:
        raise ValueError("max_skew must be >= 1")
    dps = list(decision_points)
    loads = {d: 0 for d in dps}
    base = getattr(latency, "base_latency", latency.sample)
    out: dict[Hashable, Hashable] = {}
    for c in clients:
        ranked = sorted(dps, key=lambda d: base(c, d))
        floor = min(loads.values())
        chosen = next((d for d in ranked if loads[d] - floor < max_skew),
                      ranked[0])
        out[c] = chosen
        loads[chosen] += 1
    return out
