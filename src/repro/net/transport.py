"""Simulated message passing and RPC.

Endpoints register named operation handlers; a handler may return a
plain value (instant work) or a generator (a process that consumes
simulated time — e.g. acquiring the service container and spending the
request's service time).  The RPC result event fires when the response
message arrives back at the caller — so one RPC costs one full round
trip plus server-side time, and the multi-round-trip brokering protocol
of the paper is composed from several RPCs.

A caller-side ``timeout`` only abandons *waiting*: the server still
completes the request (and the response is discarded on arrival).  This
matches the paper's client behaviour — on a 15 s timeout the site
selector falls back to a random site while the original query keeps
running to completion inside the decision point.
"""

from __future__ import annotations

import types
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional

from repro.sim.kernel import Event, Simulator

from repro.net.latency import LatencyModel

__all__ = ["Message", "Endpoint", "Network", "RpcError", "RpcTimeout"]


class RpcError(Exception):
    """The remote handler raised; carries the remote exception string."""


class RpcTimeout(RpcError):
    """The caller stopped waiting before the response arrived."""


@dataclass
class Message:
    """One simulated network message."""

    src: Hashable
    dst: Hashable
    kind: str                    # "request" | "response" | "oneway"
    op: str
    payload: Any
    size_kb: float = 0.0
    sent_at: float = 0.0
    rpc_id: int = 0
    ok: bool = True              # for responses: handler succeeded?


@dataclass
class NetworkStats:
    """Aggregate transport counters, for reporting and saturation checks."""

    messages: int = 0
    kb: float = 0.0
    dropped: int = 0
    rpcs_started: int = 0
    rpcs_completed: int = 0
    rpcs_failed: int = 0
    per_op: dict = field(default_factory=dict)

    def count(self, op: str) -> None:
        self.per_op[op] = self.per_op.get(op, 0) + 1


class Endpoint:
    """A named node attached to the network.

    Handlers receive ``(payload, src)`` and either return a result
    directly or return a generator which the transport runs as a
    process; the generator's return value becomes the RPC result.
    """

    def __init__(self, network: "Network", node_id: Hashable):
        self.network = network
        self.node_id = node_id
        self.handlers: dict[str, Callable[[Any, Hashable], Any]] = {}
        #: A downed endpoint swallows traffic: requests get no response
        #: (callers see their own timeouts — exactly how a crashed WAN
        #: service fails), one-way messages vanish.
        self.online = True
        network._register(self)

    def register_handler(self, op: str, fn: Callable[[Any, Hashable], Any]) -> None:
        if op in self.handlers:
            raise ValueError(f"handler for op {op!r} already registered on {self.node_id!r}")
        self.handlers[op] = fn

    # Subclasses may override for non-RPC one-way messages.
    def on_oneway(self, msg: Message) -> None:  # pragma: no cover - default
        raise NotImplementedError(
            f"endpoint {self.node_id!r} received one-way {msg.op!r} "
            "but does not override on_oneway()")


class Network:
    """The WAN: delivers messages after sampled latency plus transfer time.

    ``kb_transfer_s`` models effective serialization/transfer cost per
    KB of payload — SOAP-encoded state over PlanetLab paths is slow,
    and the paper notes the brokering protocol moves "significant
    state"; this constant is a calibration input (see configs).
    """

    def __init__(self, sim: Simulator, latency: LatencyModel,
                 kb_transfer_s: float = 0.0,
                 loss_rate: float = 0.0, loss_rng=None):
        if kb_transfer_s < 0:
            raise ValueError("kb_transfer_s must be >= 0")
        if not (0.0 <= loss_rate < 1.0):
            raise ValueError("loss_rate must be in [0, 1)")
        if loss_rate > 0.0 and loss_rng is None:
            raise ValueError("loss_rate > 0 requires loss_rng")
        self.sim = sim
        self.latency = latency
        self.kb_transfer_s = kb_transfer_s
        #: Independent per-message drop probability (lossy WAN).  A
        #: dropped request or response simply never arrives; callers
        #: see their own timeouts, exactly as with a crashed peer.
        self.loss_rate = loss_rate
        self._loss_rng = loss_rng
        self.stats = NetworkStats()
        self._endpoints: dict[Hashable, Endpoint] = {}
        self._rpc_seq = 0
        self._pending_rpcs: dict[int, Event] = {}

    def _lost(self) -> bool:
        if self.loss_rate == 0.0:
            return False
        lost = bool(self._loss_rng.random() < self.loss_rate)
        if lost:
            self.stats.dropped += 1
        return lost

    # -- registry -------------------------------------------------------
    def _register(self, ep: Endpoint) -> None:
        if ep.node_id in self._endpoints:
            raise ValueError(f"endpoint id {ep.node_id!r} already registered")
        self._endpoints[ep.node_id] = ep

    def endpoint(self, node_id: Hashable) -> Endpoint:
        return self._endpoints[node_id]

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self._endpoints

    # -- message delivery -------------------------------------------------
    def _delivery_delay(self, msg: Message) -> float:
        return self.latency.sample(msg.src, msg.dst) + msg.size_kb * self.kb_transfer_s

    def send_oneway(self, src: Hashable, dst: Hashable, op: str, payload: Any,
                    size_kb: float = 0.0) -> None:
        """Fire-and-forget message (used by the sync flooding protocol)."""
        if dst not in self._endpoints:
            raise KeyError(f"unknown destination endpoint {dst!r}")
        msg = Message(src=src, dst=dst, kind="oneway", op=op, payload=payload,
                      size_kb=size_kb, sent_at=self.sim.now)
        self.stats.messages += 1
        self.stats.kb += size_kb
        if self._lost():
            return

        def deliver() -> None:
            ep = self._endpoints[dst]
            if ep.online:
                ep.on_oneway(msg)

        self.sim.schedule(self._delivery_delay(msg), deliver)

    def rpc(self, src: Hashable, dst: Hashable, op: str, payload: Any = None,
            size_kb: float = 0.0, response_size_kb: float = 0.0,
            timeout: Optional[float] = None) -> Event:
        """Invoke ``op`` on ``dst``; event fires when the response returns.

        The event succeeds with the handler's return value or fails with
        :class:`RpcError` (remote exception) / :class:`RpcTimeout`
        (caller stopped waiting; the server-side work still completes).
        """
        if dst not in self._endpoints:
            raise KeyError(f"unknown destination endpoint {dst!r}")
        self._rpc_seq += 1
        rpc_id = self._rpc_seq
        result = self.sim.event(name=f"rpc:{op}:{rpc_id}")
        self._pending_rpcs[rpc_id] = result
        self.stats.rpcs_started += 1
        self.stats.count(op)

        msg = Message(src=src, dst=dst, kind="request", op=op, payload=payload,
                      size_kb=size_kb, sent_at=self.sim.now, rpc_id=rpc_id)
        self.stats.messages += 1
        self.stats.kb += size_kb
        if not self._lost():
            self.sim.schedule(
                self._delivery_delay(msg),
                lambda: self._handle_request(msg, response_size_kb))

        if timeout is not None:
            def expire() -> None:
                pending = self._pending_rpcs.pop(rpc_id, None)
                if pending is not None and not pending.triggered:
                    pending.fail(RpcTimeout(f"rpc {op!r} to {dst!r} after {timeout}s"))
            self.sim.schedule(timeout, expire)
        return result

    # -- server side --------------------------------------------------------
    def _handle_request(self, msg: Message, response_size_kb: float) -> None:
        ep = self._endpoints[msg.dst]
        if not ep.online:
            # Crashed service: the request is simply never answered;
            # the caller's timeout (if any) is its only signal.
            return
        handler = ep.handlers.get(msg.op)
        if handler is None:
            self._send_response(msg, RpcError(f"no handler for {msg.op!r} on {msg.dst!r}"),
                                ok=False, size_kb=0.0)
            return
        try:
            outcome = handler(msg.payload, msg.src)
        except Exception as err:
            self._send_response(msg, RpcError(f"{type(err).__name__}: {err}"),
                                ok=False, size_kb=0.0)
            return
        if isinstance(outcome, types.GeneratorType):
            proc = self.sim.process(outcome, name=f"handler:{msg.op}")

            def finished(ev: Event) -> None:
                if ev.ok:
                    self._send_response(msg, ev.value, ok=True, size_kb=response_size_kb)
                else:
                    self._send_response(
                        msg, RpcError(f"{type(ev.value).__name__}: {ev.value}"),
                        ok=False, size_kb=0.0)

            proc.add_callback(finished)
        else:
            self._send_response(msg, outcome, ok=True, size_kb=response_size_kb)

    def _send_response(self, request: Message, value: Any, ok: bool,
                       size_kb: float) -> None:
        resp = Message(src=request.dst, dst=request.src, kind="response",
                       op=request.op, payload=value, size_kb=size_kb,
                       sent_at=self.sim.now, rpc_id=request.rpc_id, ok=ok)
        self.stats.messages += 1
        self.stats.kb += size_kb
        if not self._lost():
            self.sim.schedule(self._delivery_delay(resp),
                              lambda: self._complete_rpc(resp))

    def _complete_rpc(self, resp: Message) -> None:
        result = self._pending_rpcs.pop(resp.rpc_id, None)
        if result is None or result.triggered:
            # Caller timed out and went on; response discarded (paper §4.3).
            return
        if resp.ok:
            self.stats.rpcs_completed += 1
            result.succeed(resp.payload)
        else:
            self.stats.rpcs_failed += 1
            result.fail(resp.payload if isinstance(resp.payload, BaseException)
                        else RpcError(str(resp.payload)))
