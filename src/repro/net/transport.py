"""Simulated message passing and RPC.

Endpoints register named operation handlers; a handler may return a
plain value (instant work) or a generator (a process that consumes
simulated time — e.g. acquiring the service container and spending the
request's service time).  The RPC result event fires when the response
message arrives back at the caller — so one RPC costs one full round
trip plus server-side time, and the multi-round-trip brokering protocol
of the paper is composed from several RPCs.

A caller-side ``timeout`` only abandons *waiting*: the server still
completes the request (and the response is discarded on arrival).  This
matches the paper's client behaviour — on a 15 s timeout the site
selector falls back to a random site while the original query keeps
running to completion inside the decision point.
"""

from __future__ import annotations

import inspect
import types
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional

from repro.sim.kernel import Event, ScheduledCall, Simulator

from repro.net.latency import LatencyModel

__all__ = ["Message", "Endpoint", "Network", "RpcError", "RpcTimeout"]


class RpcError(Exception):
    """The remote handler raised; carries the remote exception string."""


class RpcTimeout(RpcError):
    """The caller stopped waiting before the response arrived."""


@dataclass
class Message:
    """One simulated network message."""

    src: Hashable
    dst: Hashable
    kind: str                    # "request" | "response" | "oneway"
    op: str
    payload: Any
    size_kb: float = 0.0
    sent_at: float = 0.0
    rpc_id: int = 0
    ok: bool = True              # for responses: handler succeeded?
    #: Causal span context (``repro.obs.spans.SpanContext``) carried
    #: with the message so spans opened on the receiving node link to
    #: the sender's — the DES equivalent of trace-header propagation.
    #: ``None`` = untraced (spans off, or an unsampled trace).
    trace_ctx: Any = None


@dataclass
class NetworkStats:
    """Aggregate transport counters, for reporting and saturation checks.

    ``rpcs_failed`` counts *every* way an RPC can fail for the caller:
    remote errors, caller timeouts (``rpcs_timed_out``), and lost
    requests/responses that can never complete because no timeout was
    armed (``rpcs_lost``).  Timeouts used to be invisible here, which
    made the saturation detector and the run summary undercount
    failures under load.
    """

    messages: int = 0
    kb: float = 0.0
    dropped: int = 0
    rpcs_started: int = 0
    rpcs_completed: int = 0
    rpcs_failed: int = 0
    rpcs_timed_out: int = 0
    rpcs_lost: int = 0
    responses_discarded: int = 0
    per_op: dict = field(default_factory=dict)

    def count(self, op: str) -> None:
        self.per_op[op] = self.per_op.get(op, 0) + 1


class _PendingRpc:
    """Caller-side bookkeeping for one in-flight RPC."""

    __slots__ = ("event", "op", "src", "dst", "started_at", "size_kb",
                 "timeout_call")

    def __init__(self, event: Event, op: str, src: Hashable, dst: Hashable,
                 started_at: float, size_kb: float):
        self.event = event
        self.op = op
        self.src = src
        self.dst = dst
        self.started_at = started_at
        self.size_kb = size_kb
        self.timeout_call: Optional[ScheduledCall] = None


class _RpcExpiry:
    """Pooled per-RPC timeout callback (no closure per call).

    Instances are recycled through :attr:`Network._expiry_pool` when the
    timeout fires or the RPC resolves first.  Recycling while a
    *cancelled* heap entry still references the object is safe: the
    kernel never invokes cancelled entries, so a reused instance can
    only be called through its newest arming.
    """

    __slots__ = ("network", "rpc_id", "timeout_s")

    def __init__(self, network: "Network"):
        self.network = network
        self.rpc_id = 0
        self.timeout_s = 0.0

    def __call__(self) -> None:
        net = self.network
        rpc_id, timeout_s = self.rpc_id, self.timeout_s
        net._recycle_expiry(self)
        stale = net._pending_rpcs.pop(rpc_id, None)
        if stale is None:
            return
        stale.timeout_call = None
        net.stats.rpcs_failed += 1
        net.stats.rpcs_timed_out += 1
        net._finish_span(stale, rpc_id, "timeout")
        if not stale.event.triggered:
            stale.event.fail(RpcTimeout(
                f"rpc {stale.op!r} to {stale.dst!r} after {timeout_s}s"))


class Endpoint:
    """A named node attached to the network.

    Handlers receive ``(payload, src)`` and either return a result
    directly or return a generator which the transport runs as a
    process; the generator's return value becomes the RPC result.
    """

    def __init__(self, network: "Network", node_id: Hashable):
        self.network = network
        self.node_id = node_id
        self.handlers: dict[str, Callable[[Any, Hashable], Any]] = {}
        #: Ops whose handler takes a third positional parameter and so
        #: receives the request's ``trace_ctx`` (see register_handler).
        self._ctx_ops: set[str] = set()
        #: A downed endpoint swallows traffic: requests get no response
        #: (callers see their own timeouts — exactly how a crashed WAN
        #: service fails), one-way messages vanish.
        self.online = True
        network._register(self)

    def register_handler(self, op: str, fn: Callable[[Any, Hashable], Any]) -> None:
        if op in self.handlers:
            raise ValueError(f"handler for op {op!r} already registered on {self.node_id!r}")
        self.handlers[op] = fn
        # Handlers stay (payload, src) by default; one that declares a
        # third positional parameter opts into receiving the request's
        # span context — detected once here, not per message.
        try:
            positional = [
                p for p in inspect.signature(fn).parameters.values()
                if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)]
        except (TypeError, ValueError):  # builtins/partials w/o signature
            positional = []
        if len(positional) >= 3:
            self._ctx_ops.add(op)

    # Subclasses may override for non-RPC one-way messages.
    def on_oneway(self, msg: Message) -> None:  # pragma: no cover - default
        raise NotImplementedError(
            f"endpoint {self.node_id!r} received one-way {msg.op!r} "
            "but does not override on_oneway()")


class Network:
    """The WAN: delivers messages after sampled latency plus transfer time.

    ``kb_transfer_s`` models effective serialization/transfer cost per
    KB of payload — SOAP-encoded state over PlanetLab paths is slow,
    and the paper notes the brokering protocol moves "significant
    state"; this constant is a calibration input (see configs).
    """

    def __init__(self, sim: Simulator, latency: LatencyModel,
                 kb_transfer_s: float = 0.0,
                 loss_rate: float = 0.0, loss_rng=None):
        if kb_transfer_s < 0:
            raise ValueError("kb_transfer_s must be >= 0")
        if not (0.0 <= loss_rate < 1.0):
            raise ValueError("loss_rate must be in [0, 1)")
        if loss_rate > 0.0 and loss_rng is None:
            raise ValueError("loss_rate > 0 requires loss_rng")
        self.sim = sim
        self.latency = latency
        self.kb_transfer_s = kb_transfer_s
        #: Independent per-message drop probability (lossy WAN).  A
        #: dropped request or response simply never arrives; callers
        #: see their own timeouts, exactly as with a crashed peer.
        self.loss_rate = loss_rate
        self._loss_rng = loss_rng
        #: Structured fault layer (``repro.faults``): when installed,
        #: consulted once per message for per-link/per-node loss, extra
        #: delay, and duplication.  ``None`` costs one attribute check.
        self.faults = None
        self.stats = NetworkStats()
        self._endpoints: dict[Hashable, Endpoint] = {}
        self._rpc_seq = 0
        self._pending_rpcs: dict[int, _PendingRpc] = {}
        #: Free list of :class:`_RpcExpiry` callbacks (bounded; RPC
        #: timeout arming is per-call hot-path work at scale).
        self._expiry_pool: list[_RpcExpiry] = []

    def _recycle_expiry(self, expiry: _RpcExpiry) -> None:
        if len(self._expiry_pool) < 256:
            self._expiry_pool.append(expiry)

    def _lost(self) -> bool:
        if self.loss_rate == 0.0:
            return False
        lost = bool(self._loss_rng.random() < self.loss_rate)
        if lost:
            self.stats.dropped += 1
        return lost

    def _fault_delays(self, msg: Message) -> Optional[tuple]:
        """Per-copy extra delays from the fault layer; ``None`` = dropped.

        With no fault model installed every message is delivered once
        with no extra delay.  The fault model does its own counting and
        tracing; the transport only tallies the drop.
        """
        if self.faults is None:
            return (0.0,)
        fate = self.faults.on_message(msg)
        if fate.drop:
            self.stats.dropped += 1
            return None
        return fate.extra_delays

    # -- registry -------------------------------------------------------
    def _register(self, ep: Endpoint) -> None:
        if ep.node_id in self._endpoints:
            raise ValueError(f"endpoint id {ep.node_id!r} already registered")
        self._endpoints[ep.node_id] = ep

    def endpoint(self, node_id: Hashable) -> Endpoint:
        return self._endpoints[node_id]

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self._endpoints

    # -- message delivery -------------------------------------------------
    def _delivery_delay(self, msg: Message) -> float:
        return self.latency.sample(msg.src, msg.dst) + msg.size_kb * self.kb_transfer_s

    def send_oneway(self, src: Hashable, dst: Hashable, op: str, payload: Any,
                    size_kb: float = 0.0, trace_ctx: Any = None) -> None:
        """Fire-and-forget message (used by the sync flooding protocol)."""
        if dst not in self._endpoints:
            raise KeyError(f"unknown destination endpoint {dst!r}")
        msg = Message(src=src, dst=dst, kind="oneway", op=op, payload=payload,
                      size_kb=size_kb, sent_at=self.sim.now,
                      trace_ctx=trace_ctx)
        self.stats.messages += 1
        self.stats.kb += size_kb
        if self._lost():
            if self.sim.trace.enabled:
                self.sim.trace.emit("msg.drop", node=src, dst=str(dst), op=op,
                                    kind="oneway", size_kb=size_kb)
            return
        delays = self._fault_delays(msg)
        if delays is None:
            return

        def deliver() -> None:
            ep = self._endpoints[dst]
            if ep.online:
                ep.on_oneway(msg)

        for extra in delays:
            self.sim.schedule(self._delivery_delay(msg) + extra, deliver)

    def rpc(self, src: Hashable, dst: Hashable, op: str, payload: Any = None,
            size_kb: float = 0.0, response_size_kb: float = 0.0,
            timeout: Optional[float] = None,
            trace_ctx: Any = None) -> Event:
        """Invoke ``op`` on ``dst``; event fires when the response returns.

        The event succeeds with the handler's return value or fails with
        :class:`RpcError` (remote exception) / :class:`RpcTimeout`
        (caller stopped waiting; the server-side work still completes).

        Bookkeeping invariant: every entry in the pending-RPC table is
        eventually removed — on completion, on timeout, or the moment
        the transport *knows* no response can ever arrive (request or
        response dropped, or the destination is offline, with no
        timeout armed).  The timeout's :class:`ScheduledCall` is
        cancelled when the RPC resolves first, so long-timeout RPC
        storms no longer bloat the event heap.
        """
        if dst not in self._endpoints:
            raise KeyError(f"unknown destination endpoint {dst!r}")
        self._rpc_seq += 1
        rpc_id = self._rpc_seq
        result = self.sim.event(name=f"rpc:{op}:{rpc_id}")
        pending = _PendingRpc(result, op, src, dst, self.sim.now, size_kb)
        self._pending_rpcs[rpc_id] = pending
        self.stats.rpcs_started += 1
        self.stats.count(op)
        trace = self.sim.trace
        if trace.verbose and trace.enabled:
            trace.emit("rpc.send", node=src, dst=str(dst), op=op,
                       rpc_id=rpc_id, size_kb=size_kb)

        msg = Message(src=src, dst=dst, kind="request", op=op, payload=payload,
                      size_kb=size_kb, sent_at=self.sim.now, rpc_id=rpc_id,
                      trace_ctx=trace_ctx)
        self.stats.messages += 1
        self.stats.kb += size_kb
        request_lost = self._lost()
        if not request_lost:
            delays = self._fault_delays(msg)
            if delays is None:
                request_lost = True
            else:
                for extra in delays:
                    self.sim.schedule(
                        self._delivery_delay(msg) + extra,
                        lambda: self._handle_request(msg, response_size_kb))

        if timeout is not None:
            pool = self._expiry_pool
            expire = pool.pop() if (pool and self.sim.fast) else _RpcExpiry(self)
            expire.rpc_id = rpc_id
            expire.timeout_s = timeout
            pending.timeout_call = self.sim.schedule(timeout, expire)
        elif request_lost:
            # No response will ever come and no timeout will reap the
            # entry — retire it now (the caller's event stays pending
            # forever, exactly like talking to a crashed peer).
            self._abandon(rpc_id, "request_dropped")
        return result

    def _abandon(self, rpc_id: int, reason: str) -> None:
        """Retire a pending RPC that can never complete (no timeout armed)."""
        pending = self._pending_rpcs.pop(rpc_id, None)
        if pending is None:
            return
        self.stats.rpcs_failed += 1
        self.stats.rpcs_lost += 1
        self._finish_span(pending, rpc_id, reason)

    def _finish_span(self, pending: _PendingRpc, rpc_id: int,
                     outcome: str) -> None:
        """Close one RPC span: latency histogram + counters + trace.

        Emits a single compact ``rpc.span`` event per RPC (fields per
        ``repro.obs.trace.SPAN_FIELDS``) — the full intermediate chain
        is available under ``tracer.verbose``.
        """
        now = self.sim.now
        latency = now - pending.started_at
        metrics = self.sim.metrics
        if outcome in ("ok", "error", "timeout"):
            # Caller-perceived latency; lost/abandoned RPCs have none.
            metrics.histogram("rpc.latency_s").observe(latency)
        metrics.counter(f"rpc.{outcome}").inc()
        trace = self.sim.trace
        if trace.enabled:
            trace.emit_compact(
                "rpc.span", pending.src,
                (pending.op, pending.dst, rpc_id, outcome, latency,
                 pending.size_kb),
                time=now)

    # -- server side --------------------------------------------------------
    def _handle_request(self, msg: Message, response_size_kb: float) -> None:
        ep = self._endpoints[msg.dst]
        if not ep.online:
            # Crashed service: the request is simply never answered;
            # the caller's timeout (if any) is its only signal — but
            # without one the pending entry must not leak.
            self._abandon_if_unreaped(msg.rpc_id, "endpoint_offline")
            return
        trace = self.sim.trace
        if trace.verbose and trace.enabled:
            trace.emit("rpc.handle", node=msg.dst, op=msg.op,
                       rpc_id=msg.rpc_id, src=str(msg.src))
        handler = ep.handlers.get(msg.op)
        if handler is None:
            self._send_response(msg, RpcError(f"no handler for {msg.op!r} on {msg.dst!r}"),
                                ok=False, size_kb=0.0)
            return
        try:
            if msg.op in ep._ctx_ops:
                outcome = handler(msg.payload, msg.src, msg.trace_ctx)
            else:
                outcome = handler(msg.payload, msg.src)
        except Exception as err:
            self._send_response(msg, RpcError(f"{type(err).__name__}: {err}"),
                                ok=False, size_kb=0.0)
            return
        if isinstance(outcome, types.GeneratorType):
            proc = self.sim.process(outcome, name=f"handler:{msg.op}")

            def finished(ev: Event) -> None:
                if ev.ok:
                    self._send_response(msg, ev.value, ok=True, size_kb=response_size_kb)
                else:
                    self._send_response(
                        msg, RpcError(f"{type(ev.value).__name__}: {ev.value}"),
                        ok=False, size_kb=0.0)

            proc.add_callback(finished)
        else:
            self._send_response(msg, outcome, ok=True, size_kb=response_size_kb)

    def _send_response(self, request: Message, value: Any, ok: bool,
                       size_kb: float) -> None:
        resp = Message(src=request.dst, dst=request.src, kind="response",
                       op=request.op, payload=value, size_kb=size_kb,
                       sent_at=self.sim.now, rpc_id=request.rpc_id, ok=ok)
        self.stats.messages += 1
        self.stats.kb += size_kb
        trace = self.sim.trace
        if trace.verbose and trace.enabled:
            trace.emit("rpc.respond", node=request.dst, op=request.op,
                       rpc_id=request.rpc_id, ok=ok, size_kb=size_kb)
        if self._lost():
            # Dropped response: without a timeout nothing else would
            # ever reap the caller's pending entry.
            self._abandon_if_unreaped(resp.rpc_id, "response_dropped")
            return
        delays = self._fault_delays(resp)
        if delays is None:
            self._abandon_if_unreaped(resp.rpc_id, "response_dropped")
            return
        for extra in delays:
            self.sim.schedule(self._delivery_delay(resp) + extra,
                              lambda: self._complete_rpc(resp))

    def _abandon_if_unreaped(self, rpc_id: int, reason: str) -> None:
        """Abandon now unless an armed timeout will reap the entry later."""
        pending = self._pending_rpcs.get(rpc_id)
        if pending is not None and pending.timeout_call is None:
            self._abandon(rpc_id, reason)

    def _complete_rpc(self, resp: Message) -> None:
        pending = self._pending_rpcs.pop(resp.rpc_id, None)
        if pending is None or pending.event.triggered:
            # Caller timed out and went on; response discarded (paper §4.3).
            self.stats.responses_discarded += 1
            trace = self.sim.trace
            if trace.verbose and trace.enabled:
                trace.emit("rpc.discard", node=resp.dst, op=resp.op,
                           rpc_id=resp.rpc_id)
            return
        if pending.timeout_call is not None:
            # The RPC resolved first; don't leave the timeout ticking
            # in the heap (long-timeout storms used to bloat it).
            call = pending.timeout_call
            call.cancel()
            if type(call.fn) is _RpcExpiry:
                self._recycle_expiry(call.fn)
            pending.timeout_call = None
        result = pending.event
        if resp.ok:
            self.stats.rpcs_completed += 1
            self._finish_span(pending, resp.rpc_id, "ok")
            result.succeed(resp.payload)
        else:
            self.stats.rpcs_failed += 1
            self._finish_span(pending, resp.rpc_id, "error")
            result.fail(resp.payload if isinstance(resp.payload, BaseException)
                        else RpcError(str(resp.payload)))
