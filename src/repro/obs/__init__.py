"""Observability: structured tracing, counters, and histograms.

The paper's entire evaluation is *measurement* — DiPerF-style
throughput, response-time, and accuracy curves per decision point — so
the simulator carries a first-class observability layer rather than
ad-hoc print statements:

* :mod:`repro.obs.trace` — a ring-buffered structured event trace
  (sim-time, node, kind, detail) with pluggable sinks, including JSONL
  export.  Disabled by default; the hot layers guard every emission so
  the disabled cost is one attribute check.
* :mod:`repro.obs.counters` — always-on named counters and fixed-bucket
  histograms (p50/p90/p99 without numpy) collected in a
  :class:`~repro.obs.counters.MetricsRegistry`.
* :mod:`repro.obs.spans` — causal span tracing (Dapper-style context
  propagation over the DES transport): per-job lifecycle spans, DP
  decide spans annotated with view staleness, sync-round spans, with
  JSONL and Chrome ``trace_event`` export.  Opt-in, deterministically
  sampled, byte-identical across same-seed runs.

One :class:`~repro.obs.trace.Tracer` and one
:class:`~repro.obs.counters.MetricsRegistry` hang off every
:class:`~repro.sim.kernel.Simulator`; the transport, engine, sync
protocol, and monitor all emit through them, which is what makes the
formerly *silent* failure paths (dead periodic chains, leaked RPCs,
stale USLA usage) visible in the run summary.
"""

from repro.obs.counters import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
)
from repro.obs.spans import Span, SpanContext, SpanRecorder, chrome_trace
from repro.obs.trace import JsonlSink, TraceEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
]
