"""Observability: structured tracing, counters, and histograms.

The paper's entire evaluation is *measurement* — DiPerF-style
throughput, response-time, and accuracy curves per decision point — so
the simulator carries a first-class observability layer rather than
ad-hoc print statements:

* :mod:`repro.obs.trace` — a ring-buffered structured event trace
  (sim-time, node, kind, detail) with pluggable sinks, including JSONL
  export.  Disabled by default; the hot layers guard every emission so
  the disabled cost is one attribute check.
* :mod:`repro.obs.counters` — always-on named counters and fixed-bucket
  histograms (p50/p90/p99 without numpy) collected in a
  :class:`~repro.obs.counters.MetricsRegistry`.
* :mod:`repro.obs.spans` — causal span tracing (Dapper-style context
  propagation over the DES transport): per-job lifecycle spans, DP
  decide spans annotated with view staleness, sync-round spans, with
  JSONL and Chrome ``trace_event`` export.  Opt-in, deterministically
  sampled, byte-identical across same-seed runs.
* :mod:`repro.obs.timeline` — the time-resolved telemetry plane: a
  DES-clock :class:`~repro.obs.timeline.TimelineSampler` taking one
  unified :meth:`~repro.obs.counters.MetricsRegistry.collect` pass per
  tick into a bounded series with JSONL / OpenMetrics export (what
  ``digruber top`` replays or live-tails).
* :mod:`repro.obs.flight` — the flight recorder: a bounded black box
  (trace tail, open spans, recent snapshots, kernel + checker state)
  dumped to ``flight-<seed>.json`` on crash, strict-check violation,
  or SIGTERM; analyzed by ``digruber postmortem``.
* :mod:`repro.obs.profiler` — a sampling wall-clock profiler that
  attributes CPU time to subsystem buckets (dispatch / site-drain /
  sync / decide / control) for ``BENCH_kernel.json``.

One :class:`~repro.obs.trace.Tracer` and one
:class:`~repro.obs.counters.MetricsRegistry` hang off every
:class:`~repro.sim.kernel.Simulator`; the transport, engine, sync
protocol, and monitor all emit through them, which is what makes the
formerly *silent* failure paths (dead periodic chains, leaked RPCs,
stale USLA usage) visible in the run summary.
"""

from repro.obs.counters import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
)
from repro.obs.flight import FlightRecorder, Terminated
from repro.obs.spans import Span, SpanContext, SpanRecorder, chrome_trace
from repro.obs.timeline import TimelineSampler, load_timeline, to_openmetrics
from repro.obs.trace import JsonlSink, TraceEvent, Tracer

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "Terminated",
    "TimelineSampler",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "load_timeline",
    "to_openmetrics",
]
