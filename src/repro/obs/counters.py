"""Always-on counters and fixed-bucket histograms (no numpy).

The GridSim lineage of simulation toolkits earns trust through built-in
statistics recording; here every :class:`~repro.sim.kernel.Simulator`
carries a :class:`MetricsRegistry` that the transport, kernel, and
brokering layers feed.  Histograms use fixed bucket boundaries so an
observation is one ``bisect`` plus two adds — cheap enough to leave on
even in benchmark runs — and report p50/p90/p99 by linear interpolation
within the containing bucket.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "LATENCY_BUCKETS_S"]

#: Default latency buckets (seconds): 1 ms … 512 s, exponential.
#: Spans LAN sub-millisecond chatter up to multi-minute WAN timeouts.
LATENCY_BUCKETS_S: tuple[float, ...] = tuple(
    0.001 * 2 ** i for i in range(20))


class Counter:
    """A named monotonic tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A named point-in-time level (queue depth, client count, live DPs).

    Unlike a :class:`Counter` it moves in both directions; the control
    plane samples system levels into gauges so the autoscale planner
    and ``digruber trace analyze`` read one signal path instead of each
    re-deriving depth from spans.  ``updated_at`` carries the sim time
    of the last ``set`` so a stale sample is distinguishable from a
    current one.
    """

    __slots__ = ("name", "value", "updated_at")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.updated_at: Optional[float] = None

    def set(self, value: float, at: Optional[float] = None) -> None:
        self.value = value
        if at is not None:
            self.updated_at = at

    def __float__(self) -> float:
        return float(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-boundary histogram with streaming sum/min/max.

    ``bounds`` are ascending bucket *upper* edges; observations above
    the last bound land in an overflow bucket whose quantile estimate
    is the largest value actually seen.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str,
                 bounds: Sequence[float] = LATENCY_BUCKETS_S):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be a non-empty ascending sequence")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.buckets = [0] * (len(self.bounds) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> Optional[float]:
        """Estimated p-th percentile (0 < p <= 100).

        Linear interpolation inside the containing bucket; exact for
        the min/max endpoints, bucket-resolution otherwise.  Returns
        ``None`` on an empty histogram — a fabricated 0.0 used to leak
        into summaries as a real-looking latency.
        """
        if not (0.0 < p <= 100.0):
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if self.count == 0:
            return None
        rank = p / 100.0 * self.count
        cum = 0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            if cum + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else (
                    self.min if self.min is not None else 0.0)
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                lo = max(lo, self.min) if self.min is not None else lo
                hi = min(hi, self.max) if self.max is not None else hi
                frac = (rank - cum) / n
                return lo + (hi - lo) * frac
            cum += n
        return self.max if self.max is not None else 0.0  # pragma: no cover

    #: Quantiles reported by :meth:`summary`, ascending.
    SUMMARY_QUANTILES: tuple[float, ...] = (50.0, 90.0, 95.0, 99.0)

    def summary(self) -> dict:
        """One-pass summary: count/sum/min/mean/p50/p90/p95/p99/max.

        All quantiles come out of a *single* walk over the buckets
        (ascending targets against the running cumulative count), so
        per-tick telemetry sampling costs one scan per histogram
        instead of one :meth:`percentile` scan per quantile.  Empty
        histograms report ``None`` throughout (matching
        :meth:`percentile`) rather than fabricating zeros.
        """
        quantiles = self.SUMMARY_QUANTILES
        out = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean if self.count else None,
            "min": self.min,
        }
        if self.count == 0:
            for q in quantiles:
                out[f"p{q:g}"] = None
            out["max"] = None
            return out
        ranks = [q / 100.0 * self.count for q in quantiles]
        values: list[Optional[float]] = [None] * len(ranks)
        qi = 0
        cum = 0
        n_bounds = len(self.bounds)
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            while qi < len(ranks) and cum + n >= ranks[qi]:
                lo = self.bounds[i - 1] if i > 0 else (
                    self.min if self.min is not None else 0.0)
                hi = self.bounds[i] if i < n_bounds else self.max
                lo = max(lo, self.min) if self.min is not None else lo
                hi = min(hi, self.max) if self.max is not None else hi
                frac = (ranks[qi] - cum) / n
                values[qi] = lo + (hi - lo) * frac
                qi += 1
            if qi == len(ranks):
                break
            cum += n
        for j in range(qi, len(ranks)):  # pragma: no cover - fp slack
            values[j] = self.max
        for q, v in zip(quantiles, values):
            out[f"p{q:g}"] = v
        out["max"] = self.max
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.4g}>"


class MetricsRegistry:
    """Named counters + gauges + histograms for one simulator instance."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        g = self.gauges.get(name)
        return float(g.value) if g is not None else default

    def histogram(self, name: str,
                  bounds: Sequence[float] = LATENCY_BUCKETS_S) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, bounds)
        return h

    def counter_value(self, name: str) -> int:
        c = self.counters.get(name)
        return c.value if c is not None else 0

    def snapshot(self) -> dict:
        """Plain-dict view (JSON-ready) of everything recorded."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {n: h.summary()
                           for n, h in sorted(self.histograms.items())},
        }

    def collect(self, now: Optional[float] = None) -> dict:
        """One unified sampling pass over everything registered.

        This is the telemetry plane's single read path (the
        :class:`~repro.obs.timeline.TimelineSampler` and the control
        plane's :class:`~repro.control.signals.SignalBus` both end
        here): counters and gauges are copied as-is, histograms go
        through the one-pass :meth:`Histogram.summary`.  Strictly
        read-only — collecting never mutates a metric, schedules an
        event, or draws randomness, so a sampled run is event-identical
        to an unsampled one.
        """
        return {
            "t": now,
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {n: h.summary()
                           for n, h in sorted(self.histograms.items())},
        }
