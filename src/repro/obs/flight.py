"""Flight recorder: a bounded black box dumped on abnormal exit.

A real brokering service that dies mid-run leaves operators a core
dump; a simulation that dies mid-run usually leaves nothing — the
in-memory trace ring, open spans, and checker state all evaporate with
the process.  The :class:`FlightRecorder` keeps references to the live
run (it records nothing per-event, so it is zero-cost while the run is
healthy) and, on crash / strict-check violation / SIGTERM, serializes
one bounded JSON "black box":

* run meta (config name, seed, sim time reached, abort reason);
* the exception (type, message, traceback text);
* kernel state (heap size, dead entries, events executed, processes);
* the newest N trace-ring events and every open span;
* the newest telemetry snapshots (when a timeline sampler is attached);
* per-DP deployment state and aggregate client state;
* checker tallies and the recorded violations.

``digruber postmortem <dump>`` renders the result; SIGTERM conversion
lives in :func:`install_sigterm_handler` (the CLI installs it so a
killed long run still leaves its box behind).
"""

from __future__ import annotations

import json
import signal
import traceback
from typing import Any, Optional

__all__ = ["FlightRecorder", "Terminated", "install_sigterm_handler",
           "abort_reason", "load_flight", "postmortem_report"]


class Terminated(BaseException):
    """SIGTERM, surfaced as an exception so ``finally`` blocks run.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so
    ordinary ``except Exception`` recovery paths don't swallow it.
    """


def install_sigterm_handler() -> None:
    """Convert SIGTERM into a :class:`Terminated` raise.

    Only callable from the main thread (a CPython restriction on
    ``signal.signal``); the CLI run path installs it once, before the
    clock starts.
    """
    def _handler(signum, frame):  # pragma: no cover - needs a real signal
        raise Terminated(f"signal {signum}")
    signal.signal(signal.SIGTERM, _handler)


def abort_reason(exc: BaseException) -> str:
    """Classify an abort for the dump's ``reason`` field."""
    from repro.check.invariants import InvariantViolation
    if isinstance(exc, InvariantViolation):
        return "strict-check"
    if isinstance(exc, Terminated):
        return "sigterm"
    if isinstance(exc, KeyboardInterrupt):
        return "interrupt"
    return "crash"


class FlightRecorder:
    """Bounded black box over a built experiment.

    Holds references only — nothing is copied until :meth:`dump`, so an
    armed recorder adds zero work to a healthy run.
    """

    def __init__(self, built: Any, path: str = "",
                 last_n_trace: int = 256, last_n_snapshots: int = 16,
                 last_n_violations: int = 32):
        self.built = built
        self.path = path or f"flight-{built.config.seed}.json"
        self.last_n_trace = last_n_trace
        self.last_n_snapshots = last_n_snapshots
        self.last_n_violations = last_n_violations
        self.dumped_to: Optional[str] = None

    # -- capture --------------------------------------------------------
    def snapshot(self, reason: str,
                 exc: Optional[BaseException] = None) -> dict:
        """Assemble the black-box document (pure read, JSON-ready)."""
        built = self.built
        sim = built.sim
        config = built.config
        doc: dict = {
            "flight": 1,  # format version
            "reason": reason,
            "meta": {
                "name": config.name,
                "seed": config.seed,
                "duration_s": config.duration_s,
                "decision_points": config.decision_points,
                "n_clients": config.n_clients,
                "t_abort": sim.now,
                "progress": (sim.now / config.duration_s
                             if config.duration_s else 0.0),
            },
            "kernel": {
                "events_executed": sim.events_executed,
                "heap_len": len(sim._heap),
                "heap_dead": sim._dead,
                "heap_peak": sim.heap_peak,
                "processes": len(sim._processes),
            },
        }
        if exc is not None:
            doc["exception"] = {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": "".join(traceback.format_exception(
                    type(exc), exc, exc.__traceback__)),
            }
        doc["trace_tail"] = [ev.to_dict()
                             for ev in sim.trace.events()[-self.last_n_trace:]]
        doc["open_spans"] = [s.to_dict() for s in sim.spans.open_spans]
        sampler = getattr(built, "sampler", None)
        doc["snapshots"] = (sampler.tail(self.last_n_snapshots)
                            if sampler is not None else [])
        doc["deployment"] = {
            dp_id: {
                "online": bool(dp.online),
                "queue_depth": dp.container.queue_len,
                "in_service": dp.container.in_service,
                "completed_ops": dp.container.completed_ops,
            }
            for dp_id, dp in built.deployment.decision_points.items()
        }
        doc["clients"] = {
            "n": len(built.clients),
            "handled": sum(c.n_handled for c in built.clients),
            "timeouts": sum(c.n_fallback_timeout for c in built.clients),
            "backlogged": sum(c.backlog_len for c in built.clients),
        }
        checker = built.checker
        if checker is not None:
            doc["checker"] = {
                "checks_run": checker.checks_run,
                "strict": checker.strict,
                "n_violations": len(checker.violations),
                "violations": [
                    {"t": v.time, "rule": v.rule, "subject": v.subject,
                     "detail": v.detail}
                    for v in checker.violations[-self.last_n_violations:]
                ],
            }
        return doc

    def dump(self, reason: str,
             exc: Optional[BaseException] = None) -> str:
        """Write the black box; returns the path.  Never raises — the
        recorder must not mask the original failure."""
        try:
            doc = self.snapshot(reason, exc)
            with open(self.path, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=1)
                fh.write("\n")
            self.dumped_to = self.path
        except Exception:  # pragma: no cover - best-effort by contract
            pass
        return self.path


# -- postmortem analysis -----------------------------------------------------

def load_flight(path: str) -> dict:
    """Read a flight dump back, validating the format marker."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "flight" not in doc:
        raise ValueError(f"{path}: not a flight-recorder dump "
                         "(missing 'flight' format marker)")
    return doc


def postmortem_report(doc: dict) -> str:
    """Human-readable analysis of one flight dump.

    Leads with the abort cause and how far the run got, then works
    outward: checker violations, the last trace events before the
    abort, open spans (work in flight when the run died), deployment
    and kernel state, and the newest telemetry snapshots' headline
    gauges.
    """
    meta = doc.get("meta", {})
    lines = [
        f"== postmortem: {meta.get('name', '?')} "
        f"seed={meta.get('seed', '?')} ==",
        f"reason: {doc.get('reason', '?')}  aborted at "
        f"t={meta.get('t_abort', 0.0):.1f}s of {meta.get('duration_s', 0):g}s "
        f"({100.0 * meta.get('progress', 0.0):.0f}% through)",
    ]
    exc = doc.get("exception")
    if exc:
        lines.append(f"exception: {exc.get('type')}: {exc.get('message')}")
        tb = (exc.get("traceback") or "").strip().splitlines()
        if tb:
            lines.append("  " + tb[-1].strip())
    kernel = doc.get("kernel", {})
    lines.append(
        f"kernel: {kernel.get('events_executed', 0):,} events executed, "
        f"heap {kernel.get('heap_len', 0)} "
        f"(dead {kernel.get('heap_dead', 0)}, "
        f"peak {kernel.get('heap_peak', 0)}), "
        f"{kernel.get('processes', 0)} live processes")
    checker = doc.get("checker")
    if checker:
        lines.append(
            f"checker: {checker.get('n_violations', 0)} violation(s) over "
            f"{checker.get('checks_run', 0)} passes"
            + (" [strict]" if checker.get("strict") else ""))
        for v in checker.get("violations", [])[-5:]:
            lines.append(f"  [t={v['t']:.1f}] {v['rule']}({v['subject']}): "
                         f"{v['detail']}")
    dps = doc.get("deployment", {})
    if dps:
        lines.append("deployment:")
        for dp_id in sorted(dps):
            d = dps[dp_id]
            state = "up" if d.get("online") else "DOWN"
            lines.append(
                f"  {dp_id}: {state} queue={d.get('queue_depth', 0)} "
                f"serving={d.get('in_service', 0)} "
                f"ops={d.get('completed_ops', 0)}")
    clients = doc.get("clients", {})
    if clients:
        lines.append(
            f"clients: {clients.get('n', 0)} hosts, "
            f"handled={clients.get('handled', 0)} "
            f"timeouts={clients.get('timeouts', 0)} "
            f"backlogged={clients.get('backlogged', 0)}")
    spans = doc.get("open_spans", [])
    if spans:
        lines.append(f"open spans at abort ({len(spans)}):")
        for s in spans[:8]:
            lines.append(f"  {s.get('name', '?')} node={s.get('node', '?')} "
                         f"started t={s.get('start', 0.0):.1f}")
        if len(spans) > 8:
            lines.append(f"  ... and {len(spans) - 8} more")
    tail = doc.get("trace_tail", [])
    if tail:
        lines.append(f"last trace events ({len(tail)} captured):")
        for ev in tail[-8:]:
            lines.append(f"  [t={ev.get('t', 0.0):.3f}] {ev.get('kind')} "
                         f"node={ev.get('node')}")
    snaps = doc.get("snapshots", [])
    if snaps:
        last = snaps[-1]
        gauges = last.get("gauges", {})
        lines.append(
            f"telemetry: {len(snaps)} snapshot(s) captured, newest at "
            f"t={last.get('t', 0.0):.1f}s "
            f"(grid.util={gauges.get('grid.util', 0.0):.3g}, "
            f"backlog={gauges.get('control.client_backlog', 0):g})")
    return "\n".join(lines)
