"""Sampling wall-clock profiler with subsystem attribution.

Answers "where does a simulated second actually go?" — the per-event
cost model the scale benches optimize is opaque without it.  A daemon
thread samples the target thread's Python stack (``sys._current_frames``)
at a fixed wall-clock cadence and attributes each sample to a coarse
subsystem bucket by walking the stack innermost-out and matching frame
filenames:

``dispatch`` (kernel run loop), ``site-drain`` (site schedulers),
``sync`` (dissemination protocol), ``decide`` (brokering engine +
selectors), ``control`` (autoscale plane), ``check`` (invariant
checker), ``telemetry`` (obs sampling/export), ``net`` (transport),
``workload`` (clients + generators), ``other``.

This is *host* profiling, not simulation state: it reads the wall
clock and thread tables by design, never touches the DES, and runs
only inside the benchmark harness (``benchmarks/run_all.py`` records
its report into ``BENCH_kernel.json``).  The deliberate wall-clock
reads carry ``# det: ok`` lint suppressions.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Optional

__all__ = ["SubsystemProfiler", "BUCKET_PATTERNS"]

#: Ordered (bucket, filename fragments) — first innermost match wins.
BUCKET_PATTERNS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("site-drain", ("grid/site", "grid\\site")),
    ("sync", ("core/sync", "core\\sync")),
    ("decide", ("core/engine", "core/selectors", "core/broker",
                "core\\engine", "core\\selectors", "core\\broker")),
    ("control", ("/control/", "\\control\\")),
    ("check", ("/check/", "\\check\\")),
    ("telemetry", ("/obs/", "\\obs\\")),
    ("net", ("/net/", "\\net\\")),
    ("workload", ("/workloads/", "core/client", "\\workloads\\",
                  "core\\client")),
    ("dispatch", ("sim/kernel", "sim\\kernel")),
)


def _classify(frame) -> str:
    """Attribute one stack to a bucket: innermost matching frame wins.

    ``dispatch`` (the kernel run loop) sits under everything, so it
    only attracts samples whose inner frames matched nothing more
    specific — i.e. genuine heap/dispatch overhead, not work the
    kernel called into.
    """
    f = frame
    while f is not None:
        filename = f.f_code.co_filename
        for bucket, fragments in BUCKET_PATTERNS:
            for frag in fragments:
                if frag in filename:
                    return bucket
        f = f.f_back
    return "other"


class SubsystemProfiler:
    """Samples one thread's stack on a wall-clock cadence.

    Usage::

        with SubsystemProfiler(interval_s=0.002) as prof:
            run_experiment(config)
        report = prof.report()

    The profiled thread is whichever thread calls :meth:`start` (or
    enters the context manager).  Overhead is one stack walk per
    sample on a separate thread — the target thread is never paused,
    so this is safe to leave on for whole benchmark runs.
    """

    def __init__(self, interval_s: float = 0.002):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.interval_s = interval_s
        self.samples: dict[str, int] = {}
        self.total_samples = 0
        self.wall_s = 0.0
        self._target: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def start(self) -> "SubsystemProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        self._target = threading.get_ident()
        self._stop.clear()
        self._t0 = time.perf_counter()  # det: ok - host profiling
        self._thread = threading.Thread(target=self._sample_loop,
                                        name="subsystem-profiler",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
        self.wall_s += time.perf_counter() - self._t0  # det: ok - host profiling

    def _sample_loop(self) -> None:
        target = self._target
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(target)
            if frame is None:  # pragma: no cover - target thread gone
                continue
            bucket = _classify(frame)
            self.samples[bucket] = self.samples.get(bucket, 0) + 1
            self.total_samples += 1

    def __enter__(self) -> "SubsystemProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def report(self) -> dict:
        """JSON-ready attribution: per-bucket samples and percentages."""
        total = self.total_samples
        buckets = {
            name: {"samples": n,
                   "pct": round(100.0 * n / total, 2) if total else 0.0}
            for name, n in sorted(self.samples.items(),
                                  key=lambda kv: -kv[1])
        }
        return {"interval_s": self.interval_s, "samples": total,
                "wall_s": round(self.wall_s, 4), "buckets": buckets}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SubsystemProfiler samples={self.total_samples} "
                f"buckets={len(self.samples)}>")
