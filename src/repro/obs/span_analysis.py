"""Offline analysis of exported span files (the ``digruber trace`` CLI).

Operates on the JSONL produced by
:meth:`~repro.obs.spans.SpanRecorder.export_jsonl` — one span dict per
line — so analyses run on artifacts without re-running the simulation.
Stdlib-only on purpose: a span file from a cluster run should be
inspectable anywhere.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Optional

from repro.metrics.report import format_table
from repro.obs.spans import write_chrome

__all__ = ["load_spans", "analyze_report", "critical_path_report",
           "slowest_report", "export_chrome_file"]


def load_spans(path: str, tolerant: bool = False) -> list[dict]:
    """Read a span JSONL export (order preserved).

    Strict by default: a malformed line raises ``ValueError`` with the
    path and line number, because silently dropping spans corrupts the
    critical-path analysis.  ``tolerant=True`` skips undecodable lines
    instead — for exports truncated mid-line by a killed run, where the
    valid prefix is still worth analyzing.
    """
    spans = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                if tolerant:
                    continue
                raise ValueError(
                    f"{path}:{lineno}: not a span JSONL line: {exc}") from exc
            if not isinstance(doc, dict):
                if tolerant:
                    continue
                raise ValueError(
                    f"{path}:{lineno}: not a span JSONL line: "
                    f"expected an object, got {type(doc).__name__}")
            spans.append(doc)
    return spans


def _duration(span: dict) -> Optional[float]:
    end = span.get("end")
    return None if end is None else end - span["start"]


def _children_index(spans: list[dict]) -> dict[Optional[str], list[dict]]:
    children: dict[Optional[str], list[dict]] = defaultdict(list)
    for s in spans:
        children[s.get("parent_id")].append(s)
    for kids in children.values():
        kids.sort(key=lambda s: (s["start"], s["span_id"]))
    return children


def _by_trace(spans: list[dict]) -> dict[str, list[dict]]:
    traces: dict[str, list[dict]] = defaultdict(list)
    for s in spans:
        traces[s["trace_id"]].append(s)
    return traces


def _stats_row(durations: list[float]) -> tuple:
    if not durations:
        return (0, None, None, None)
    return (len(durations), sum(durations) / len(durations),
            min(durations), max(durations))


def analyze_report(spans: list[dict]) -> str:
    """Aggregate report: span taxonomy, outcomes, staleness, sync lag."""
    if not spans:
        return "no spans"
    lines = []
    traces = _by_trace(spans)
    orphans = [s for s in spans if s.get("orphan")]
    lines.append(f"spans={len(spans)} traces={len(traces)} "
                 f"orphans={len(orphans)}")

    per_name: dict[str, list[float]] = defaultdict(list)
    for s in spans:
        d = _duration(s)
        if d is not None:
            per_name[s["name"]].append(d)
    rows = [(name, *_stats_row(ds)) for name, ds in sorted(per_name.items())]
    lines.append(format_table(
        ("span", "count", "mean_s", "min_s", "max_s"), rows, col_width=12))

    outcomes: dict[str, int] = defaultdict(int)
    for s in spans:
        if s.get("parent_id") is None and s["name"] == "submit":
            outcomes[str(s["attrs"].get("outcome", "open"))] += 1
    if outcomes:
        lines.append("submit outcomes: " + " ".join(
            f"{k}={v}" for k, v in sorted(outcomes.items())))

    staleness = [s["attrs"]["staleness_s"] for s in spans
                 if s["name"] == "decide"
                 and s["attrs"].get("staleness_s") is not None]
    if staleness:
        n, mean, lo, hi = _stats_row(staleness)
        lines.append(f"decide staleness_s: n={n} mean={mean:.2f} "
                     f"min={lo:.2f} max={hi:.2f}")

    # Sync propagation: receive instant minus the round's start.
    by_id = {s["span_id"]: s for s in spans}
    lags = []
    for s in spans:
        if s["name"] != "sync.recv":
            continue
        parent = by_id.get(s.get("parent_id"))
        if parent is not None:
            lags.append(s["start"] - parent["start"])
    if lags:
        n, mean, lo, hi = _stats_row(lags)
        lines.append(f"sync round->recv lag_s: n={n} mean={mean:.3f} "
                     f"min={lo:.3f} max={hi:.3f}")
    return "\n".join(lines)


def _find_job_root(spans: list[dict], jid: int) -> Optional[dict]:
    for s in spans:
        if (s.get("parent_id") is None and s["name"] == "submit"
                and s["attrs"].get("jid") == jid):
            return s
    return None


def _render_tree(span: dict, children: dict, lines: list[str],
                 critical_ids: set, depth: int) -> None:
    d = _duration(span)
    dur = "open" if d is None else f"{d:.3f}s"
    attrs = span.get("attrs", {})
    notes = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    mark = "*" if span["span_id"] in critical_ids else " "
    lines.append(f"{mark} {'  ' * depth}{span['name']} "
                 f"[{span['node']}] t={span['start']:.3f} dur={dur}"
                 + (f"  {notes}" if notes else ""))
    for child in children.get(span["span_id"], []):
        _render_tree(child, children, lines, critical_ids, depth + 1)


def _critical_ids(root: dict, children: dict) -> set:
    """Span ids on the critical path: at each level, the child whose
    interval ends last (open children sort last — they never resolved)."""
    ids = {root["span_id"]}
    node = root
    while True:
        kids = children.get(node["span_id"], [])
        if not kids:
            return ids
        node = max(kids, key=lambda s: (s["end"] is None,
                                        s["end"] if s["end"] is not None
                                        else s["start"]))
        ids.add(node["span_id"])


def critical_path_report(spans: list[dict], jid: int) -> str:
    """The full causal tree for one job, critical path marked ``*``."""
    root = _find_job_root(spans, jid)
    if root is None:
        known = sorted(s["attrs"]["jid"] for s in spans
                       if s.get("parent_id") is None
                       and s["name"] == "submit"
                       and "jid" in s["attrs"])[:20]
        return (f"no submit trace for job {jid} "
                f"(first recorded jids: {known})")
    children = _children_index(spans)
    lines = [f"job {jid} trace {root['trace_id']} "
             f"(* = critical path, times are sim seconds)"]
    _render_tree(root, children, lines, _critical_ids(root, children), 0)
    return "\n".join(lines)


def slowest_report(spans: list[dict], n: int = 10) -> str:
    """The ``n`` slowest finished job traces by submit-root duration."""
    roots = [s for s in spans
             if s.get("parent_id") is None and s["name"] == "submit"
             and s.get("end") is not None]
    if not roots:
        return "no finished submit traces"
    roots.sort(key=lambda s: _duration(s), reverse=True)
    rows = []
    for s in roots[:n]:
        a = s["attrs"]
        rows.append((a.get("jid", "?"), s["node"], f"{_duration(s):.3f}",
                     str(a.get("outcome", "?")), a.get("vo", "?"),
                     str(a.get("dp", "?"))))
    return format_table(("jid", "host", "total_s", "outcome", "vo", "dp"),
                        rows, col_width=14)


def export_chrome_file(spans_path: str, out_path: str) -> int:
    """JSONL export → Chrome ``trace_event`` JSON (open in Perfetto)."""
    return write_chrome(load_spans(spans_path), out_path)
