"""Causal span tracing across the brokering plane.

Dapper-style distributed tracing adapted to a discrete-event simulator:
a :class:`SpanRecorder` (one per :class:`~repro.sim.kernel.Simulator`)
records :class:`Span` intervals on the *sim* clock, and a
:class:`SpanContext` — a ``(trace_id, span_id)`` pair — travels on
:class:`~repro.net.transport.Message` as ``trace_ctx`` so child spans
created on remote nodes link to their parents.  Because sim processes
are plain generators there is no ambient "current span"; context is
always explicit, exactly like the wire propagation it models.

Determinism is a hard invariant:

* span/trace IDs come from a dedicated seeded RNG stream (the runner
  installs ``rng.stream("spans")`` via :meth:`SpanRecorder.seed_ids`);
  without one, a deterministic counter is used;
* recording never schedules sim events and never touches shared RNG
  streams, so a run with spans on is event-for-event identical to the
  same run with spans off;
* head-based sampling (``sample_every``) decides at root creation from
  a deterministic counter — an unsampled root returns ``None`` and its
  whole causal subtree records nothing.

Spans still open at export time are **flagged** (``"orphan": true``),
never dropped: an orphan means the operation out-lived the run window
or its causal chain was severed (lost message, crashed peer) — both
signals the chaos analyses want to see.
"""

from __future__ import annotations

import json
from typing import Any, Callable, NamedTuple, Optional

__all__ = ["Span", "SpanContext", "SpanRecorder", "chrome_trace"]

#: IDs are drawn from the RNG in blocks so the per-span cost is a list
#: pop, not a numpy scalar draw.
_ID_BLOCK = 128


class SpanContext(NamedTuple):
    """The portable identity of a span: what travels on a Message."""

    trace_id: str
    span_id: str


class Span:
    """One timed operation on one node, linked into a trace tree."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "node",
                 "start", "end", "attrs")

    def __init__(self, trace_id: str, span_id: str, parent_id: Optional[str],
                 name: str, node: Any, start: float,
                 attrs: Optional[dict] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.attrs: dict = attrs if attrs is not None else {}

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def duration_s(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        """JSON-ready dict; key order is fixed for byte-stable export."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": str(self.node),
            "start": float(self.start),
            "end": None if self.end is None else float(self.end),
            "orphan": self.end is None,
            "attrs": {k: _attr_jsonable(v)
                      for k, v in sorted(self.attrs.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self.end is None else f"{self.duration_s:.4g}s"
        return (f"<Span {self.name} {self.span_id} node={self.node} "
                f"{state}>")


def _attr_jsonable(value: Any) -> Any:
    """Coerce one attribute value to a JSON-native type.

    Numpy scalars (``np.int64`` and ``np.float32`` are *not*
    ``int``/``float`` subclasses) are unwrapped via their ``item()``;
    anything else non-primitive degrades to ``str``.
    """
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):  # np.float64 is a float subclass
        return float(value)
    item = getattr(value, "item", None)
    if callable(item):
        try:
            unwrapped = item()
        except (TypeError, ValueError):  # pragma: no cover - exotic array
            return str(value)
        if isinstance(unwrapped, (str, int, float, bool)):
            return unwrapped
    return str(value)


class SpanRecorder:
    """Records causal spans on the sim clock; off (and free) by default.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current sim time.
    enabled:
        Off by default; every call site pre-guards on this flag.
    sample_every:
        Head-based sampling: record every Nth *root* span (and, by
        context propagation, its whole subtree).  1 = record all.
    """

    __slots__ = ("enabled", "clock", "sample_every", "_spans",
                 "_id_rng", "_id_pool", "_id_counter",
                 "roots_seen", "roots_sampled", "roots_dropped")

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled: bool = False, sample_every: int = 1):
        self.enabled = enabled
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.sample_every = max(int(sample_every), 1)
        # One append-only list in start order (the deterministic total
        # order); open vs finished is just ``end is None``.  No
        # per-span dict bookkeeping — this path is on the 10% budget.
        self._spans: list[Span] = []
        self._id_rng = None
        self._id_pool: list[int] = []
        self._id_counter = 0
        self.roots_seen = 0
        self.roots_sampled = 0
        self.roots_dropped = 0

    # -- identity -------------------------------------------------------
    def seed_ids(self, rng) -> None:
        """Draw span/trace IDs from a seeded ``numpy.random.Generator``.

        The runner installs the registry's dedicated ``"spans"`` stream
        so ID generation never perturbs any other component's draws.
        """
        self._id_rng = rng
        self._id_pool = []

    def _new_id(self) -> str:
        if self._id_rng is not None:
            pool = self._id_pool
            if not pool:
                self._id_pool = pool = self._id_rng.integers(
                    0, 2 ** 64, size=_ID_BLOCK, dtype="uint64").tolist()
                pool.reverse()
            return f"{pool.pop():016x}"
        self._id_counter += 1
        return f"{self._id_counter:016x}"

    # -- recording ------------------------------------------------------
    def start_trace(self, name: str, node: Any,
                    start: Optional[float] = None,
                    **attrs: Any) -> Optional[Span]:
        """Open a root span (a new trace); ``None`` when off/unsampled."""
        if not self.enabled:
            return None
        self.roots_seen += 1
        if (self.roots_seen - 1) % self.sample_every:
            self.roots_dropped += 1
            return None
        self.roots_sampled += 1
        trace_id = self._new_id()
        span = Span(trace_id, self._new_id(), None, name, node,
                    self.clock() if start is None else float(start), attrs)
        self._spans.append(span)
        return span

    def start_span(self, name: str, node: Any,
                   parent: Any, start: Optional[float] = None,
                   **attrs: Any) -> Optional[Span]:
        """Open a child span under ``parent`` (a Span, a SpanContext, or
        a plain ``(trace_id, span_id)`` tuple).

        ``parent=None`` returns ``None`` — that is how an unsampled (or
        span-off) trace silently turns off its whole subtree, locally
        and across the wire.
        """
        if not self.enabled or parent is None:
            return None
        if isinstance(parent, Span):
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = parent[0], parent[1]
        span = Span(trace_id, self._new_id(), parent_id, name, node,
                    self.clock() if start is None else float(start), attrs)
        self._spans.append(span)
        return span

    def record(self, name: str, node: Any, parent: Any,
               start: float, end: float, **attrs: Any) -> Optional[Span]:
        """One-shot retroactive span (e.g. a site queue wait whose start
        is only known in hindsight); opened and finished atomically."""
        span = self.start_span(name, node, parent, start=start, **attrs)
        if span is not None:
            span.end = float(end)
        return span

    def finish(self, span: Optional[Span], end: Optional[float] = None,
               **attrs: Any) -> None:
        """Close a span; tolerant of ``None`` so call sites stay flat."""
        if span is None or span.end is not None:
            return
        span.end = self.clock() if end is None else float(end)
        if attrs:
            span.attrs.update(attrs)

    @staticmethod
    def ctx_of(span: Optional[Span]) -> Optional[SpanContext]:
        """The wire context for a span, propagating ``None``."""
        return None if span is None else span.context

    # -- inspection -----------------------------------------------------
    @property
    def finished(self) -> list[Span]:
        """Closed spans (computed view; the store is one flat list)."""
        return [s for s in self._spans if s.end is not None]

    @property
    def open_spans(self) -> list[Span]:
        """Spans started but never finished (orphans-to-be at export)."""
        return [s for s in self._spans if s.end is None]

    def spans(self) -> list[Span]:
        """Every recorded span, in start order (a deterministic total
        order — same run, same list)."""
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        self._spans = []
        self.roots_seen = self.roots_sampled = self.roots_dropped = 0

    # -- export ---------------------------------------------------------
    def to_dicts(self) -> list[dict]:
        return [s.to_dict() for s in self.spans()]

    def export_jsonl(self, path: str) -> int:
        """Write one span per line; identical runs give identical bytes.

        Open spans are exported too, flagged ``"orphan": true`` — an
        orphan is information (severed causal chain), never noise to
        discard silently.
        """
        dicts = self.to_dicts()
        with open(path, "w", encoding="utf-8") as fh:
            for d in dicts:
                fh.write(json.dumps(d, allow_nan=False) + "\n")
        return len(dicts)

    def export_chrome(self, path: str) -> int:
        """Write Chrome ``trace_event`` JSON (load in Perfetto)."""
        return write_chrome(self.to_dicts(), path)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "on" if self.enabled else "off"
        return (f"<SpanRecorder {state} finished={len(self.finished)} "
                f"open={len(self.open_spans)} sample=1/{self.sample_every}>")


# -- Chrome trace_event export ---------------------------------------------

def chrome_trace(spans: list[dict]) -> dict:
    """Build a Chrome ``trace_event`` document from span dicts.

    One *process* lane per node (sorted, so lane numbering is stable),
    complete (``ph: "X"``) events with microsecond ``ts``/``dur`` on the
    sim clock.  Orphans become zero-duration events marked in ``args``
    so severed chains stay visible on the timeline.
    """
    nodes = sorted({d["node"] for d in spans})
    pids = {node: i + 1 for i, node in enumerate(nodes)}
    events: list[dict] = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
         "args": {"name": node}}
        for node, pid in pids.items()]
    for d in spans:
        end = d["end"] if d["end"] is not None else d["start"]
        args = dict(d["attrs"])
        args["trace_id"] = d["trace_id"]
        args["span_id"] = d["span_id"]
        if d["parent_id"]:
            args["parent_id"] = d["parent_id"]
        if d.get("orphan"):
            args["orphan"] = True
        events.append({
            "ph": "X",
            "name": d["name"],
            "cat": "span",
            "ts": d["start"] * 1e6,
            "dur": (end - d["start"]) * 1e6,
            "pid": pids[d["node"]],
            "tid": 0,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(spans: list[dict], path: str) -> int:
    doc = chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, allow_nan=False)
        fh.write("\n")
    return len(doc["traceEvents"])
