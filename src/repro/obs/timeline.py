"""Time-resolved telemetry: the DES-clock metric timeline.

The paper's entire evaluation is post-hoc — every question about DP
load, sync accuracy, or scheduling latency is answered *after* the run
from final aggregates.  GridSim-lineage toolkits instead treat run-time
statistics recording as a first-class feature; this module is that
telemetry plane:

* :class:`TimelineSampler` — a periodic sampler on the simulation
  clock.  Each tick takes one unified
  :meth:`~repro.obs.counters.MetricsRegistry.collect` pass (counters,
  gauges, one-pass histogram summaries) plus a kernel section (heap
  size, dead-entry ratio, event rate) and appends the row to a bounded
  in-memory series, optionally streaming it to a JSONL file.  When a
  deployment is attached the sampler drives (or reuses) the control
  plane's :class:`~repro.control.signals.SignalBus`, so control and
  telemetry read **one** code path — gauges are computed once per tick,
  never re-derived.
* JSONL timeline files — a ``{"meta": ...}`` header line followed by
  one snapshot row per line.  ``digruber top`` replays or live-tails
  them; :func:`load_timeline` reads them back (tolerant of a truncated
  final line, the normal state of a file being tailed mid-write).
* OpenMetrics text export (:func:`to_openmetrics`) — the wire format a
  future live-service ``/metrics`` endpoint serves; dotted metric names
  map to OpenMetrics families with a ``dp`` label split off per-DP
  series.
* :func:`merge_hood_timelines` — sharded runs sample each DP
  neighborhood at its epoch barriers from *hood-local* state only, so
  the merged grid-wide timeline is bit-identical regardless of how
  hoods are grouped onto shards (the same partition-independence
  contract as the event journals).

Determinism is a hard invariant: a sampler tick is strictly read-only
with respect to the simulation — no RNG draws, no semantic state
mutation; the only events it schedules are its own ticks.  A run with
telemetry on therefore executes the exact same semantic event sequence
as one without (``digruber diff --pair telemetry`` enforces this).
"""

from __future__ import annotations

import json
from collections import deque
from typing import TYPE_CHECKING, Any, Optional, TextIO

if TYPE_CHECKING:  # pragma: no cover
    from repro.control.signals import SignalBus
    from repro.sim.kernel import Simulator

__all__ = ["TimelineSampler", "load_timeline", "to_openmetrics",
           "export_openmetrics", "merge_hood_timelines", "hood_snapshot"]


class TimelineSampler:
    """Periodic unified metric sampling on the DES clock.

    Parameters
    ----------
    sim:
        The simulator whose registry/kernel state is sampled.
    interval_s:
        Sampling cadence in simulated seconds.
    capacity:
        Bound on the in-memory series; older rows are evicted (a JSONL
        sink, when configured, still sees every row).
    deployment:
        Optional :class:`~repro.core.broker.DIGruberDeployment`; when
        given (and no ``bus``), the sampler owns a
        :class:`~repro.control.signals.SignalBus` so per-DP queue
        depth / decide latency / sync-lag gauges are published each
        tick.
    bus:
        An existing SignalBus to *read through* instead of owning one —
        the autoscale planner's, typically.  The sampler then never
        calls ``bus.sample()`` itself (the planner already does, on its
        own cadence); it just collects the gauges the bus published.
        That is the dedup contract: one gauge computation per control
        tick, shared by control and telemetry.
    grid:
        Optional :class:`~repro.grid.builder.Grid`; adds grid-wide
        utilization/queue gauges (``grid.*``) each tick.
    path:
        Stream every row (plus a leading meta line) to this JSONL file.
    flush_rows:
        Flush the file after every row — what ``--serve-telemetry``
        uses so ``digruber top`` can tail a live run.
    """

    def __init__(self, sim: "Simulator", interval_s: float = 30.0,
                 capacity: int = 512, deployment: Any = None,
                 bus: Optional["SignalBus"] = None, grid: Any = None,
                 path: str = "", flush_rows: bool = False,
                 meta: Optional[dict] = None):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.sim = sim
        self.interval_s = interval_s
        self.grid = grid
        self.bus = bus
        self._owns_bus = False
        if bus is None and deployment is not None:
            from repro.control.signals import SignalBus
            self.bus = SignalBus(sim, deployment, window_s=interval_s)
            self._owns_bus = True
        self.rows: deque = deque(maxlen=capacity)
        self.samples_taken = 0
        self.meta = dict(meta) if meta else {}
        self._prev_events = sim.events_executed
        self._prev_t = sim.now
        self._handle = None
        self.path = path
        self._flush_rows = flush_rows
        self._fh: Optional[TextIO] = None
        if path:
            self._fh = open(path, "w", encoding="utf-8")
            header = {"meta": {"interval_s": interval_s, **self.meta}}
            self._fh.write(json.dumps(header) + "\n")
            self._fh.flush()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Begin periodic sampling (first row at ``interval_s``)."""
        if self._handle is not None:
            raise RuntimeError("sampler already started")
        self._handle = self.sim.every(self.interval_s, self.tick,
                                      name="telemetry", on_error="record")

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def byte_offset(self) -> int:
        """Bytes written so far (flushes first; size once closed).

        ``repro.sim.snapshot`` verifies the restored timeline stream
        regenerated the same byte prefix.  Returns 0 for in-memory
        samplers with no sink file.
        """
        if self._fh is None:
            return 0
        if self._fh.closed:
            import os
            return os.path.getsize(self.path)
        self._fh.flush()
        return self._fh.tell()

    def close(self, final_sample: bool = True) -> None:
        """Stop sampling and flush/close the JSONL sink.

        Safe on every exit path (the runner calls it from a ``finally``)
        and idempotent; ``final_sample`` records one last row at the
        current instant so the timeline always covers end-of-run state.
        """
        self.stop()
        if final_sample and (not self.rows
                             or self.rows[-1]["t"] != self.sim.now):
            try:
                self.tick()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        if self._fh is not None and not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    # -- sampling -------------------------------------------------------
    def tick(self) -> dict:
        """Take one snapshot row; called on the DES clock."""
        sim = self.sim
        now = sim.now
        if self.bus is not None and self._owns_bus:
            # Telemetry-only runs: the sampler drives the bus.  With a
            # planner present the planner's tick already sampled; the
            # registry holds the published gauges and we only read.
            self.bus.sample()
        if self.grid is not None:
            self._publish_grid_gauges(now)
        self._publish_kernel_gauges(now)
        row = sim.metrics.collect(now=now)
        self.rows.append(row)
        self.samples_taken += 1
        if self._fh is not None and not self._fh.closed:
            self._fh.write(json.dumps(row) + "\n")
            if self._flush_rows:
                self._fh.flush()
        return row

    def _publish_kernel_gauges(self, now: float) -> None:
        sim = self.sim
        metrics = sim.metrics
        heap_len = len(sim._heap)
        dead = sim._dead
        events = sim.events_executed
        dt = now - self._prev_t
        rate = (events - self._prev_events) / dt if dt > 0 else 0.0
        self._prev_events = events
        self._prev_t = now
        metrics.gauge("kernel.heap_len").set(heap_len, at=now)
        metrics.gauge("kernel.heap_dead").set(dead, at=now)
        metrics.gauge("kernel.heap_dead_ratio").set(
            dead / heap_len if heap_len else 0.0, at=now)
        metrics.gauge("kernel.events_executed").set(events, at=now)
        metrics.gauge("kernel.event_rate").set(rate, at=now)
        metrics.gauge("kernel.processes").set(len(sim._processes), at=now)

    def _publish_grid_gauges(self, now: float) -> None:
        busy = total = queued = running = completed = 0
        for site in self.grid.sites.values():
            busy += site.busy_cpus
            total += site.total_cpus
            queued += site.queue_length
            running += site.running_jobs
            completed += site.jobs_completed
        metrics = self.sim.metrics
        metrics.gauge("grid.busy_cpus").set(busy, at=now)
        metrics.gauge("grid.total_cpus").set(total, at=now)
        metrics.gauge("grid.util").set(busy / total if total else 0.0, at=now)
        metrics.gauge("grid.queued_jobs").set(queued, at=now)
        metrics.gauge("grid.running_jobs").set(running, at=now)
        metrics.gauge("grid.jobs_completed").set(completed, at=now)

    def __len__(self) -> int:
        return len(self.rows)

    def tail(self, n: int) -> list[dict]:
        """The newest ``n`` rows (for the flight recorder's black box)."""
        if n <= 0:
            return []
        rows = list(self.rows)
        return rows[-n:]

    def export_openmetrics(self, path: str) -> None:
        """Write the newest row as OpenMetrics text."""
        if not self.rows:
            raise ValueError("no snapshots recorded yet")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(to_openmetrics(self.rows[-1]))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TimelineSampler every {self.interval_s}s "
                f"rows={len(self.rows)} taken={self.samples_taken}>")


# -- timeline files ----------------------------------------------------------

def load_timeline(path: str, tolerant: bool = True
                  ) -> tuple[dict, list[dict]]:
    """Read a timeline JSONL file back: ``(meta, rows)``.

    ``tolerant`` (the default) skips undecodable lines — a file being
    tailed mid-write, or truncated by a crash, routinely ends in half a
    row; replay and postmortem tooling must read everything before it.
    With ``tolerant=False`` a malformed line raises ``ValueError`` with
    its line number.
    """
    meta: dict = {}
    rows: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                if tolerant:
                    continue
                raise ValueError(
                    f"{path}:{lineno}: not a timeline JSONL line: "
                    f"{exc}") from exc
            if "meta" in doc and "t" not in doc:
                meta = doc["meta"]
            else:
                rows.append(doc)
    return meta, rows


# -- OpenMetrics text --------------------------------------------------------

def _om_name(name: str) -> tuple[str, str]:
    """Split a dotted metric name into (family, dp label).

    Per-DP series (``dp.queue_depth.dp0``) become one family with a
    ``dp`` label; every other dotted name maps 1:1 to an underscored
    family name.
    """
    parts = name.split(".")
    dp = ""
    if len(parts) >= 3 and parts[-1].startswith("dp"):
        dp = parts[-1]
        parts = parts[:-1]
    return "_".join(p.replace("-", "_") for p in parts), dp


def _om_line(family: str, dp: str, value: float,
             extra_label: str = "") -> str:
    labels = []
    if dp:
        labels.append(f'dp="{dp}"')
    if extra_label:
        labels.append(extra_label)
    label_s = "{" + ",".join(labels) + "}" if labels else ""
    return f"digruber_{family}{label_s} {value}\n"


def to_openmetrics(row: dict) -> str:
    """Render one snapshot row as OpenMetrics text (``# EOF``-terminated).

    Counters map to ``counter`` families, gauges to ``gauge``,
    histogram summaries to ``summary`` families (count/sum plus
    ``quantile``-labelled series).
    """
    out: list[str] = []
    seen: set[str] = set()

    def _head(family: str, om_type: str) -> None:
        if family not in seen:
            seen.add(family)
            out.append(f"# TYPE digruber_{family} {om_type}\n")

    for name, value in row.get("counters", {}).items():
        family, dp = _om_name(name)
        _head(family, "counter")
        out.append(_om_line(family, dp, value))
    for name, value in row.get("gauges", {}).items():
        family, dp = _om_name(name)
        _head(family, "gauge")
        out.append(_om_line(family, dp, value))
    for name, s in row.get("histograms", {}).items():
        family, dp = _om_name(name)
        _head(family, "summary")
        out.append(_om_line(family + "_count", dp, s.get("count", 0)))
        out.append(_om_line(family + "_sum", dp, s.get("sum", 0.0)))
        for key, value in s.items():
            if key.startswith("p") and value is not None:
                q = float(key[1:]) / 100.0
                out.append(_om_line(family, dp, value,
                                    extra_label=f'quantile="{q:g}"'))
    out.append("# EOF\n")
    return "".join(out)


def export_openmetrics(row: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_openmetrics(row))


# -- sharded (per-neighborhood) timelines ------------------------------------

def hood_snapshot(built, hood: int, t: float) -> dict:
    """One DP neighborhood's telemetry row from hood-local state only.

    Sharded runs cannot sample the shared per-shard registry — two
    hoods on one shard would interleave their metrics and the result
    would depend on the grouping.  Everything here reads the hood's own
    deployment/grid/client objects, which are bit-identical across
    shard groupings, so the merged timeline is too.
    """
    dp = next(iter(built.deployment.decision_points.values()))
    busy = total = queued = completed = 0
    for site in built.grid.sites.values():
        busy += site.busy_cpus
        total += site.total_cpus
        queued += site.queue_length
        completed += site.jobs_completed
    return {
        "t": t,
        "hood": hood,
        "dp_online": bool(dp.online),
        "dp_queue_depth": dp.container.queue_len,
        "dp_in_service": dp.container.in_service,
        "dp_completed_ops": dp.container.completed_ops,
        "clients": len(built.clients),
        "client_backlog": sum(c.backlog_len for c in built.clients),
        "jobs_handled": sum(c.n_handled for c in built.clients),
        "busy_cpus": busy,
        "total_cpus": total,
        "util": busy / total if total else 0.0,
        "queued_jobs": queued,
        "jobs_completed": completed,
    }


def merge_hood_timelines(per_hood: dict[int, list[dict]]) -> list[dict]:
    """Canonical grid-wide merge of per-neighborhood timelines.

    Rows sort by ``(t, hood)`` — per-hood order is already time-sorted
    and the hood id breaks same-barrier ties identically under any
    shard grouping, mirroring :func:`repro.sim.sharded._merge_journals`.
    """
    flat = [row for hood in sorted(per_hood) for row in per_hood[hood]]
    flat.sort(key=lambda r: (r["t"], r["hood"]))
    return flat
