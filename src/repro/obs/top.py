"""``digruber top``: a live terminal dashboard over telemetry timelines.

Renders the :mod:`repro.obs.timeline` JSONL stream as a redrawing
text dashboard — decision-point table, grid-utilization sparkline,
kernel event rate, autoscale events — in two modes:

* **replay**: read a finished timeline file and page through its rows,
  optionally paced (``--speed`` sim-seconds per wall-second) or
  collapsed to the final frame (``--once``, what the CI smoke uses);
* **follow**: tail a file a live ``digruber run --serve-telemetry``
  process is flushing row-by-row, rendering each new row as it lands
  (tolerant of a half-written last line — the reader keeps the partial
  tail buffered until the writer completes it).

Both monolithic rows (full ``MetricsRegistry.collect()`` documents)
and sharded rows (per-neighborhood ``hood_snapshot`` documents, which
the dashboard groups by barrier time and aggregates grid-wide) render
through the same frame pipeline.

Pacing uses ``time.sleep`` only — the dashboard never *reads* a
wall clock, so the determinism lint stays clean without suppressions.
"""

from __future__ import annotations

import json
import time
from typing import Iterator, Optional, TextIO

from repro.metrics.ascii_plot import sparkline

__all__ = ["frames_from_rows", "render_frame", "replay", "follow",
           "iter_jsonl_tail"]

#: ANSI: cursor home + clear-to-end (redraw without scrollback spam).
_ANSI_REDRAW = "\x1b[H\x1b[J"


# -- normalization -----------------------------------------------------------

def _frame_from_registry_row(row: dict) -> dict:
    """One frame from a monolithic ``MetricsRegistry.collect()`` row."""
    gauges = row.get("gauges", {})
    dps: dict[str, dict] = {}
    for name, value in gauges.items():
        parts = name.split(".")
        if len(parts) == 3 and parts[0] == "dp":
            dps.setdefault(parts[2], {})[parts[1]] = value
    hists = row.get("histograms", {})
    for dp_id, d in dps.items():
        s = hists.get(f"dp.decide_s.{dp_id}")
        if s and s.get("p95") is not None:
            d["decide_p95_s"] = s["p95"]
    return {
        "t": row.get("t", 0.0),
        "dps": dps,
        "busy_cpus": gauges.get("grid.busy_cpus", 0),
        "total_cpus": gauges.get("grid.total_cpus", 0),
        "util": gauges.get("grid.util", 0.0),
        "queued_jobs": gauges.get("grid.queued_jobs", 0),
        "jobs_completed": gauges.get("grid.jobs_completed", 0),
        "n_dps": gauges.get("control.n_dps", len(dps)),
        "backlog": gauges.get("control.client_backlog", 0),
        "sync_lag_s": gauges.get("control.sync_lag_s", 0.0),
        "event_rate": gauges.get("kernel.event_rate", 0.0),
        "heap_len": gauges.get("kernel.heap_len", 0),
        "heap_dead_ratio": gauges.get("kernel.heap_dead_ratio", 0.0),
    }


def _frame_from_hood_rows(t: float, rows: list[dict]) -> dict:
    """One frame from all hoods' rows at a single epoch barrier."""
    dps: dict[str, dict] = {}
    busy = total = queued = completed = backlog = 0
    for r in rows:
        dps[f"hood{r['hood']}"] = {
            "online": 1.0 if r.get("dp_online", True) else 0.0,
            "queue_depth": r.get("dp_queue_depth", 0),
            "in_service": r.get("dp_in_service", 0),
            "clients": r.get("clients", 0),
            "ops": r.get("dp_completed_ops", 0),
        }
        busy += r.get("busy_cpus", 0)
        total += r.get("total_cpus", 0)
        queued += r.get("queued_jobs", 0)
        completed += r.get("jobs_completed", 0)
        backlog += r.get("client_backlog", 0)
    return {
        "t": t, "dps": dps,
        "busy_cpus": busy, "total_cpus": total,
        "util": busy / total if total else 0.0,
        "queued_jobs": queued, "jobs_completed": completed,
        "n_dps": sum(1 for d in dps.values() if d.get("online")),
        "backlog": backlog, "sync_lag_s": 0.0,
        "event_rate": 0.0, "heap_len": 0, "heap_dead_ratio": 0.0,
    }


def frames_from_rows(rows: list[dict]) -> list[dict]:
    """Normalize timeline rows (either format) into render frames.

    Sharded rows carry a ``hood`` field; all hoods sharing a barrier
    time collapse into one grid-wide frame.  Monolithic rows map 1:1.
    """
    frames: list[dict] = []
    hood_batch: list[dict] = []

    def _flush_hoods() -> None:
        if hood_batch:
            frames.append(_frame_from_hood_rows(hood_batch[0]["t"],
                                                hood_batch))
            hood_batch.clear()

    for row in rows:
        if "hood" in row:
            if hood_batch and row["t"] != hood_batch[0]["t"]:
                _flush_hoods()
            hood_batch.append(row)
        else:
            _flush_hoods()
            frames.append(_frame_from_registry_row(row))
    _flush_hoods()
    return frames


# -- rendering ---------------------------------------------------------------

def _fmt(value, width: int = 8) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:>{width}.3g}"
    return f"{int(value):>{width}d}"


def render_frame(frame: dict, meta: dict, history: list[dict],
                 events: list[str], width: int = 72) -> str:
    """One dashboard frame as plain text (no ANSI — callers add it)."""
    t = frame["t"]
    duration = meta.get("duration_s") or 0.0
    pct = f" ({100.0 * t / duration:.0f}%)" if duration else ""
    lines = [
        f"digruber top — {meta.get('name', 'run')} "
        f"seed={meta.get('seed', '?')}  t={t:.0f}s{pct}",
        "=" * width,
    ]
    util = frame["util"]
    lines.append(
        f"grid   util {100.0 * util:5.1f}%  busy {_fmt(frame['busy_cpus'])}"
        f" / {_fmt(frame['total_cpus'])} cpus   site-queued "
        f"{_fmt(frame['queued_jobs'])}")
    utils = [f["util"] for f in history]
    lines.append("       [" + sparkline(utils, width=width - 9) + "]")
    lines.append(
        f"fleet  dps {int(frame['n_dps'])}  client-backlog "
        f"{_fmt(frame['backlog'])}  sync-lag {frame['sync_lag_s']:.3g}s  "
        f"kernel {frame['event_rate']:,.0f} ev/s "
        f"heap {int(frame['heap_len'])} "
        f"(dead {100.0 * frame['heap_dead_ratio']:.0f}%)")
    lines.append("-" * width)
    lines.append(f"{'DP':<8}{'on':>3}{'queue':>8}{'serving':>8}"
                 f"{'clients':>8}{'ops/s':>10}{'decide':>9}")
    for dp_id in sorted(frame["dps"]):
        d = frame["dps"][dp_id]
        decide = d.get("decide_p95_s", d.get("decide_mean_s"))
        lines.append(
            f"{dp_id:<8}"
            f"{'up' if d.get('online', 1.0) else 'DOWN':>3}"
            f"{_fmt(d.get('queue_depth', 0))}"
            f"{_fmt(d.get('in_service', 0))}"
            f"{_fmt(d.get('clients', 0))}"
            f"{d.get('ops_rate', d.get('ops', 0)):>10.4g}"
            + (f"{decide:>8.3g}s" if decide is not None else f"{'-':>9}"))
    if events:
        lines.append("-" * width)
        lines.append("events:")
        lines.extend(f"  {e}" for e in events[-5:])
    lines.append("=" * width)
    return "\n".join(lines) + "\n"


def _autoscale_events(history: list[dict]) -> list[str]:
    """Fleet-size / DP-liveness changes between consecutive frames."""
    out: list[str] = []
    prev: Optional[dict] = None
    for f in history:
        if prev is not None:
            a, b = int(prev["n_dps"]), int(f["n_dps"])
            if a != b:
                word = "scale-up" if b > a else "scale-down"
                out.append(f"t={f['t']:.0f}s {word}: {a} -> {b} DPs")
            for dp_id, d in f["dps"].items():
                was = prev["dps"].get(dp_id, {}).get("online", 1.0)
                now = d.get("online", 1.0)
                if was and not now:
                    out.append(f"t={f['t']:.0f}s {dp_id} went DOWN")
                elif now and not was:
                    out.append(f"t={f['t']:.0f}s {dp_id} back up")
        prev = f
    return out


# -- modes -------------------------------------------------------------------

def replay(path: str, speed: float = 0.0, once: bool = False,
           ansi: bool = False, out: Optional[TextIO] = None,
           max_frames: Optional[int] = None) -> int:
    """Replay a timeline file; returns the number of frames rendered.

    ``speed`` is sim-seconds per wall-second (0 = no pacing); ``once``
    renders only the final frame.  ``ansi`` redraws in place instead of
    appending frames.
    """
    import sys
    from repro.obs.timeline import load_timeline
    out = out if out is not None else sys.stdout
    meta, rows = load_timeline(path)
    frames = frames_from_rows(rows)
    if max_frames is not None:
        frames = frames[:max_frames]
    if not frames:
        out.write(f"{path}: no timeline rows\n")
        return 0
    if once:
        events = _autoscale_events(frames)
        out.write(render_frame(frames[-1], meta, frames, events))
        return 1
    history: list[dict] = []
    prev_t: Optional[float] = None
    for frame in frames:
        if speed > 0 and prev_t is not None and frame["t"] > prev_t:
            time.sleep((frame["t"] - prev_t) / speed)
        prev_t = frame["t"]
        history.append(frame)
        events = _autoscale_events(history)
        if ansi:
            out.write(_ANSI_REDRAW)
        out.write(render_frame(frame, meta, history, events))
        out.flush()
    return len(frames)


def iter_jsonl_tail(fh: TextIO, poll_s: float = 0.5,
                    idle_polls: Optional[int] = None) -> Iterator[dict]:
    """Yield JSON documents from a growing file, tail -f style.

    Reads whole lines only — a half-written trailing line stays
    buffered until the writer finishes it, so a live flush mid-row
    never produces a decode error.  Stops after ``idle_polls``
    consecutive empty polls (``None`` = wait forever).
    """
    buf = ""
    idle = 0
    while True:
        chunk = fh.read()
        if chunk:
            idle = 0
            buf += chunk
            while "\n" in buf:
                line, buf = buf.split("\n", 1)
                line = line.strip()
                if line:
                    try:
                        yield json.loads(line)
                    except json.JSONDecodeError:
                        continue
        else:
            idle += 1
            if idle_polls is not None and idle >= idle_polls:
                return
            time.sleep(poll_s)


def follow(path: str, poll_s: float = 0.5,
           idle_polls: Optional[int] = 20, ansi: bool = False,
           out: Optional[TextIO] = None) -> int:
    """Attach to a live ``--serve-telemetry`` file; render rows as they
    land.  Returns the number of frames rendered."""
    import sys
    out = out if out is not None else sys.stdout
    meta: dict = {}
    history: list[dict] = []
    hood_batch: list[dict] = []
    n = 0
    with open(path, "r", encoding="utf-8") as fh:
        for doc in iter_jsonl_tail(fh, poll_s=poll_s,
                                   idle_polls=idle_polls):
            if "meta" in doc and "t" not in doc:
                meta = doc["meta"]
                continue
            if "hood" in doc:
                # Sharded stream: render once per completed barrier.
                if hood_batch and doc["t"] != hood_batch[0]["t"]:
                    frame = _frame_from_hood_rows(hood_batch[0]["t"],
                                                  hood_batch)
                    hood_batch = [doc]
                else:
                    hood_batch.append(doc)
                    continue
            else:
                frame = _frame_from_registry_row(doc)
            history.append(frame)
            n += 1
            if ansi:
                out.write(_ANSI_REDRAW)
            out.write(render_frame(frame, meta, history,
                                   _autoscale_events(history)))
            out.flush()
    return n
