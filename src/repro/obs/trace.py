"""Structured event tracing for the simulation's hot layers.

A :class:`Tracer` records :class:`TraceEvent` tuples into a bounded
ring buffer (``collections.deque``) and fans them out to any attached
sinks.  Tracing is **disabled by default**: every emitting call site
guards with ``if tracer.enabled`` so a disabled tracer costs one
attribute lookup per *potential* event — measured by
``benchmarks/bench_obs_overhead.py`` and pinned in ``BENCH_kernel.json``.

Event kinds are dotted strings, coarse by design (per process
lifecycle, per RPC span, per sync round — never per kernel step), which
keeps the *enabled* overhead under the 10% budget the bench harness
enforces.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, NamedTuple, Optional

__all__ = ["TraceEvent", "Tracer", "JsonlSink", "SPAN_FIELDS"]

#: Field names for compact (tuple-detail) events emitted through
#: :meth:`Tracer.emit_compact` — the hot-path alternative to kwargs.
SPAN_FIELDS: dict[str, tuple[str, ...]] = {
    "rpc.span": ("op", "dst", "rpc_id", "outcome", "latency_s", "size_kb"),
}


class TraceEvent(NamedTuple):
    """One trace record: when, where, what, and arbitrary detail.

    ``detail`` is a dict for ordinary events; hot-path events (see
    :data:`SPAN_FIELDS`) carry a plain tuple instead — use
    :meth:`detail_dict` for uniform access.
    """

    time: float
    node: Any
    kind: str
    detail: Any

    def detail_dict(self) -> dict:
        if isinstance(self.detail, dict):
            return self.detail
        fields = SPAN_FIELDS.get(self.kind)
        if fields is not None:
            return dict(zip(fields, self.detail))
        return {"detail": self.detail}

    def to_dict(self) -> dict:
        # ``float(...)`` guards the time field: a numpy scalar clock (or
        # an ``emit_compact(..., time=np.float32(...))`` caller) used to
        # hand json.dumps a non-serializable value and crash every sink.
        return {"t": float(self.time), "node": str(self.node),
                "kind": self.kind,
                **{k: _jsonable(v) for k, v in self.detail_dict().items()}}


def _jsonable(value: Any) -> Any:
    """Coerce one detail value to a JSON-native type.

    Numpy scalars are unwrapped via ``item()`` (``np.int64`` and
    ``np.float32`` are *not* ``int``/``float`` subclasses, so they
    would otherwise crash ``json.dumps``); other non-primitives — e.g.
    a tuple-typed node id landing in a compact ``rpc.span`` ``dst``
    field — degrade to ``str``.
    """
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):  # np.float64 is a float subclass
        return float(value)
    item = getattr(value, "item", None)
    if callable(item):
        try:
            unwrapped = item()
        except (TypeError, ValueError):  # pragma: no cover - exotic array
            return str(value)
        if isinstance(unwrapped, (str, int, float, bool)):
            return unwrapped
    return str(value)


class Tracer:
    """Ring-buffered structured trace with pluggable sinks.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current sim time; the
        :class:`~repro.sim.kernel.Simulator` wires in its own clock.
    capacity:
        Ring-buffer size; older events are evicted (and counted in
        :attr:`evicted`) once full.  Sinks see *every* event regardless.
    enabled:
        Off by default — the run summary and counters work without it.
    """

    __slots__ = ("enabled", "verbose", "clock", "buffer", "sinks", "counts",
                 "emitted")

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 capacity: int = 65536, enabled: bool = False,
                 verbose: bool = False):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.enabled = enabled
        #: With ``verbose`` the transport also emits the intermediate
        #: RPC chain (send → handle → respond → discard) instead of
        #: just the one-per-RPC ``rpc.span`` summary; that is several
        #: times the emission cost, so it is off by default and
        #: excluded from the <10% overhead budget.
        self.verbose = verbose
        self.clock = clock if clock is not None else (lambda: 0.0)
        #: Ring of TraceEvent instances (or bare 4-tuples from
        #: :meth:`emit_compact`); read through :meth:`events`.
        self.buffer: deque = deque(maxlen=capacity)
        self.sinks: list[Callable[[TraceEvent], None]] = []
        #: Per-kind event tallies (kept even after ring eviction).
        self.counts: dict[str, int] = {}
        self.emitted = 0

    # -- emission -------------------------------------------------------
    def emit(self, kind: str, node: Any = "", **detail: Any) -> None:
        """Record one event *if enabled*; call sites should pre-guard
        with ``if tracer.enabled`` to avoid building kwargs for nothing.
        """
        if not self.enabled:
            return
        ev = TraceEvent(self.clock(), node, kind, detail)
        self.buffer.append(ev)
        self.emitted += 1
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if self.sinks:
            for sink in self.sinks:
                sink(ev)

    def emit_compact(self, kind: str, node: Any, detail: tuple,
                     time: Optional[float] = None) -> None:
        """Hot-path emission: positional tuple detail, no kwargs dict.

        ``detail`` must match ``SPAN_FIELDS[kind]``; ``time`` skips the
        clock call when the caller already knows the instant.  The ring
        stores a bare 4-tuple (a :class:`TraceEvent` ctor alone costs
        ~5x a tuple display); :meth:`events` and the sink fan-out
        normalize on the way out, keeping this several times cheaper
        than :meth:`emit` — the transport uses it for its one-per-RPC
        span summary.
        """
        if not self.enabled:
            return
        ev = (self.clock() if time is None else time, node, kind, detail)
        self.buffer.append(ev)
        self.emitted += 1
        counts = self.counts
        try:
            counts[kind] += 1
        except KeyError:
            counts[kind] = 1
        if self.sinks:
            named = TraceEvent._make(ev)
            for sink in self.sinks:
                sink(named)

    # -- sinks ----------------------------------------------------------
    def add_sink(self, sink: Callable[[TraceEvent], None]) -> None:
        self.sinks.append(sink)

    def remove_sink(self, sink: Callable[[TraceEvent], None]) -> None:
        self.sinks.remove(sink)

    # -- inspection -----------------------------------------------------
    def events(self, kind: Optional[str] = None) -> list[TraceEvent]:
        """Buffered events, optionally filtered by exact kind.

        Normalizes the hot-path bare tuples (see :meth:`emit_compact`)
        so callers always get :class:`TraceEvent` instances.
        """
        out = [ev if isinstance(ev, TraceEvent) else TraceEvent._make(ev)
               for ev in self.buffer]
        if kind is None:
            return out
        return [ev for ev in out if ev.kind == kind]

    def count(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    @property
    def evicted(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return self.emitted - len(self.buffer)

    def clear(self) -> None:
        self.buffer.clear()
        self.counts.clear()
        self.emitted = 0

    def set_capacity(self, capacity: int) -> None:
        """Resize the ring buffer, keeping the newest events."""
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.buffer = deque(self.buffer, maxlen=capacity)

    # -- export ---------------------------------------------------------
    def export_jsonl(self, path: str) -> int:
        """Dump the buffered events to a JSONL file; returns the count."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as fh:
            for ev in events:
                fh.write(json.dumps(ev.to_dict()) + "\n")
        return len(events)

    def __len__(self) -> int:
        return len(self.buffer)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "on" if self.enabled else "off"
        return f"<Tracer {state} buffered={len(self.buffer)} kinds={len(self.counts)}>"


class JsonlSink:
    """Streams every traced event to a JSONL file as it happens.

    Unlike :meth:`Tracer.export_jsonl` (a post-run ring-buffer dump),
    a sink sees events that the ring later evicts — use it for long
    runs where the full event stream matters.

    Lifecycle: a sink buffers through the underlying file object, so a
    run that aborts without closing it used to truncate the last
    events mid-line.  It is a context manager whose ``__exit__``
    flushes and closes on *every* path (exceptions included), and the
    experiment runner's abort path closes it explicitly — either way
    the file on disk is whole-line-valid JSONL.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")
        self.written = 0

    def __call__(self, ev: TraceEvent) -> None:
        if self._fh.closed:
            return
        self._fh.write(json.dumps(ev.to_dict()) + "\n")
        self.written += 1

    @property
    def closed(self) -> bool:
        return self._fh.closed

    def flush(self) -> None:
        """Push buffered lines to disk without closing (live tails)."""
        if not self._fh.closed:
            self._fh.flush()

    def byte_offset(self) -> int:
        """Bytes written so far (flushes first; file size once closed).

        ``repro.sim.snapshot`` records this at checkpoint time and
        verifies the replayed stream regenerated the same byte prefix.
        """
        if self._fh.closed:
            import os
            return os.path.getsize(self.path)
        self._fh.flush()
        return self._fh.tell()

    def close(self) -> None:
        """Flush + close; idempotent and safe on exception paths."""
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
