"""Client resilience policies for the DI-GRUBER reproduction.

The paper's failure story is a single 15 s timeout followed by random
fallback placement (§4.3).  This package layers production-grade
policies on top, all deterministic under the simulation's seeded RNG
streams:

* :mod:`repro.resilience.policy` — retry with exponential backoff +
  jitter, and per-(client, decision point) circuit breakers;
* :mod:`repro.resilience.failover` — a deployment-level health prober
  that drives automatic client failover to a secondary decision point.

Paired with :mod:`repro.faults`, these let the chaos benches measure
how much brokered placement each policy recovers under injected
partitions, crashes and degradations.
"""

from repro.resilience.failover import FailoverManager
from repro.resilience.policy import CircuitBreaker, ResilienceConfig

__all__ = ["CircuitBreaker", "FailoverManager", "ResilienceConfig"]
