"""Health-probe-driven failover to a secondary decision point.

The paper's only rebinding path is the reconfiguration observer moving
clients to a *newly created* decision point (§5).  Here a deployment-
level prober pings every decision point on a fixed cadence; a DP that
misses ``probe_unhealthy_after`` consecutive probes is marked unhealthy
and resilient clients fail over to the best healthy alternative,
generalizing :meth:`GruberClient.rebind` from "operator action" to
"automatic recovery".

The prober supplies *global liveness* only; per-client circuit breakers
still gate candidates, because under an asymmetric partition a DP can
be reachable from the prober yet dead for a specific host.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.net.transport import RpcError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.broker import DIGruberDeployment
    from repro.net.transport import Network
    from repro.resilience.policy import ResilienceConfig
    from repro.sim.kernel import Simulator

__all__ = ["FailoverManager"]

#: Source id the prober stamps on its pings.  Deliberately *not* a
#: registered endpoint: probe responses are consumed by the RPC
#: completion path directly, and no decision point ever routes traffic
#: back to it outside that path.
PROBER_ID = "_prober"


class FailoverManager:
    """Periodic health prober + deterministic failover target chooser."""

    def __init__(self, sim: "Simulator", network: "Network",
                 deployment: "DIGruberDeployment",
                 policy: "ResilienceConfig"):
        self.sim = sim
        self.network = network
        self.deployment = deployment
        self.policy = policy
        #: dp_id -> consecutive missed probes.
        self._misses: dict[str, int] = {}
        self._ticker = None
        self.probes_sent = 0
        self.probes_failed = 0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._ticker is not None:
            return
        self._ticker = self.sim.every(
            self.policy.probe_interval_s, self._probe_all,
            name="failover.prober", on_error="record")

    def stop(self) -> None:
        if self._ticker is not None:
            self._ticker.cancel()
            self._ticker = None

    # -- probing -----------------------------------------------------------
    def _probe_all(self) -> None:
        for dp_id in list(self.deployment.decision_points):
            ev = self.network.rpc(src=PROBER_ID, dst=dp_id, op="ping",
                                  payload={}, timeout=self.policy.probe_timeout_s)
            self.probes_sent += 1
            self.sim.metrics.counter("failover.probes").inc()
            ev.add_callback(lambda e, d=dp_id: self._on_probe(d, e))

    def _on_probe(self, dp_id: str, ev) -> None:
        if ev.ok:
            if self._misses.get(dp_id, 0) >= self.policy.probe_unhealthy_after:
                self.sim.metrics.counter("failover.dp_recovered").inc()
                if self.sim.trace.enabled:
                    self.sim.trace.emit("failover.health", dp=dp_id,
                                        healthy=True)
            self._misses[dp_id] = 0
            return
        self.probes_failed += 1
        self.sim.metrics.counter("failover.probe_failures").inc()
        misses = self._misses.get(dp_id, 0) + 1
        self._misses[dp_id] = misses
        if misses == self.policy.probe_unhealthy_after:
            self.sim.metrics.counter("failover.dp_unhealthy").inc()
            if self.sim.trace.enabled:
                self.sim.trace.emit("failover.health", dp=dp_id,
                                    healthy=False, misses=misses)

    # -- queries -----------------------------------------------------------
    def healthy(self, dp_id: str) -> bool:
        """Is the DP currently passing probes (from the prober's vantage)?"""
        return self._misses.get(dp_id, 0) < self.policy.probe_unhealthy_after

    def choose(self, current: str, allow=None) -> Optional[str]:
        """Best failover target for a client bound to ``current``.

        Candidates are healthy decision points other than ``current``
        that pass the caller's ``allow(dp_id)`` predicate (the client's
        breaker board), ranked deterministically by
        ``(container queue length, dp id)`` so identical runs pick
        identical targets.  Returns ``None`` when no candidate exists.
        """
        best: Optional[tuple[int, str]] = None
        for dp_id, dp in self.deployment.decision_points.items():
            if dp_id == current or not self.healthy(dp_id):
                continue
            if allow is not None and not allow(dp_id):
                continue
            key = (dp.container.queue_len, dp_id)
            if best is None or key < best:
                best = key
        return best[1] if best else None
