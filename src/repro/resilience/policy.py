"""Client resilience policies: retry with backoff and circuit breaking.

The paper's only client-side failure handling is the §4.3 timeout →
random-placement fallback: one shot at the bound decision point, then
forfeit the brokered placement.  This module supplies the machinery a
production client carries instead:

* **retry with exponential backoff + jitter** — a failed brokering
  attempt (timeout, remote error, shed) is retried up to
  ``max_attempts`` times, with deterministically-jittered delays drawn
  from the client's own RNG stream (the reproduction's determinism
  contract extends through the chaos path);
* **per-decision-point circuit breaker** — consecutive failures open
  the breaker, after which attempts fail *fast* (no burned timeout)
  until a cool-down expires and a half-open probe is allowed through.

Breakers are **per client, per decision point**: under an asymmetric
partition the same broker is dead for one host and healthy for
another, so shared state would be wrong by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

__all__ = ["ResilienceConfig", "CircuitBreaker"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the client-side resilience policies.

    ``attempt_timeout_s = 0`` means "use the client's configured
    brokering timeout" (the paper's 15 s), so enabling resilience does
    not silently change the per-attempt patience.
    """

    # Retry.
    max_attempts: int = 3
    attempt_timeout_s: float = 0.0
    backoff_base_s: float = 2.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    backoff_jitter: float = 0.5   # uniform extra, as a fraction of the delay

    # Circuit breaker.
    breaker_threshold: int = 3    # consecutive failures that open it
    breaker_open_s: float = 60.0  # cool-down before a half-open probe

    # Health-probe failover (see repro.resilience.failover).
    probe_interval_s: float = 20.0
    probe_timeout_s: float = 5.0
    probe_unhealthy_after: int = 2

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.attempt_timeout_s < 0:
            raise ValueError("attempt_timeout_s must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not (0.0 <= self.backoff_jitter <= 1.0):
            raise ValueError("backoff_jitter must be in [0, 1]")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_open_s < 0:
            raise ValueError("breaker_open_s must be >= 0")
        if self.probe_interval_s <= 0 or self.probe_timeout_s <= 0:
            raise ValueError("probe intervals must be > 0")
        if self.probe_unhealthy_after < 1:
            raise ValueError("probe_unhealthy_after must be >= 1")

    def backoff_delay(self, attempt: int, rng) -> float:
        """Delay before retry number ``attempt`` (1-based), jittered.

        Exponential growth capped at ``backoff_max_s``; jitter is a
        uniform draw in ``[0, backoff_jitter * delay]`` from the
        caller's RNG stream (per-client, hence deterministic).
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(self.backoff_base_s * self.backoff_factor ** (attempt - 1),
                    self.backoff_max_s)
        if self.backoff_jitter > 0.0 and delay > 0.0:
            delay += float(rng.uniform(0.0, self.backoff_jitter * delay))
        return delay


class CircuitBreaker:
    """Consecutive-failure breaker for one (client, decision point) pair.

    States: ``closed`` (normal), ``open`` (fail fast until the
    cool-down expires), ``half_open`` (one trial request in flight —
    the client channel is serialized, so one is all there can be).
    Success anywhere closes it; failure in half-open re-opens it.
    """

    __slots__ = ("sim", "owner", "dp_id", "threshold", "open_s", "state",
                 "failures", "opened_at", "open_until", "opened_count")

    def __init__(self, sim: "Simulator", owner: str, dp_id: str,
                 threshold: int = 3, open_s: float = 60.0):
        self.sim = sim
        self.owner = owner
        self.dp_id = dp_id
        self.threshold = threshold
        self.open_s = open_s
        self.state = "closed"
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.open_until = -float("inf")
        self.opened_count = 0

    def allow(self) -> bool:
        """May the next attempt go to this decision point right now?"""
        if self.state == "closed":
            return True
        if self.state == "open" and self.sim.now >= self.open_until:
            self._transition("half_open")
            return True
        return self.state == "half_open"

    def on_success(self) -> None:
        self.failures = 0
        if self.state != "closed":
            self._transition("closed")

    def on_failure(self) -> None:
        self.failures += 1
        if self.state == "half_open":
            self._open()
        elif self.state == "closed" and self.failures >= self.threshold:
            self._open()

    def _open(self) -> None:
        self.opened_at = self.sim.now
        self.open_until = self.sim.now + self.open_s
        self.opened_count += 1
        self.sim.metrics.counter("breaker.opened").inc()
        self._transition("open")

    def _transition(self, state: str) -> None:
        prior, self.state = self.state, state
        if state == "closed":
            self.sim.metrics.counter("breaker.closed").inc()
        elif state == "half_open":
            self.sim.metrics.counter("breaker.half_open").inc()
        if self.sim.trace.enabled:
            self.sim.trace.emit("breaker.state", node=self.owner,
                                dp=self.dp_id, state=state, prior=prior,
                                failures=self.failures)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CircuitBreaker {self.owner}->{self.dp_id} {self.state} "
                f"failures={self.failures}>")
