"""Deterministic discrete-event simulation kernel.

This package is the substrate that replaces the paper's PlanetLab
deployment: simulated time, events, generator-based processes, and
queueing resources.  All other ``repro`` subpackages (network model,
grid fabric, brokers, DiPerF harness) run on top of a single
:class:`~repro.sim.kernel.Simulator` instance.

The kernel is deliberately small and allocation-light: the canonical
experiment (one simulated hour, ~120 clients, hundreds of sites)
schedules a few million events, so the event loop is a plain ``heapq``
with tuple entries and no per-event object churn beyond the ``Event``
instances the callers already hold.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    ProcessKilled,
    ScheduledCall,
    Simulator,
)
from repro.sim.resources import Gate, Server, Store
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Gate",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "RngRegistry",
    "ScheduledCall",
    "Server",
    "Simulator",
    "Store",
]
