"""Event loop, events, and generator-based processes.

Design notes
------------
The simulator keeps a single binary heap of ``(time, seq, callback)``
entries.  ``seq`` is a monotonically increasing tie-breaker so that two
events scheduled for the same instant fire in scheduling order — this
makes every run bit-for-bit deterministic, which the reproduction
relies on (see DESIGN.md §6).

Processes are plain Python generators.  A process may ``yield``:

* a ``float``/``int`` — sleep for that many simulated seconds;
* an :class:`Event` — suspend until the event succeeds or fails;
* another :class:`Process` — suspend until that process terminates.

Failures propagate: waiting on an event that *fails* raises the failure
exception inside the generator, so brokering code can use ordinary
``try/except`` around RPC calls.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional, Union

from repro.obs.counters import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.obs.trace import Tracer

__all__ = [
    "Event",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "ScheduledCall",
    "Simulator",
]

_PENDING = object()


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The interrupting party supplies a ``cause`` which is available as
    ``exc.cause``; the paper's client timeout logic, for example,
    interrupts an in-flight RPC process with the elapsed deadline.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """Failure value given to the termination event of a killed process."""


class Event:
    """A one-shot occurrence with a value or an exception.

    Callbacks receive the event itself.  An event may *succeed* (carry a
    value) or *fail* (carry an exception); both trigger the callbacks,
    which inspect :attr:`ok`.
    """

    __slots__ = ("sim", "callbacks", "_value", "ok", "name", "_in_flight")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self.ok: Optional[bool] = None
        self.name = name
        self._in_flight: Optional[list] = None

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise RuntimeError(f"event {self.name!r} has not fired yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self._value = value
        self.ok = True
        self.sim._schedule_now(self._dispatch)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self._value = exc
        self.ok = False
        self.sim._schedule_now(self._dispatch)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already dispatched: run at the current instant, preserving
            # the invariant that callbacks never run synchronously from
            # within add_callback.
            self.sim._schedule_now(lambda: fn(self))
        else:
            self.callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        """Detach a callback added earlier; no-op if absent or already run.

        Removal is honored even *during* dispatch: a callback that
        removes a not-yet-run sibling prevents that sibling from firing.
        The in-flight list is mutated by sentinel replacement (never
        ``list.remove``) so the dispatch iteration can neither skip nor
        double-run a neighbour of the removed entry.
        """
        if self.callbacks is not None:
            try:
                self.callbacks.remove(fn)
            except ValueError:
                pass
        elif self._in_flight is not None:
            flight = self._in_flight
            for i in range(len(flight)):
                if flight[i] is fn:
                    flight[i] = None
                    break

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._in_flight = callbacks
        try:
            for fn in callbacks:
                if fn is not None:
                    fn(self)
        finally:
            self._in_flight = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if not self.triggered else ("ok" if self.ok else "failed")
        return f"<Event {self.name!r} {state}>"


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`.

    Once the condition resolves it *detaches* from every still-pending
    child: otherwise a completed RPC's race against its timeout keeps
    the whole condition (and every event it references) alive until the
    timeout fires, and the losing timeout's heap entry burns a no-op
    wakeup.  A detached child timeout that nobody else watches is
    cancelled outright, so RPC storms no longer bloat the event heap.
    """

    __slots__ = ("events",)

    def _detach_pending(self) -> None:
        fast = self.sim.fast
        for ev in self.events:
            if ev.triggered:
                continue
            ev.remove_callback(self._on_child)
            if (fast and not ev.callbacks and type(ev) is _Timeout):
                # Unobservable loser timer: drop its heap entry now
                # (re-armed transparently if a watcher appears later).
                ev.call.cancel()

    def _on_child(self, ev: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Succeeds as soon as any of the given events triggers.

    The value is a dict mapping the triggered events (so far) to their
    values; a failed child event fails the condition with its exception.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev.ok:
            self.succeed({e: e.value for e in self.events if e.triggered and e.ok})
        else:
            self.fail(ev.value)
        self._detach_pending()


class AllOf(_Condition):
    """Succeeds once every given event has succeeded."""

    __slots__ = ("_remaining",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            self._detach_pending()
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e.value for e in self.events})


class ScheduledCall:
    """Handle for a scheduled callback; supports cancellation.

    Cancellation is lazy — the heap entry stays put and is skipped when
    popped — but each cancel is *accounted* so the simulator can compact
    the heap once dead entries dominate (see
    :meth:`Simulator._note_cancelled`).  ``_sim`` is cleared when the
    entry leaves the heap so late cancels don't skew the accounting.
    """

    __slots__ = ("time", "fn", "cancelled", "_sim")

    def __init__(self, time: float, fn: Callable[[], None],
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.fn = fn
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancelled()


class _Timeout(Event):
    """A timeout event scheduled via a pre-bound method (no per-call
    closure, no per-call name formatting — this is the per-RPC hot
    path).  ``call`` is the underlying heap entry; a race condition
    (:class:`AnyOf`) that resolves first cancels it when nobody else is
    watching, and :meth:`add_callback` transparently re-arms it if a
    watcher appears after such a cancellation.
    """

    __slots__ = ("_payload", "call")

    def __init__(self, sim: "Simulator", delay: float, value: Any):
        Event.__init__(self, sim, name="timeout")
        self._payload = value
        self.call = sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if not self.triggered:
            self._value = self._payload
            self.ok = True
            self._dispatch()

    def add_callback(self, fn: Callable[[Event], None]) -> None:
        if self.call.cancelled and not self.triggered:
            # Cancelled as an unobservable race loser, but someone does
            # care after all: re-arm at the original fire time (or now,
            # if that instant has already passed).
            self.call = self.sim.schedule_at(
                max(self.call.time, self.sim.now), self._fire)
        Event.add_callback(self, fn)


class Process(Event):
    """A running generator; doubles as its own termination event.

    The termination event succeeds with the generator's return value
    (``StopIteration.value``) or fails with the exception that escaped
    the generator.
    """

    __slots__ = ("gen", "_waiting_on", "_sleep")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self.gen = gen
        self._waiting_on: Optional[Event] = None
        self._sleep: Optional[ScheduledCall] = None
        # The simulator pins every live process (see Simulator._processes):
        # a process abandoned mid-wait (e.g. its wake-up event can never
        # fire) must stay suspended, NOT become cyclic garbage — the GC
        # would close the generator and run its ``finally`` blocks at an
        # arbitrary wall-clock-dependent instant, breaking determinism.
        sim._processes.add(self)
        if sim.trace.enabled:
            sim.trace.emit("process.start", node=self.name)
        sim._schedule_now(lambda: self._resume(None, None))

    # -- driving ------------------------------------------------------
    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            if self.sim.trace.enabled:
                self.sim.trace.emit("process.finish", node=self.name)
            self.succeed(stop.value)
            return
        except Interrupt as unhandled:
            self._trace_fail(unhandled)
            self.fail(unhandled)
            return
        except ProcessKilled as killed:
            self._trace_fail(killed)
            self.fail(killed)
            return
        except Exception as err:
            self._trace_fail(err)
            self.fail(err)
            return
        self._wait_on(target)

    def _trace_fail(self, err: BaseException) -> None:
        if self.sim.trace.enabled:
            self.sim.trace.emit("process.fail", node=self.name,
                                error=f"{type(err).__name__}: {err}")

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Event):
            ev = target
        elif isinstance(target, (int, float)):
            if self.sim.fast:
                # Plain sleep: resume directly from the heap — no Event,
                # no callback list, no dispatch hop.  Fires at the same
                # instant and seq as the timeout-event path it replaces.
                delay = float(target)
                if delay < 0:
                    raise ValueError(f"negative timeout {delay}")
                self._sleep = self.sim.schedule(delay, self._wake)
                return
            ev = self.sim.timeout(float(target))
        else:
            self._resume(
                None,
                TypeError(f"process {self.name!r} yielded {target!r}; "
                          "expected Event, Process, or a numeric delay"),
            )
            return
        self._waiting_on = ev
        ev.add_callback(self._on_event)

    def _on_event(self, ev: Event) -> None:
        if self.triggered or self._waiting_on is not ev:
            return
        if ev.ok:
            self._resume(ev.value, None)
        else:
            self._resume(None, ev.value)

    def _wake(self) -> None:
        """Direct resume from a plain sleep (the no-Event fast path)."""
        self._sleep = None
        self._resume(None, None)

    def _cancel_sleep(self) -> None:
        if self._sleep is not None:
            self._sleep.cancel()
            self._sleep = None

    # -- external control ---------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the generator at this instant."""
        if self.triggered:
            return
        self._waiting_on = None
        self._cancel_sleep()
        self.sim._schedule_now(lambda: self._resume(None, Interrupt(cause)))

    def kill(self) -> None:
        """Terminate the process without giving it a chance to clean up."""
        if self.triggered:
            return
        self._waiting_on = None
        self._cancel_sleep()
        self.gen.close()
        if self.sim.trace.enabled:
            self.sim.trace.emit("process.kill", node=self.name)
        self.fail(ProcessKilled(self.name))

    # -- unhandled-failure detection ------------------------------------
    def _dispatch(self) -> None:
        """Like :meth:`Event._dispatch`, but a failure that nobody was
        waiting on is *surfaced*: counted and traced instead of
        vanishing (a crashed broker process used to disappear here).
        """
        had_watchers = bool(self.callbacks)
        super()._dispatch()
        self.sim._processes.discard(self)
        if (self.ok is False and not had_watchers
                and not isinstance(self.value, ProcessKilled)):
            self.sim.metrics.counter("kernel.unhandled_failures").inc()
            if self.sim.trace.enabled:
                self.sim.trace.emit(
                    "process.unhandled_failure", node=self.name,
                    error=f"{type(self.value).__name__}: {self.value}")


class Simulator:
    """The discrete-event loop: a clock plus a heap of pending callbacks.

    ``fast`` (default on) enables the scale-plane fast paths — lazy heap
    compaction, direct process-sleep wakeups, and loser-timer
    cancellation in :class:`AnyOf`/:class:`AllOf` races.  They are
    result-preserving (same seed ⇒ identical run summaries; see
    ``tests/test_scale_plane.py``); the switch exists so benchmarks can
    measure them and regression tests can prove the equivalence.

    ``compact_min`` is the minimum number of cancelled heap entries
    before a compaction is considered; compaction triggers once at
    least half the heap is dead and rebuilds it without the dead
    entries.  Pop order is unaffected: entries keep their unique
    ``(time, seq)`` keys, and a heap pops those in sorted order
    regardless of its internal layout.

    ``batch_dispatch`` (default on) drains each timestamp as one batch:
    the bounded run loop reads the head time once per *instant* rather
    than once per event, dispatching every same-time entry (in seq
    order, so the intra-timestamp ordering contract of DESIGN.md §6 is
    untouched) before re-checking ``until``.  Cancelled entries are
    skipped with the same per-pop accounting as the scalar loop, and
    compaction during a batch is safe because :meth:`_compact` rebuilds
    the heap in place.  Result-identical to the scalar loop — proven by
    ``digruber diff --pair batch-dispatch``.
    """

    def __init__(self, fast: bool = True, compact_min: int = 64,
                 batch_dispatch: bool = True) -> None:
        self.now: float = 0.0
        self.fast = fast
        self.batch_dispatch = batch_dispatch
        self._compact_min = compact_min
        self._dead: int = 0
        self.compactions: int = 0
        self.heap_peak: int = 0
        self._heap: list[tuple[float, int, ScheduledCall]] = []
        self._seq: int = 0
        self._event_count: int = 0
        #: Strong refs to every not-yet-terminated process.  Without
        #: this, a process whose wake-up event can never fire (dropped
        #: message, crashed peer) turns into an unreachable cycle; the
        #: cyclic GC would then ``close()`` the suspended generator and
        #: run its ``finally`` blocks at an allocation-count-dependent
        #: instant — observed as run-to-run nondeterminism under fault
        #: injection.  Membership only; never iterated.
        self._processes: set["Process"] = set()
        #: Observability: a disabled-by-default structured trace plus
        #: always-on counters/histograms shared by everything running
        #: on this simulator (transport, brokers, monitors).
        self.trace = Tracer(clock=lambda: self.now)
        self.metrics = MetricsRegistry()
        #: Causal span recorder (off by default): per-job lifecycle and
        #: sync-round spans on the sim clock, linked across nodes via
        #: Message.trace_ctx.  Recording never schedules events, so
        #: spans on/off runs are event-for-event identical.
        self.spans = SpanRecorder(clock=lambda: self.now)

    # -- scheduling -----------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> ScheduledCall:
        """Run ``fn()`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> ScheduledCall:
        """Run ``fn()`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past (t={time} < now={self.now})")
        call = ScheduledCall(time, fn, self)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, call))
        if len(self._heap) > self.heap_peak:
            self.heap_peak = len(self._heap)
        return call

    # -- heap hygiene -----------------------------------------------------
    def _note_cancelled(self) -> None:
        """One live heap entry just went dead; compact when they dominate.

        Accounting contract: a cancel is noted iff its entry is still
        *in the heap* (``ScheduledCall._sim`` is cleared the moment an
        entry leaves — popped or compacted away), so ``_dead`` counts a
        subset of heap entries and can never exceed the heap size.  The
        guard turns any double-note / late-note bug into a loud failure
        instead of silently skewed compaction behaviour.
        """
        self._dead += 1
        if self._dead > len(self._heap):
            raise AssertionError(
                f"cancel accounting skewed: {self._dead} dead entries "
                f"noted for a heap of {len(self._heap)}")
        if (self.fast and self._dead >= self._compact_min
                and 2 * self._dead >= len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (order-preserving).

        The rebuild is *in place* (``self._heap`` keeps its identity):
        the batched run loop holds a local alias to the heap list across
        callback dispatch, and a callback cancelling enough entries can
        trigger a compaction mid-batch.  Rebinding the attribute would
        strand that alias on the stale list and silently drop every
        event scheduled afterwards.
        """
        heap = self._heap
        live = []
        for entry in heap:
            if entry[2].cancelled:
                # Left the heap; clear the back-reference so the entry
                # upholds the same contract as a popped one (and does
                # not pin the simulator alive from stray handles).
                entry[2]._sim = None
            else:
                live.append(entry)
        heap[:] = live
        heapq.heapify(heap)
        self._dead = 0
        self.compactions += 1

    def _schedule_now(self, fn: Callable[[], None]) -> ScheduledCall:
        return self.schedule_at(self.now, fn)

    # -- events & processes ----------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that succeeds ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative timeout {delay}")
        return _Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def every(self, interval: float, fn: Callable[[], None],
              start: Optional[float] = None, jitter: float = 0.0,
              rng=None,
              on_error: Union[str, Callable[[Exception], None]] = "raise",
              name: str = "") -> ScheduledCall:
        """Call ``fn()`` periodically.

        Returns the handle of the *next* scheduled call; cancelling it
        stops the periodic chain.  ``jitter`` (uniform in ``[0, jitter]``,
        drawn from ``rng``) desynchronizes repeated timers, which the
        decision-point sync protocol uses so that all brokers do not
        flood the mesh at the same instant.

        An exception in ``fn()`` no longer kills the chain: the next
        tick is rescheduled in a ``finally`` (one bad sync round used to
        permanently desynchronize a decision point), the error is
        counted (``kernel.periodic_errors``) and traced
        (``periodic.error``), and then handled per ``on_error``:

        * ``"raise"`` (default) — re-raise out of the event loop;
        * ``"record"`` — swallow after counting/tracing (what the sync
          protocol and site monitor use: one bad round must not take
          down the experiment, but must not vanish either);
        * a callable — invoked with the exception.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if not callable(on_error) and on_error not in ("raise", "record"):
            raise ValueError(
                f"on_error must be 'raise', 'record', or callable, "
                f"got {on_error!r}")
        state: dict[str, Any] = {"stopped": False}

        def tick() -> None:
            if state["stopped"]:
                return
            try:
                fn()
            except Exception as err:
                self.metrics.counter("kernel.periodic_errors").inc()
                if self.trace.enabled:
                    self.trace.emit("periodic.error", node=name,
                                    error=f"{type(err).__name__}: {err}")
                if on_error == "raise":
                    raise
                if callable(on_error):
                    on_error(err)
            finally:
                if not state["stopped"]:
                    delay = interval
                    if jitter and rng is not None:
                        delay += float(rng.uniform(0.0, jitter))
                    state["next"] = self.schedule(delay, tick)

        first_delay = interval if start is None else start
        if jitter and rng is not None:
            first_delay += float(rng.uniform(0.0, jitter))
        state["next"] = self.schedule(first_delay, tick)

        class _PeriodicHandle:
            def cancel(self_inner) -> None:
                state["stopped"] = True
                state["next"].cancel()

        return _PeriodicHandle()  # type: ignore[return-value]

    # -- running ----------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending callback; return False if none left."""
        while self._heap:
            time, _seq, call = heapq.heappop(self._heap)
            if call.cancelled:
                call._sim = None
                self._dead -= 1
                if self._dead < 0:
                    raise AssertionError(
                        "cancel accounting skewed: popped more cancelled "
                        "entries than were ever noted")
                continue
            if time < self.now:  # pragma: no cover - heap invariant guard
                raise RuntimeError("event heap produced a past timestamp")
            call._sim = None  # left the heap; late cancels don't count
            self.now = time
            self._event_count += 1
            call.fn()
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap empties or the clock would pass ``until``.

        When ``until`` is given the clock is left exactly at ``until``,
        matching the fixed one-hour windows of the paper's experiments.
        """
        if self.batch_dispatch:
            self._run_batched(until)
            return
        if until is None:
            while self.step():
                pass
            return
        if until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        while self._heap:
            time, _seq, call = self._heap[0]
            if time > until:
                break
            heapq.heappop(self._heap)
            if call.cancelled:
                call._sim = None
                self._dead -= 1
                if self._dead < 0:
                    raise AssertionError(
                        "cancel accounting skewed: popped more cancelled "
                        "entries than were ever noted")
                continue
            call._sim = None  # left the heap; late cancels don't count
            self.now = time
            self._event_count += 1
            call.fn()
        self.now = until

    def _run_batched(self, until: Optional[float]) -> None:
        """Event-batch dispatch: drain each timestamp as one batch.

        The outer loop pays the head-peek and ``until`` comparison once
        per *instant*; the inner loop pops and dispatches every entry at
        that instant.  New events scheduled during the batch for the
        same instant carry higher seq numbers, so they sort after the
        remaining same-time entries and are picked up by the inner loop
        in scheduling order — exactly the scalar pop order.

        The local ``heap`` alias stays valid across callbacks because
        :meth:`_compact` rebuilds in place, and ``_dead`` keeps its
        per-pop accounting so a mid-batch cancel can never observe a
        stale count (``_note_cancelled`` asserts ``_dead <= len(heap)``).
        """
        heap = self._heap
        pop = heapq.heappop
        bounded = until is not None
        if bounded and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        while heap:
            time = heap[0][0]
            if bounded and time > until:
                break
            while heap and heap[0][0] == time:
                call = pop(heap)[2]
                if call.cancelled:
                    call._sim = None
                    self._dead -= 1
                    if self._dead < 0:
                        raise AssertionError(
                            "cancel accounting skewed: popped more cancelled "
                            "entries than were ever noted")
                    continue
                call._sim = None  # left the heap; late cancels don't count
                self.now = time
                self._event_count += 1
                call.fn()
        if bounded:
            self.now = until

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled heap entries (upper bound)."""
        return sum(1 for _, _, c in self._heap if not c.cancelled)

    @property
    def events_executed(self) -> int:
        return self._event_count

    # -- snapshot support -------------------------------------------------
    def run_to_event(self, target: int) -> None:
        """Scalar-step until exactly ``target`` events have executed.

        Replay primitive for ``repro.sim.snapshot``: a checkpoint records
        the event count *including* the checkpoint callback itself, so a
        restore replays to that exact boundary and then resumes the
        bounded run.  Scalar stepping pops in the same ``(time, seq)``
        order as both run loops, so replay is dispatch-mode agnostic.
        """
        if target < self._event_count:
            raise ValueError(
                f"cannot replay backwards: target={target} < "
                f"executed={self._event_count}")
        while self._event_count < target:
            if not self.step():
                raise RuntimeError(
                    f"event heap exhausted at {self._event_count} events "
                    f"while replaying to {target}")

    def snapshot_state(self) -> dict:
        """Canonical kernel state for snapshot digests (JSON-able).

        Heap entries are keyed by ``(time, seq, cancelled, qualname)`` —
        callback identity via ``__qualname__``, never ``repr`` (memory
        addresses would poison the digest).  Sorted so the capture is
        independent of the heap's internal layout.
        """
        entries = []
        for time, seq, call in self._heap:
            fn = call.fn
            entries.append([time, seq, bool(call.cancelled),
                            getattr(fn, "__qualname__", type(fn).__name__)])
        entries.sort(key=lambda e: (e[0], e[1]))
        return {
            "now": self.now,
            "event_count": self._event_count,
            "seq": self._seq,
            "dead": self._dead,
            "heap_len": len(self._heap),
            "heap": entries,
            "processes": len(self._processes),
        }
