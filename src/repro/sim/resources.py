"""Queueing resources built on the kernel: servers, stores, gates.

:class:`Server` is the workhorse — the GT3/GT4 service-container model
(`repro.net.container`) is a :class:`Server` whose capacity is the
container's request-processing concurrency, and the response-time
growth the paper measures under load is exactly this queue filling up.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.kernel import Event, Simulator

__all__ = ["Server", "Store", "Gate"]


class Server:
    """A multi-server FIFO queue (an M/G/c station, workload permitting).

    Usage from a process::

        slot = yield server.acquire()
        try:
            yield service_time
        finally:
            server.release()

    Acquisition events succeed in strict request order (FIFO), which
    models the paper's service containers: requests beyond the
    concurrency limit queue and their response time grows with load.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "server"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_service = 0
        self._waiting: Deque[Event] = deque()
        # Counters for saturation detection / reporting.
        self.total_acquired = 0
        self.peak_queue_len = 0

    @property
    def queue_len(self) -> int:
        return len(self._waiting)

    @property
    def busy(self) -> bool:
        return self.in_service >= self.capacity

    def acquire(self) -> Event:
        """Return an event that succeeds when a service slot is granted."""
        ev = self.sim.event(name=f"{self.name}.acquire")
        if self.in_service < self.capacity:
            self.in_service += 1
            self.total_acquired += 1
            ev.succeed(self)
        else:
            self._waiting.append(ev)
            if len(self._waiting) > self.peak_queue_len:
                self.peak_queue_len = len(self._waiting)
        return ev

    def release(self) -> None:
        """Free one slot, handing it to the longest-waiting acquirer."""
        if self.in_service <= 0:
            raise RuntimeError(f"{self.name}: release() without acquire()")
        # Drop abandoned waiters (e.g. a client timed out and the
        # acquisition event will never be consumed) is the caller's
        # concern; the kernel keeps strict FIFO here.
        if self._waiting:
            ev = self._waiting.popleft()
            self.total_acquired += 1
            ev.succeed(self)
        else:
            self.in_service -= 1

    def drop_newest(self, n: int) -> list[Event]:
        """Remove and return up to ``n`` waiters from the queue tail.

        Newest-first eviction: the requests shed are exactly the ones
        that would have been refused at admission had the (tighter)
        bound been in force when they arrived, so FIFO order among the
        survivors is untouched.  The events are returned still pending
        — deciding their fate (typically failing them with a shed
        exception) is the caller's policy, not the server's.
        """
        dropped: list[Event] = []
        while n > 0 and self._waiting:
            dropped.append(self._waiting.pop())
            n -= 1
        return dropped

    def utilization_snapshot(self) -> float:
        """Fraction of capacity currently in service."""
        return self.in_service / self.capacity


class Store:
    """An unbounded FIFO store of items with blocking ``get``.

    Used for mailbox-style communication (e.g. a decision point's
    inbound message queue in the transport layer).
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = self.sim.event(name=f"{self.name}.get")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns None when empty."""
        if self._items:
            return self._items.popleft()
        return None


class Gate:
    """A level-triggered condition: processes wait until it is open.

    The dynamic-reconfiguration observer uses a gate to pause client
    re-assignment while a new decision point is bootstrapping.
    """

    def __init__(self, sim: Simulator, open_: bool = False, name: str = "gate"):
        self.sim = sim
        self.name = name
        self._open = open_
        self._waiting: list[Event] = []

    @property
    def is_open(self) -> bool:
        return self._open

    def open(self) -> None:
        self._open = True
        waiting, self._waiting = self._waiting, []
        for ev in waiting:
            ev.succeed(None)

    def close(self) -> None:
        self._open = False

    def wait(self) -> Event:
        ev = self.sim.event(name=f"{self.name}.wait")
        if self._open:
            ev.succeed(None)
        else:
            self._waiting.append(ev)
        return ev
