"""Reproducible random-number streams.

Every stochastic component in the reproduction (latency model, workload
generator, client ramp, selector tie-breaking, sync jitter) draws from
its own named stream derived from a single root seed, so that

* two runs with the same seed are bit-identical, and
* adding a new consumer of randomness does not perturb the draws of
  existing components (streams are keyed by name, not by creation
  order).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of named, independent ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream key is a stable hash of the name mixed with the root
        seed, so stream identity survives across processes and runs.
        """
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(name.encode("utf-8")).digest()
            # 4 x 32-bit words from the digest, plus the root seed.
            words = [int.from_bytes(digest[i:i + 4], "little") for i in (0, 4, 8, 12)]
            seq = np.random.SeedSequence([self.seed, *words])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def snapshot_state(self) -> dict:
        """Canonical RNG state for snapshot digests (JSON-able).

        PCG64 exposes its state as a dict of plain Python ints, so each
        stream's full bit-generator state serializes directly; stream
        order is name-sorted for layout independence.
        """
        streams = {}
        for name in sorted(self._streams):
            state = self._streams[name].bit_generator.state
            streams[name] = {
                "bit_generator": state["bit_generator"],
                "state": int(state["state"]["state"]),
                "inc": int(state["state"]["inc"]),
                "has_uint32": int(state["has_uint32"]),
                "uinteger": int(state["uinteger"]),
            }
        return {"seed": self.seed, "streams": streams}

    def spawn(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        digest = hashlib.sha256(name.encode("utf-8")).digest()
        child_seed = (self.seed * 0x9E3779B1 + int.from_bytes(digest[:8], "little")) % (2**63)
        return RngRegistry(child_seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
