"""Space-parallel sharded simulation of a DI-GRUBER deployment.

The monolithic runner simulates every decision point, site, and client
on one event heap.  DI-GRUBER's own structure makes that unnecessary:
decision points exchange state only at the periodic sync epoch (3
minutes in the paper's §4.3 setup), so a *DP neighborhood* — one
decision point plus its share of sites, CPUs, and submission hosts —
only ever influences another neighborhood at epoch boundaries.  That
epoch is a conservative lookahead in the classic Chandy–Misra–Bryant
sense: within a window ``[t, t+E)`` no cross-neighborhood message can
arrive, so every neighborhood can run the whole window to completion
before any exchange happens.

This module partitions a configuration into ``decision_points``
neighborhoods ("hoods"), groups hoods into shards, and advances the
shards in lockstep epoch windows:

1. run every shard's event heap to the barrier time ``t``;
2. collect each hood's *own* dispatch records produced since the last
   barrier (origin-filtered, learn-sequence watermarks);
3. route every batch to every other hood with a deterministic ordering
   key ``(destination hood, source hood)``;
4. schedule the merges at ``t`` so they execute at the start of the
   next window, then advance to the next barrier.

Because *all* cross-hood synchronization goes through the barrier —
hoods never share a network, grid, RNG, or trace, even when they share
a shard's event heap — the outcome of every hood is independent of how
hoods are grouped into shards.  ``run_sharded(config, n_shards=1)``,
``n_shards=2`` and ``n_shards=4`` therefore produce bit-identical
per-hood summaries and (canonically merged) event journals, which
``digruber diff --pair sharded-2/sharded-4`` and the property tests
gate on.

Two executors share the same per-window protocol:

* ``mode="lockstep"`` — every shard lives in this process; windows are
  executed shard after shard.  This is the determinism reference and
  the fastest option on a single core.
* ``mode="workers"`` — one OS process per shard, exchanging record
  batches over pipes at each barrier.  Same results, real parallelism
  when cores are available.
"""

from __future__ import annotations

import multiprocessing
import time as _walltime
import zlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.check.digest import EventJournal, install_probes
from repro.experiments.configs import ExperimentConfig
from repro.experiments.parallel import RunSummary, summarize, summary_digest
from repro.experiments.runner import (BuiltExperiment, build_experiment,
                                      finalize_experiment)
from repro.sim.kernel import Simulator

__all__ = ["ShardedRunResult", "hood_config", "plan_shards", "run_sharded"]

#: Disjoint job-id blocks per hood: far above any single hood's job
#: count (a 100x-OSG hood submits ~10M jobs per simulated day).
_JID_BLOCK = 10 ** 9

#: Seed stride between hoods (prime, so hood seed sequences of
#: different base seeds interleave without collisions in practice).
_SEED_STRIDE = 7919


def _share(total: int, part: int, n: int) -> int:
    """Balanced integer split: parts differ by at most one."""
    return total // n + (1 if part < total % n else 0)


def plan_shards(n_hoods: int, n_shards: int) -> list[list[int]]:
    """Assign hoods to shards in contiguous balanced blocks."""
    if not 1 <= n_shards <= n_hoods:
        raise ValueError(
            f"n_shards must be in [1, {n_hoods}], got {n_shards}")
    plan: list[list[int]] = []
    start = 0
    for s in range(n_shards):
        size = _share(n_hoods, s, n_shards)
        plan.append(list(range(start, start + size)))
        start += size
    return plan


def hood_config(config: ExperimentConfig, hood: int) -> ExperimentConfig:
    """Derive one DP neighborhood's sub-configuration.

    The hood gets one decision point, a balanced share of the sites /
    CPUs / submission hosts, its own seed and a disjoint job-id block.
    Per-sim observability (trace, spans, telemetry, flight recorder) is
    forced off — hoods may share a shard's simulator, where per-sim
    samplers from different hoods would interleave — and the chaos
    scenario, when present, strikes the first neighborhood only
    (scenarios target ``dp_ids[0]`` of a deployment; hood 0 is its
    sharded counterpart).  Sharded telemetry instead samples hood-local
    state at every epoch barrier (see :meth:`_Hood.sample_timeline`).
    """
    n_hoods = config.decision_points
    if not 0 <= hood < n_hoods:
        raise ValueError(f"hood must be in [0, {n_hoods}), got {hood}")
    if config.n_clients < n_hoods:
        raise ValueError(
            f"cannot shard {config.n_clients} clients over {n_hoods} "
            "neighborhoods")
    if config.n_sites < n_hoods:
        raise ValueError(
            f"cannot shard {config.n_sites} sites over {n_hoods} "
            "neighborhoods")
    return config.with_(
        decision_points=1,
        n_clients=_share(config.n_clients, hood, n_hoods),
        n_sites=_share(config.n_sites, hood, n_hoods),
        total_cpus=_share(config.total_cpus, hood, n_hoods),
        seed=config.seed + _SEED_STRIDE * (hood + 1),
        jid_offset=(hood + 1) * _JID_BLOCK,
        name=f"{config.name}-h{hood}",
        chaos_scenario=config.chaos_scenario if hood == 0 else "",
        # Checkpointing is a runner-level concern here: barrier
        # snapshots (below) replace per-sim Checkpointer ticks, which
        # would collide across hoods sharing one directory and heap.
        checkpoint_every_s=0.0, checkpoint_dir="",
        trace_enabled=False, trace_path="",
        spans_enabled=False, spans_path="",
        telemetry_enabled=False, telemetry_path="", serve_telemetry=False,
        flight_enabled=False, flight_path="")


class _Hood:
    """One built neighborhood plus its epoch-coupling state."""

    def __init__(self, sim: Simulator, config: ExperimentConfig,
                 hood: int, journal: bool, telemetry: bool = False):
        self.hood = hood
        self.built: BuiltExperiment = build_experiment(
            hood_config(config, hood), sim=sim)
        #: Barrier-sampled telemetry rows (hood-local state only), or
        #: ``None`` when telemetry is off.
        self.timeline: Optional[list[dict]] = [] if telemetry else None
        self.dp = next(iter(self.built.deployment.decision_points.values()))
        self._mark = 0  # learn-sequence watermark for barrier exports
        #: Static knowledge this hood contributes to every peer's view.
        self.capacities = {name: site.total_cpus
                           for name, site in self.built.grid.sites.items()}
        # Brokering stays neighborhood-local even once the view knows
        # the whole grid (ordered: selector tie-breaking must not
        # depend on set iteration order).
        self.dp.engine.broker_sites = tuple(self.built.grid.sites)
        self.journal: Optional[EventJournal] = None
        if journal:
            self.journal = EventJournal()
            install_probes(self.journal, deployment=self.built.deployment,
                           sites=self.built.grid.sites.values())

    def extend_static_knowledge(self, site_capacities: dict) -> None:
        """Adopt peer neighborhoods' static capacities (pre-run)."""
        self.dp.engine.view.extend_capacities(site_capacities)

    def collect(self) -> list:
        """This hood's own records produced since the last barrier.

        A crashed decision point exports nothing and keeps its
        watermark — pre-crash records flow out at the first barrier
        after its restart, mirroring how a monolithic run's crashed DP
        stops flooding until it comes back.
        """
        if not self.dp.online:
            return []
        mark, records = self.dp.engine.view.records_since(self._mark)
        self._mark = mark
        owner = self.dp.engine.owner
        out = [r for r in records if r.origin == owner]
        out.sort(key=lambda r: r.seq)
        return out

    def deliver(self, batches: Sequence[tuple[int, Sequence]],
                barrier_t: float) -> None:
        """Schedule peer batches for adoption at the barrier instant.

        The merges run at the start of the next window, in source-hood
        order — a deterministic ordering key independent of shard
        grouping.  A crashed decision point misses the epoch outright
        (no replay), exactly as it misses sync floods in a monolithic
        run; the monitor's ground-truth sweep reconciles after restart.
        """
        if not batches:
            return
        dp, engine = self.dp, self.dp.engine
        def _adopt() -> None:
            if not dp.online:
                return
            for _src, records in batches:
                engine.merge_remote_records(list(records), now=barrier_t)
        self.built.sim.schedule_at(barrier_t, _adopt)

    def sample_timeline(self, t: float) -> None:
        """Record one telemetry row at an epoch barrier.

        Reads *hood-local* deployment/grid/client state only — never
        the shard's shared metrics registry, where co-located hoods'
        series would interleave and the result would depend on the
        grouping.  Pure read, so sampling cannot perturb the run.
        """
        if self.timeline is None:
            return
        from repro.obs.timeline import hood_snapshot
        self.timeline.append(hood_snapshot(self.built, self.hood, t))

    def finalize(self) -> RunSummary:
        return summarize(finalize_experiment(self.built))


class _ShardRuntime:
    """All of one shard's hoods on a shared event heap."""

    def __init__(self, config: ExperimentConfig, hood_ids: Sequence[int],
                 journal: bool):
        # Batch windows respect epoch barriers for free: the batched
        # run loop honors ``until`` per *timestamp*, and barrier
        # instants bound every window via ``run_window``, so no batch
        # can straddle a barrier (``sim.run(until=t)`` leaves the clock
        # exactly at ``t`` either way).
        self.sim = Simulator(fast=config.fast_paths,
                             batch_dispatch=config.batch_dispatch)
        telemetry = bool(config.telemetry_enabled or config.telemetry_path)
        self.hoods = [_Hood(self.sim, config, h, journal, telemetry)
                      for h in hood_ids]

    def capacities(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for h in self.hoods:
            out.update(h.capacities)
        return out

    def extend_static_knowledge(self, site_capacities: dict) -> None:
        for h in self.hoods:
            h.extend_static_knowledge(site_capacities)

    def run_window(self, until: float) -> None:
        self.sim.run(until=until)

    def sample_timeline(self, t: float) -> None:
        for h in self.hoods:
            h.sample_timeline(t)

    def collect(self) -> dict[int, list]:
        return {h.hood: h.collect() for h in self.hoods}

    def deliver(self, inbound: dict[int, list], barrier_t: float) -> None:
        for h in self.hoods:
            h.deliver(inbound.get(h.hood, []), barrier_t)

    def finalize(self) -> dict[int, tuple[RunSummary, Optional[list],
                                          Optional[list]]]:
        out = {}
        for h in self.hoods:
            entries = None
            if h.journal is not None:
                entries = [(e.time, e.kind, e.detail) for e in h.journal.entries]
            out[h.hood] = (h.finalize(), entries, h.timeline)
        return out


def _route(outbound: dict[int, list]) -> dict[int, list]:
    """All-to-all exchange with deterministic ``(dest, src)`` ordering.

    Every hood's batch goes to every *other* hood: one decision point
    per hood makes the mesh exchange exactly the all-to-all flood, and
    origin filtering in :meth:`_Hood.collect` already guarantees each
    record crosses the barrier once.
    """
    sources = sorted(src for src, recs in outbound.items() if recs)
    return {dest: [(src, outbound[src]) for src in sources if src != dest]
            for dest in outbound}


def _barriers(config: ExperimentConfig) -> list[float]:
    """Barrier instants: sync-epoch multiples strictly inside the run."""
    epoch = config.sync_interval_s
    out, i = [], 1
    while i * epoch < config.duration_s:
        out.append(i * epoch)
        i += 1
    return out


@dataclass(frozen=True)
class ShardedRunResult:
    """Everything a sharded run produced, grouping-independent."""

    config: ExperimentConfig
    n_shards: int
    mode: str
    summaries: tuple  # RunSummary per hood, in hood order
    total_events: int
    heap_peak: int
    wall_s: float
    journal: Optional[EventJournal] = field(default=None, repr=False)
    #: Grid-wide merged telemetry rows (sorted by ``(t, hood)``), or
    #: ``None`` when the config has telemetry off.  Identical across
    #: shard counts and modes, like every other field here.
    timeline: Optional[list] = field(default=None, repr=False)

    @property
    def n_hoods(self) -> int:
        return len(self.summaries)

    @property
    def summary_digests(self) -> tuple[str, ...]:
        return tuple(summary_digest(s) for s in self.summaries)

    @property
    def digest(self) -> str:
        """One digest over every hood's summary digest (hood order)."""
        crc = 0
        for d in self.summary_digests:
            crc = zlib.crc32(d.encode(), crc)
        return f"{crc:08x}"

    @property
    def journal_digest(self) -> Optional[int]:
        return None if self.journal is None else self.journal.digest

    @property
    def events_per_s(self) -> float:
        return self.total_events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def n_jobs(self) -> int:
        return sum(s.n_jobs for s in self.summaries)

    def fallbacks(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for s in self.summaries:
            for k, v in s.fallbacks.items():
                out[k] = out.get(k, 0) + v
        return out

    def describe(self) -> str:
        fb = self.fallbacks()
        lines = [
            f"== {self.config.name}: {self.n_hoods} neighborhood(s) on "
            f"{self.n_shards} shard(s) [{self.mode}], "
            f"{self.config.duration_s:.0f} s ==",
            f"requests={self.n_jobs} handled={fb.get('handled', 0)} "
            f"timeout-fallback={fb.get('timeout', 0)} "
            f"backlogged={fb.get('backlogged', 0)}",
            f"events={self.total_events} wall={self.wall_s:.2f}s "
            f"({self.events_per_s:,.0f} events/s)",
            f"digest={self.digest}",
        ]
        return "\n".join(lines)


def _merge_journals(per_hood: dict[int, Optional[list]]) -> EventJournal:
    """Canonical journal merge: one chained-CRC stream for the run.

    Entries sort by ``(time, hood, per-hood index)`` — per-hood index
    order is preserved via the stable sort, and the hood id breaks
    same-instant ties between neighborhoods the same way regardless of
    shard grouping, so any grouping re-chains to the same digest.
    """
    merged = EventJournal()
    flat = [(t, hood, i, kind, detail)
            for hood in sorted(per_hood)
            for i, (t, kind, detail) in enumerate(per_hood[hood] or [])]
    flat.sort(key=lambda e: (e[0], e[1], e[2]))
    for t, _hood, _i, kind, detail in flat:
        merged.record(t, kind, detail)
    return merged


def _hood_barrier_state(h: _Hood) -> dict:
    """Grouping-independent state of one neighborhood at a barrier.

    Deliberately excludes the kernel section — the event heap is shared
    per shard, so its contents depend on how hoods are grouped;
    everything captured here belongs to this hood alone, so the digest
    is identical under any shard count.
    """
    built = h.built
    return {
        "rng": built.rng.snapshot_state(),
        "grid": [built.grid.sites[name].snapshot_state()
                 for name in sorted(built.grid.sites)],
        "dp": h.dp.snapshot_state(),
        "clients": [c.snapshot_state() for c in built.clients],
        "mark": h._mark,
    }


def _run_lockstep(config: ExperimentConfig, plan: list[list[int]],
                  journal: bool, restore_snapshot: Optional[dict] = None):
    import os

    from repro.sim.snapshot import (SnapshotError, checkpoint_filename,
                                    encode_config, state_digest,
                                    write_snapshot)

    runtimes = [_ShardRuntime(config, hood_ids, journal)
                for hood_ids in plan]
    # Pre-run exchange of static knowledge: every view learns every
    # site's capacity before the first event executes.
    global_caps: dict[str, int] = {}
    for rt in runtimes:
        global_caps.update(rt.capacities())
    for rt in runtimes:
        rt.extend_static_knowledge(global_caps)
    hoods = [h for rt in runtimes for h in rt.hoods]
    ckpt_dir = (config.checkpoint_dir
                if config.checkpoint_every_s > 0 else "")
    next_due = config.checkpoint_every_s
    restore_t = (restore_snapshot["barrier_t"]
                 if restore_snapshot is not None else None)
    verified = restore_snapshot is None
    for index, t in enumerate(_barriers(config)):
        outbound: dict[int, list] = {}
        for rt in runtimes:
            rt.run_window(t)
            rt.sample_timeline(t)
            outbound.update(rt.collect())
        # Barrier checkpoints/verification happen after collect (the
        # watermark is part of the digest) and before deliver (the
        # adoption events run in the *next* window on both sides).
        due = bool(ckpt_dir) and t >= next_due
        if due or t == restore_t:
            digests = {str(h.hood): state_digest(_hood_barrier_state(h))
                       for h in hoods}
            if t == restore_t:
                want = restore_snapshot["hood_digests"]
                if digests != want:
                    diverged = sorted(k for k in digests
                                      if digests[k] != want.get(k))
                    raise SnapshotError(
                        f"lockstep rerun diverged from the barrier "
                        f"checkpoint at t={t:g} in neighborhood(s): "
                        f"{', '.join(diverged)}")
                verified = True
            if due:
                os.makedirs(ckpt_dir, exist_ok=True)
                write_snapshot(
                    {"sharded": True, "barrier_t": t,
                     "barrier_index": index,
                     "config": encode_config(config),
                     "hood_digests": digests},
                    os.path.join(ckpt_dir, checkpoint_filename(t, index)))
                while next_due <= t:
                    next_due += config.checkpoint_every_s
        inbound = _route(outbound)
        for rt in runtimes:
            rt.deliver(inbound, t)
    if not verified:
        raise SnapshotError(
            f"restore checkpoint's barrier t={restore_t:g} was never "
            f"reached (run has {len(_barriers(config))} barriers)")
    outcomes: dict[int, tuple] = {}
    for rt in runtimes:
        rt.run_window(config.duration_s)
        rt.sample_timeline(config.duration_s)
        outcomes.update(rt.finalize())
    events = sum(rt.sim.events_executed for rt in runtimes)
    heap_peak = max(rt.sim.heap_peak for rt in runtimes)
    return outcomes, events, heap_peak


def _shard_worker(conn, config: ExperimentConfig, hood_ids: list[int],
                  journal: bool) -> None:
    """One shard in its own process, barrier-stepped by the parent."""
    try:
        rt = _ShardRuntime(config, hood_ids, journal)
        conn.send(rt.capacities())
        rt.extend_static_knowledge(conn.recv())
        for t in _barriers(config):
            rt.run_window(t)
            rt.sample_timeline(t)
            conn.send(rt.collect())
            rt.deliver(conn.recv(), t)
        rt.run_window(config.duration_s)
        rt.sample_timeline(config.duration_s)
        conn.send(("ok", rt.finalize(), rt.sim.events_executed,
                   rt.sim.heap_peak))
    except BaseException as err:  # surface, don't hang the parent
        conn.send(("error", f"{type(err).__name__}: {err}"))
        raise
    finally:
        conn.close()


def _run_workers(config: ExperimentConfig, plan: list[list[int]],
                 journal: bool):
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    pipes, procs = [], []
    try:
        for hood_ids in plan:
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_shard_worker,
                               args=(child, config, hood_ids, journal))
            proc.start()
            child.close()
            pipes.append(parent)
            procs.append(proc)
        global_caps: dict[str, int] = {}
        for conn in pipes:
            global_caps.update(conn.recv())
        for conn in pipes:
            conn.send(global_caps)
        for t in _barriers(config):
            outbound: dict[int, list] = {}
            for conn in pipes:
                outbound.update(conn.recv())
            inbound = _route(outbound)
            for hood_ids, conn in zip(plan, pipes):
                conn.send({h: inbound.get(h, []) for h in hood_ids})
        outcomes: dict[int, tuple] = {}
        events = heap_peak = 0
        for conn in pipes:
            msg = conn.recv()
            if msg[0] != "ok":
                raise RuntimeError(f"shard worker failed: {msg[1]}")
            outcomes.update(msg[1])
            events += msg[2]
            heap_peak = max(heap_peak, msg[3])
        return outcomes, events, heap_peak
    finally:
        for conn in pipes:
            conn.close()
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():
                proc.terminate()
                proc.join()


def _write_sharded_timeline(config: ExperimentConfig,
                            rows: list[dict]) -> None:
    """Write the merged grid-wide timeline as a JSONL file.

    Deliberately omits the shard count and mode from the meta line —
    the file must be byte-identical under any grouping (the
    grouping-independence contract extends to telemetry artifacts).
    """
    import json
    with open(config.telemetry_path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"meta": {
            "interval_s": config.sync_interval_s, "sharded": True,
            "name": config.name, "seed": config.seed,
            "duration_s": config.duration_s,
            "decision_points": config.decision_points,
            "n_clients": config.n_clients, "n_sites": config.n_sites,
            "total_cpus": config.total_cpus}}) + "\n")
        for row in rows:
            fh.write(json.dumps(row) + "\n")


def run_sharded(config: ExperimentConfig, n_shards: int = 1,
                mode: str = "lockstep", journal: bool = False,
                restore: Optional[str] = None) -> ShardedRunResult:
    """Run ``config`` space-partitioned into DP neighborhoods.

    ``n_shards`` groups the ``config.decision_points`` neighborhoods
    onto that many event heaps (``mode="lockstep"``) or worker
    processes (``mode="workers"``).  Results are independent of both
    ``n_shards`` and ``mode`` — see the module docstring.  With
    ``journal=True`` every neighborhood runs fully probed and the
    result carries the canonical merged :class:`EventJournal`.

    With ``config.checkpoint_every_s > 0`` the lockstep executor writes
    a barrier checkpoint — per-neighborhood state digests at an epoch
    barrier — whenever a barrier crosses the cadence.  ``restore``
    names such a checkpoint: the run is a verified lockstep rerun that
    must re-derive every neighborhood's digest at that barrier
    (:class:`~repro.sim.snapshot.SnapshotError` names diverging hoods)
    before completing.  Both are lockstep-only.
    """
    if mode not in ("lockstep", "workers"):
        raise ValueError(f"unknown mode {mode!r}")
    restore_snapshot = None
    if restore is not None:
        from repro.sim.snapshot import SnapshotError, read_snapshot
        restore_snapshot = read_snapshot(restore)
        if not restore_snapshot.get("sharded"):
            raise SnapshotError(
                f"{restore!r} is not a sharded barrier checkpoint; "
                "monolithic snapshots restore via resume_experiment")
    checkpointing = config.checkpoint_every_s > 0
    if mode == "workers" and n_shards > 1 and (checkpointing
                                               or restore is not None):
        raise ValueError(
            "barrier checkpoint/restore is lockstep-only; rerun with "
            "mode='lockstep'")
    plan = plan_shards(config.decision_points, n_shards)
    start = _walltime.perf_counter()
    if mode == "workers" and n_shards > 1:
        outcomes, events, heap_peak = _run_workers(config, plan, journal)
    else:
        outcomes, events, heap_peak = _run_lockstep(
            config, plan, journal, restore_snapshot=restore_snapshot)
    wall = _walltime.perf_counter() - start
    summaries = tuple(outcomes[h][0] for h in sorted(outcomes))
    merged = None
    if journal:
        merged = _merge_journals({h: outcomes[h][1] for h in outcomes})
    timeline = None
    if config.telemetry_enabled or config.telemetry_path:
        from repro.obs.timeline import merge_hood_timelines
        timeline = merge_hood_timelines(
            {h: outcomes[h][2] for h in outcomes})
        if config.telemetry_path:
            _write_sharded_timeline(config, timeline)
    return ShardedRunResult(config=config, n_shards=n_shards, mode=mode,
                            summaries=summaries, total_events=events,
                            heap_peak=heap_peak, wall_s=wall,
                            journal=merged, timeline=timeline)
