"""Deterministic checkpoint/restore for whole experiment runs.

The snapshot captures a *logical* image of the run at an exact event
boundary: the kernel clock and heap (entries keyed by ``(time, seq,
cancelled, qualname)``), every named RNG stream's bit-generator state,
grid/site queues and busy ledgers, each decision point's view records,
watermarks, USLA store and sync horizons, the control plane's streaks
and cooldowns, and each client's workload cursor — all reduced to
canonical JSON and CRC-digested per subsystem.

Live generator frames (the simulated processes) are deliberately *not*
serialized — CPython generators cannot be pickled portably.  Restore is
**verified deterministic replay**: rebuild the run from its embedded
config, scalar-step to exactly the checkpoint's event count, re-capture
the state, and require every subsystem digest to match the snapshot
before continuing.  A restored run is therefore bit-identical to the
uninterrupted run by construction, and ``digruber diff --pair resume``
proves it end to end (journals, spans, telemetry, summary digests).

On-disk format (``write_snapshot``)::

    {"meta": {"format": "digruber-snapshot", "version": 1, "crc": ...},
     "snapshot": {...}}

``crc`` covers the canonical (sorted-keys) JSON of the snapshot body;
writes are atomic (tmp + ``os.rename``) so a SIGKILL mid-write never
leaves a truncated restore candidate — ``newest_checkpoint`` validates
every candidate and skips corrupt or partial files.
"""

from __future__ import annotations

import dataclasses
import json
import os
import zlib
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.configs import ExperimentConfig
    from repro.experiments.runner import BuiltExperiment, ExperimentResult

__all__ = [
    "SnapshotError",
    "Checkpointer",
    "capture_state",
    "decode_config",
    "encode_config",
    "newest_checkpoint",
    "read_snapshot",
    "resume_experiment",
    "snapshot_experiment",
    "state_digest",
    "write_snapshot",
]

SNAPSHOT_FORMAT = "digruber-snapshot"
SNAPSHOT_VERSION = 1


class SnapshotError(RuntimeError):
    """A snapshot failed to serialize, validate, or verify on restore."""


# -- config codec --------------------------------------------------------
def encode_config(config: "ExperimentConfig") -> dict:
    """Reduce an :class:`ExperimentConfig` to a JSON-able dict."""
    d = dataclasses.asdict(config)
    d["strategy"] = config.strategy.value
    return d


def decode_config(d: dict) -> "ExperimentConfig":
    """Rebuild an :class:`ExperimentConfig` from :func:`encode_config`.

    JSON round-trips lose tuple-ness and enum identity; this restores
    both (``JobModel`` CPU mixes, the dissemination strategy).
    """
    from repro.control.policy import AutoscaleConfig
    from repro.core.sync import DisseminationStrategy
    from repro.experiments.configs import ExperimentConfig
    from repro.net.container import ContainerProfile
    from repro.resilience.policy import ResilienceConfig
    from repro.workloads.models import JobModel

    d = dict(d)
    d["profile"] = ContainerProfile(**d["profile"])
    d["strategy"] = DisseminationStrategy(d["strategy"])
    jm = dict(d["job_model"])
    jm["cpu_choices"] = tuple(jm["cpu_choices"])
    jm["cpu_weights"] = tuple(jm["cpu_weights"])
    d["job_model"] = JobModel(**jm)
    d["resilience"] = (ResilienceConfig(**d["resilience"])
                       if d.get("resilience") else None)
    d["autoscale"] = (AutoscaleConfig(**d["autoscale"])
                      if d.get("autoscale") else None)
    return ExperimentConfig(**d)


# -- state capture -------------------------------------------------------
def capture_state(built: "BuiltExperiment") -> dict:
    """Canonical per-subsystem state of a built run (JSON-able).

    Every section comes from that subsystem's own ``snapshot_state()``;
    iteration orders are pinned (hosts in fleet order, sites and
    decision points name-sorted) so two captures of identical runs are
    byte-identical.
    """
    deployment = built.deployment
    state = {
        "kernel": built.sim.snapshot_state(),
        "rng": built.rng.snapshot_state(),
        "grid": [built.grid.sites[name].snapshot_state()
                 for name in sorted(built.grid.sites)],
        "dps": [deployment.decision_points[k].snapshot_state()
                for k in sorted(deployment.decision_points, key=str)],
        "clients": [c.snapshot_state() for c in built.clients],
        "control": (built.planner.snapshot_state()
                    if built.planner is not None else None),
    }
    return state


def state_digest(state: dict) -> str:
    """8-hex CRC32 over the canonical JSON of a state section."""
    blob = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return format(zlib.crc32(blob.encode("utf-8")) & 0xFFFFFFFF, "08x")


def _sink_offsets(built: "BuiltExperiment") -> dict:
    """Byte offsets of every streaming sink at the capture instant.

    Replay regenerates each stream from t=0; restore verifies the
    regenerated prefix has exactly these lengths (sink reattach).
    """
    offsets = {}
    if built.trace_sink is not None:
        offsets["trace"] = built.trace_sink.byte_offset()
    if built.sampler is not None:
        offsets["telemetry"] = built.sampler.byte_offset()
    return offsets


def snapshot_experiment(built: "BuiltExperiment") -> dict:
    """Capture one full snapshot of a built run at the current instant."""
    state = capture_state(built)
    digests = {section: state_digest(value)
               for section, value in state.items()}
    return {
        "time": built.sim.now,
        "event_count": built.sim.events_executed,
        "config": encode_config(built.config),
        "state": state,
        "digests": digests,
        "digest": state_digest(state),
        "sinks": _sink_offsets(built),
    }


# -- on-disk format ------------------------------------------------------
def _canonical(snapshot: dict) -> str:
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def write_snapshot(snapshot: dict, path: str) -> str:
    """Atomically write a CRC-stamped snapshot file; returns ``path``.

    tmp + ``os.rename`` on the same filesystem: a SIGKILL mid-write
    leaves at worst an orphaned ``*.tmp`` that every reader ignores,
    never a truncated file under the final name.
    """
    body = _canonical(snapshot)
    crc = format(zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF, "08x")
    doc = {"meta": {"format": SNAPSHOT_FORMAT,
                    "version": SNAPSHOT_VERSION, "crc": crc},
           "snapshot": snapshot}
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(doc))
        fh.flush()
        os.fsync(fh.fileno())
    os.rename(tmp, path)
    return path


def read_snapshot(path: str) -> dict:
    """Read and validate one snapshot file; returns the snapshot body.

    Raises :class:`SnapshotError` on unreadable JSON, a foreign or
    future format, or a CRC mismatch (truncated/corrupt file).
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        raise SnapshotError(f"unreadable snapshot {path!r}: {err}") from err
    meta = doc.get("meta") if isinstance(doc, dict) else None
    if not isinstance(meta, dict) or meta.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"{path!r} is not a {SNAPSHOT_FORMAT} file")
    if meta.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path!r} has snapshot version {meta.get('version')!r}; "
            f"this build reads version {SNAPSHOT_VERSION}")
    snapshot = doc.get("snapshot")
    if not isinstance(snapshot, dict):
        raise SnapshotError(f"{path!r} carries no snapshot body")
    crc = format(zlib.crc32(_canonical(snapshot).encode("utf-8"))
                 & 0xFFFFFFFF, "08x")
    if crc != meta.get("crc"):
        raise SnapshotError(
            f"{path!r} failed its CRC check "
            f"(stamped {meta.get('crc')!r}, recomputed {crc!r})")
    return snapshot


def checkpoint_filename(time: float, event_count: int) -> str:
    return f"ckpt-{int(time):010d}-{event_count:012d}.json"


def newest_checkpoint(directory: str) -> Optional[str]:
    """Path of the newest *valid* checkpoint in ``directory``, or None.

    Newest by event count (encoded in the filename, confirmed from the
    body).  Corrupt, truncated, or in-flight (``*.tmp``) files are
    skipped, so a crash mid-write can only cost the interval since the
    previous checkpoint, never the ability to restore at all.
    """
    try:
        names = os.listdir(directory)
    except OSError:
        return None
    candidates = sorted(
        (n for n in names if n.startswith("ckpt-") and n.endswith(".json")),
        reverse=True)
    for name in candidates:
        path = os.path.join(directory, name)
        try:
            read_snapshot(path)
        except SnapshotError:
            continue
        return path
    return None


# -- periodic capture ----------------------------------------------------
class Checkpointer:
    """Periodic snapshot writer riding a run's own event heap.

    The tick *self-schedules before capturing*, so the next periodic
    entry is already in the heap when the state is captured — the
    replayed run's heap at the same event boundary is then identical.
    Capture draws no randomness and mutates nothing, and checkpoint
    scheduling is part of the config (both the reference and the
    resumed run carry the same ticks), so checkpointing never perturbs
    the simulation it snapshots.

    During replay the restore path suspends the checkpointer: ticks
    keep their heap slots (determinism) but skip capture and disk I/O.
    """

    def __init__(self, built: "BuiltExperiment"):
        config = built.config
        if config.checkpoint_every_s <= 0:
            raise ValueError("checkpoint_every_s must be > 0")
        self.built = built
        self.interval_s = config.checkpoint_every_s
        self.directory = config.checkpoint_dir
        self.suspended = False
        self.written: list[str] = []
        self.last: Optional[dict] = None
        self._next = built.sim.schedule(self.interval_s, self.tick)

    def tick(self) -> None:
        self._next = self.built.sim.schedule(self.interval_s, self.tick)
        if self.suspended:
            return
        snap = snapshot_experiment(self.built)
        self.last = snap
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(
            self.directory,
            checkpoint_filename(snap["time"], snap["event_count"]))
        write_snapshot(snap, path)
        self.written.append(path)

    def suspend(self) -> None:
        self.suspended = True

    def resume(self) -> None:
        self.suspended = False

    def cancel(self) -> None:
        if self._next is not None:
            self._next.cancel()
            self._next = None


# -- restore -------------------------------------------------------------
def _verify_state(built: "BuiltExperiment", snapshot: dict,
                  source: str) -> None:
    """Require the replayed run to match the snapshot exactly."""
    sim = built.sim
    if sim.events_executed != snapshot["event_count"]:
        raise SnapshotError(
            f"replay of {source} stopped at event {sim.events_executed}, "
            f"snapshot was taken at {snapshot['event_count']}")
    if sim.now != snapshot["time"]:
        raise SnapshotError(
            f"replay of {source} reached t={sim.now}, snapshot was taken "
            f"at t={snapshot['time']}")
    state = capture_state(built)
    digests = {section: state_digest(value)
               for section, value in state.items()}
    if digests != snapshot["digests"]:
        diverged = sorted(section for section in digests
                          if digests[section]
                          != snapshot["digests"].get(section))
        raise SnapshotError(
            f"replay of {source} diverged from the snapshot in "
            f"subsystem(s): {', '.join(diverged)}")
    offsets = _sink_offsets(built)
    if offsets != snapshot.get("sinks", {}):
        raise SnapshotError(
            f"replay of {source} regenerated sink prefixes {offsets}, "
            f"snapshot recorded {snapshot.get('sinks', {})}")


def resume_experiment(snapshot: Union[str, dict],
                      deployment_hook=None) -> "ExperimentResult":
    """Restore a run from a snapshot and run it to completion.

    ``snapshot`` is a path (validated via :func:`read_snapshot`) or an
    in-memory snapshot body.  The run is rebuilt from the embedded
    config, replayed to the exact checkpoint event boundary with the
    checkpointer suspended, verified digest-for-digest against the
    snapshot (:class:`SnapshotError` names the diverging subsystem on
    mismatch), and only then resumed to ``duration_s``.  Abnormal exits
    take the same :func:`abort_experiment` path as a fresh run.
    """
    from repro.experiments.runner import (abort_experiment, build_experiment,
                                          finalize_experiment)

    source = snapshot if isinstance(snapshot, str) else "<snapshot>"
    if isinstance(snapshot, str):
        snapshot = read_snapshot(snapshot)
    config = decode_config(snapshot["config"])
    built = build_experiment(config)
    if deployment_hook is not None:
        deployment_hook(sim=built.sim, deployment=built.deployment,
                        network=built.network, grid=built.grid,
                        rng=built.rng)
    if built.checkpointer is not None:
        built.checkpointer.suspend()
    try:
        built.sim.run_to_event(snapshot["event_count"])
        _verify_state(built, snapshot, source)
        if built.checkpointer is not None:
            built.checkpointer.resume()
        built.sim.run(until=config.duration_s)
    except BaseException as exc:
        abort_experiment(built, exc)
        raise
    return finalize_experiment(built)
