"""Usage service level agreements (USLAs).

The paper's USLA representation is "based on Maui semantics and
WS-Agreement syntax": fair-share entries with a percentage and a type —
target (no sign), upper limit (``+``), or lower limit (``-``) — extended
with an explicit (provider, consumer) pair and applied recursively to
VOs, groups, and users.  Allocations cover processor time, permanent
storage, or network bandwidth.

* :mod:`repro.usla.fairshare` — the rule model;
* :mod:`repro.usla.parser` — the textual rule syntax;
* :mod:`repro.usla.agreement` — WS-Agreement-style recursive documents
  with monitoring goals;
* :mod:`repro.usla.policy` — evaluation: entitlements, headroom, and
  violation checks against observed usage;
* :mod:`repro.usla.store` — a decision point's USLA repository
  (publish / discover / merge);
* :mod:`repro.usla.verify` — post-hoc compliance verification over
  execution records.
"""

from repro.usla.agreement import Agreement, AgreementContext, Goal, ServiceTerm
from repro.usla.fairshare import FairShareRule, ResourceType, ShareKind
from repro.usla.parser import UslaParseError, format_rule, parse_policy, parse_rule
from repro.usla.policy import PolicyDecision, PolicyEngine
from repro.usla.store import UslaStore
from repro.usla.verify import ComplianceReport, verify_goals, verify_usage

__all__ = [
    "Agreement",
    "AgreementContext",
    "ComplianceReport",
    "FairShareRule",
    "Goal",
    "PolicyDecision",
    "PolicyEngine",
    "ResourceType",
    "ServiceTerm",
    "ShareKind",
    "UslaParseError",
    "UslaStore",
    "format_rule",
    "parse_policy",
    "parse_rule",
    "verify_goals",
    "verify_usage",
]
