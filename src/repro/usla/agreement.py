"""WS-Agreement-shaped USLA documents.

The paper bases its SLA specification "on a subset of WS-Agreement,
taking advantage of the refined specification and the high-level
structure", expressing allocations as goals "allowing the specification
of rules with a finer granularity", and uses "a simple schema that
allows for monitoring resources and goal specifications".

An :class:`Agreement` carries a context (the two parties), service
terms (fair-share rules), guarantee goals (monitorable predicates), and
optional nested sub-agreements — the recursive VO → group → user
delegation chain.  Documents serialize to/from plain dicts, the
"simple schema" the decision points exchange.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.usla.fairshare import FairShareRule
from repro.usla.parser import format_rule, parse_rule

__all__ = ["AgreementContext", "ServiceTerm", "Goal", "Agreement"]

_COMPARATORS: dict[str, Callable[[float, float], bool]] = {
    ">=": operator.ge,
    "<=": operator.le,
    ">": operator.gt,
    "<": operator.lt,
    "==": operator.eq,
}


@dataclass(frozen=True)
class AgreementContext:
    """The two parties of a WS-Agreement: initiator and responder."""

    provider: str
    consumer: str
    expiration_s: Optional[float] = None  # simulated time; None = unbounded

    def __post_init__(self):
        if not self.provider or not self.consumer:
            raise ValueError("provider and consumer must be non-empty")


@dataclass(frozen=True)
class ServiceTerm:
    """One service description term wrapping a fair-share rule."""

    name: str
    rule: FairShareRule

    def to_dict(self) -> dict:
        return {"name": self.name, "rule": format_rule(self.rule)}

    @staticmethod
    def from_dict(d: dict) -> "ServiceTerm":
        return ServiceTerm(name=d["name"], rule=parse_rule(d["rule"]))


@dataclass(frozen=True)
class Goal:
    """A monitorable guarantee: ``metric comparator value``.

    e.g. ``Goal("utilization", ">=", 0.5)`` — the paper expresses
    allocations "as WS-Agreement goals".
    """

    metric: str
    comparator: str
    value: float

    def __post_init__(self):
        if self.comparator not in _COMPARATORS:
            raise ValueError(
                f"unknown comparator {self.comparator!r}; "
                f"expected one of {sorted(_COMPARATORS)}")

    def satisfied_by(self, observed: float) -> bool:
        return _COMPARATORS[self.comparator](observed, self.value)

    def to_dict(self) -> dict:
        return {"metric": self.metric, "comparator": self.comparator,
                "value": self.value}

    @staticmethod
    def from_dict(d: dict) -> "Goal":
        return Goal(metric=d["metric"], comparator=d["comparator"],
                    value=float(d["value"]))


@dataclass
class Agreement:
    """A USLA document; may nest sub-agreements recursively."""

    name: str
    context: AgreementContext
    terms: list[ServiceTerm] = field(default_factory=list)
    goals: list[Goal] = field(default_factory=list)
    children: list["Agreement"] = field(default_factory=list)
    version: int = 1

    def all_rules(self) -> list[FairShareRule]:
        """Flatten this agreement tree into its fair-share rules."""
        rules = [t.rule for t in self.terms]
        for child in self.children:
            rules.extend(child.all_rules())
        return rules

    def is_expired(self, now: float) -> bool:
        exp = self.context.expiration_s
        return exp is not None and now >= exp

    def check_goals(self, observations: dict[str, float]) -> dict[str, bool]:
        """Evaluate each goal against observed metric values.

        Metrics absent from ``observations`` evaluate to ``False`` —
        an unverifiable guarantee is treated as unmet, which is the
        conservative reading for enforcement.
        """
        out = {}
        for g in self.goals:
            observed = observations.get(g.metric)
            out[g.metric] = g.satisfied_by(observed) if observed is not None else False
        return out

    # -- serialization ("simple schema") -------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "context": {
                "provider": self.context.provider,
                "consumer": self.context.consumer,
                "expiration_s": self.context.expiration_s,
            },
            "terms": [t.to_dict() for t in self.terms],
            "goals": [g.to_dict() for g in self.goals],
            "children": [c.to_dict() for c in self.children],
            "version": self.version,
        }

    @staticmethod
    def from_dict(d: dict) -> "Agreement":
        ctx = d["context"]
        return Agreement(
            name=d["name"],
            context=AgreementContext(provider=ctx["provider"],
                                     consumer=ctx["consumer"],
                                     expiration_s=ctx.get("expiration_s")),
            terms=[ServiceTerm.from_dict(t) for t in d.get("terms", [])],
            goals=[Goal.from_dict(g) for g in d.get("goals", [])],
            children=[Agreement.from_dict(c) for c in d.get("children", [])],
            version=int(d.get("version", 1)),
        )

    def bump_version(self) -> None:
        self.version += 1
