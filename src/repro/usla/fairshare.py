"""Maui-style fair-share rules with provider/consumer extension.

A rule reads: *provider grants consumer `percent`% of `resource` as a
target / upper limit / lower limit*.  The paper's examples — ``VO0.25``,
``VO0.25+``, ``VO0.25-`` — carry only the consumer; the DI-GRUBER
extension "associat[es] both a consumer and a provider with each entry;
extending the specification in a recursive way to VOs, groups, and
users".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ShareKind", "ResourceType", "FairShareRule"]


class ShareKind(enum.Enum):
    """Maui fair-share entry types (sign suffix in the textual syntax)."""

    TARGET = ""        # steer usage toward the percentage
    UPPER_LIMIT = "+"  # usage must not exceed the percentage
    LOWER_LIMIT = "-"  # usage must not fall below the percentage


class ResourceType(enum.Enum):
    """Resources USLAs allocate (paper §3.3)."""

    CPU = "cpu"
    STORAGE = "storage"
    NETWORK = "network"


@dataclass(frozen=True)
class FairShareRule:
    """One fair-share entry.

    Attributes
    ----------
    provider:
        The granting entity: a site name, ``"grid"`` for grid-wide
        shares, or a VO name when a VO sub-allocates to its groups.
    consumer:
        The receiving entity: a VO, ``vo.group``, or ``vo.group.user``.
    percent:
        Share of the provider's resource, in (0, 100].
    kind:
        Target, upper limit, or lower limit.
    resource:
        Resource class the share applies to (CPU by default).
    """

    provider: str
    consumer: str
    percent: float
    kind: ShareKind = ShareKind.TARGET
    resource: ResourceType = ResourceType.CPU

    def __post_init__(self):
        if not self.provider or not self.consumer:
            raise ValueError("provider and consumer must be non-empty")
        if not (0.0 < self.percent <= 100.0):
            raise ValueError(f"percent must be in (0, 100], got {self.percent}")

    @property
    def fraction(self) -> float:
        return self.percent / 100.0

    # -- evaluation helpers -------------------------------------------------
    def violated_by(self, usage_fraction: float, tolerance: float = 0.0) -> bool:
        """Does an observed usage fraction violate this rule?

        Targets are steering hints and are never *violated*; upper
        limits are violated when exceeded, lower limits when the
        provider failed to deliver the floor.
        """
        if usage_fraction < 0:
            raise ValueError(f"usage fraction must be >= 0, got {usage_fraction}")
        if self.kind is ShareKind.UPPER_LIMIT:
            return usage_fraction > self.fraction + tolerance
        if self.kind is ShareKind.LOWER_LIMIT:
            return usage_fraction < self.fraction - tolerance
        return False

    def headroom(self, usage_fraction: float) -> float:
        """Remaining entitlement before this rule binds.

        For targets and upper limits: how much more (as a fraction of
        the provider's resource) the consumer may use; negative when
        already over.  Lower limits never restrict the consumer, so
        headroom is infinite.
        """
        if self.kind is ShareKind.LOWER_LIMIT:
            return float("inf")
        return self.fraction - usage_fraction

    def __str__(self) -> str:
        from repro.usla.parser import format_rule
        return format_rule(self)
