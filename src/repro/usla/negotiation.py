"""Automated USLA negotiation.

"USLA specification, enforcement, negotiation, and verification
mechanisms arise at multiple levels within VO-based environments" (§2.3)
— and the paper contrasts DI-GRUBER with Cremona, IBM's WS-Agreement
implementation focused on "advance reservations, automated SLA
negotiation and verification".  This module provides the negotiation
mechanism for our WS-Agreement documents, used when a VO asks a
provider for a share before jobs flow:

* the **provider** evaluates an offered agreement against what it has
  already committed: full headroom → *accept*; partial → *counter* with
  the grantable shares; below its floor → *reject*;
* the **consumer** accepts a counter when it preserves at least
  ``min_fraction`` of every asked share, otherwise walks away.

Accepted agreements are published into the provider's USLA store (and
returned to the consumer for its own records), versioned per round.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.net.transport import Endpoint, Network, RpcError
from repro.sim.kernel import Simulator
from repro.usla.agreement import Agreement, ServiceTerm
from repro.usla.fairshare import FairShareRule, ShareKind
from repro.usla.store import UslaStore

__all__ = ["NegotiationOutcome", "ProviderNegotiator", "ConsumerNegotiator"]

#: Server-side processing time per negotiation round, seconds.
NEGOTIATION_SERVICE_S = 0.2


@dataclass(frozen=True)
class NegotiationOutcome:
    """Result of one negotiation attempt, consumer side."""

    status: str                      # "accepted" | "countered" | "rejected" | "failed"
    agreement: Optional[Agreement]   # final document when accepted
    rounds: int


class ProviderNegotiator(Endpoint):
    """Provider-side evaluation of offered agreements.

    Parameters
    ----------
    store:
        The provider's USLA store (accepted agreements are published
        here — e.g. a decision point's store, making the share
        immediately enforceable).
    max_commit_fraction:
        Total share of each resource the provider will commit across
        all consumers (overbooking guard).
    min_grant_fraction:
        Offers whose grantable share falls below this floor are
        rejected outright rather than countered.
    """

    def __init__(self, network: Network, node_id, store: UslaStore,
                 max_commit_fraction: float = 1.0,
                 min_grant_fraction: float = 0.01):
        super().__init__(network, node_id)
        if not (0.0 < max_commit_fraction <= 1.0):
            raise ValueError("max_commit_fraction must be in (0, 1]")
        self.store = store
        self.max_commit_fraction = max_commit_fraction
        self.min_grant_fraction = min_grant_fraction
        self.offers_seen = 0
        self.accepted = 0
        self.countered = 0
        self.rejected = 0
        self.register_handler("negotiate", self._handle_offer)
        self.register_handler("confirm", self._handle_confirm)

    # -- committed-share accounting -----------------------------------------
    def committed_fraction(self, provider: str, resource) -> float:
        total = 0.0
        for ag in self.store:
            for rule in ag.all_rules():
                if (rule.provider == provider and rule.resource == resource
                        and rule.kind in (ShareKind.TARGET,
                                          ShareKind.UPPER_LIMIT,
                                          ShareKind.LOWER_LIMIT)):
                    total += rule.fraction
        return total

    def _grantable(self, rule: FairShareRule) -> float:
        headroom = (self.max_commit_fraction
                    - self.committed_fraction(rule.provider, rule.resource))
        return max(min(rule.fraction, headroom), 0.0)

    # -- the handler -------------------------------------------------------------
    def _handle_offer(self, payload, src):
        yield NEGOTIATION_SERVICE_S
        self.offers_seen += 1
        offer = Agreement.from_dict(payload)
        grants: list[ServiceTerm] = []
        full = True
        for term in offer.terms:
            grantable = self._grantable(term.rule)
            if grantable < self.min_grant_fraction:
                self.rejected += 1
                return {"status": "rejected", "agreement": None}
            if grantable < term.rule.fraction - 1e-12:
                full = False
            grants.append(ServiceTerm(
                term.name, replace(term.rule, percent=grantable * 100.0)))
        granted = Agreement(name=offer.name, context=offer.context,
                            terms=grants, goals=list(offer.goals),
                            version=offer.version)
        if full:
            self._publish(granted)
            self.accepted += 1
            return {"status": "accepted", "agreement": granted.to_dict()}
        self.countered += 1
        return {"status": "countered", "agreement": granted.to_dict()}

    def _handle_confirm(self, payload, src):
        """Consumer confirms a counter-offer: publish it."""
        agreement = Agreement.from_dict(payload)
        self._publish(agreement)
        self.accepted += 1
        return {"status": "accepted", "agreement": agreement.to_dict()}

    def _publish(self, agreement: Agreement) -> None:
        if agreement.name in self.store:
            agreement.version = self.store.get(agreement.name).version + 1
        self.store.publish(agreement)


class ConsumerNegotiator(Endpoint):
    """Consumer-side driver: propose, evaluate counters, confirm."""

    def __init__(self, network: Network, node_id, sim: Simulator):
        super().__init__(network, node_id)
        self.sim = sim
        self.outcomes: list[NegotiationOutcome] = []

    def negotiate(self, provider_id, offer: Agreement,
                  min_fraction: float = 0.5):
        """Process generator: returns a :class:`NegotiationOutcome`.

        ``min_fraction``: the smallest acceptable ratio of granted to
        asked share, per term.
        """
        if not (0.0 < min_fraction <= 1.0):
            raise ValueError("min_fraction must be in (0, 1]")
        rounds = 1
        try:
            reply = yield self.network.rpc(self.node_id, provider_id,
                                           "negotiate", offer.to_dict(),
                                           size_kb=0.5, response_size_kb=0.5)
        except RpcError:
            outcome = NegotiationOutcome("failed", None, rounds)
            self.outcomes.append(outcome)
            return outcome

        if reply["status"] == "accepted":
            outcome = NegotiationOutcome(
                "accepted", Agreement.from_dict(reply["agreement"]), rounds)
        elif reply["status"] == "rejected":
            outcome = NegotiationOutcome("rejected", None, rounds)
        else:  # countered
            counter = Agreement.from_dict(reply["agreement"])
            acceptable = all(
                granted.rule.fraction >= asked.rule.fraction * min_fraction
                for granted, asked in zip(counter.terms, offer.terms))
            if acceptable:
                rounds += 1
                try:
                    confirm = yield self.network.rpc(
                        self.node_id, provider_id, "confirm",
                        counter.to_dict(), size_kb=0.5)
                    outcome = NegotiationOutcome(
                        "accepted", Agreement.from_dict(confirm["agreement"]),
                        rounds)
                except RpcError:
                    outcome = NegotiationOutcome("failed", None, rounds)
            else:
                outcome = NegotiationOutcome("countered", counter, rounds)
        self.outcomes.append(outcome)
        return outcome
