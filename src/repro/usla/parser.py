"""Textual USLA rule syntax.

Grammar (one rule per line; ``#`` starts a comment)::

    rule     := [resource "|"] provider ":" consumer "=" percent "%" [sign]
    resource := "cpu" | "storage" | "network"
    sign     := "+" | "-"

Examples::

    grid:atlas=40%          # target: steer atlas toward 40% of the grid
    grid:cms=30%+           # upper limit
    atlas:atlas.higgs=50%   # VO sub-allocates to a group (recursive)
    storage|site003:atlas=25%+

This is the Maui-notation-with-provider/consumer extension described in
the paper; the WS-Agreement-shaped document structure lives in
:mod:`repro.usla.agreement` and embeds these rules as service terms.
"""

from __future__ import annotations

import re

from repro.usla.fairshare import FairShareRule, ResourceType, ShareKind

__all__ = ["UslaParseError", "parse_rule", "parse_policy", "format_rule"]


class UslaParseError(ValueError):
    """A rule line did not match the grammar."""


_RULE_RE = re.compile(
    r"""^\s*
        (?:(?P<resource>cpu|storage|network)\s*\|\s*)?
        (?P<provider>[A-Za-z0-9_.\-]+)\s*:\s*
        (?P<consumer>[A-Za-z0-9_.\-]+)\s*=\s*
        (?P<percent>\d+(?:\.\d+)?)\s*%\s*
        (?P<sign>[+-]?)\s*$""",
    re.VERBOSE,
)

_SIGN_TO_KIND = {"": ShareKind.TARGET, "+": ShareKind.UPPER_LIMIT,
                 "-": ShareKind.LOWER_LIMIT}


def parse_rule(text: str) -> FairShareRule:
    """Parse one rule line into a :class:`FairShareRule`."""
    m = _RULE_RE.match(text)
    if m is None:
        raise UslaParseError(f"cannot parse USLA rule: {text!r}")
    try:
        return FairShareRule(
            provider=m.group("provider"),
            consumer=m.group("consumer"),
            percent=float(m.group("percent")),
            kind=_SIGN_TO_KIND[m.group("sign")],
            resource=(ResourceType(m.group("resource"))
                      if m.group("resource") else ResourceType.CPU),
        )
    except ValueError as err:
        raise UslaParseError(f"invalid rule {text!r}: {err}") from err


def parse_policy(text: str) -> list[FairShareRule]:
    """Parse a multi-line policy document; blank/comment lines ignored."""
    rules = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            rules.append(parse_rule(line))
        except UslaParseError as err:
            raise UslaParseError(f"line {lineno}: {err}") from err
    return rules


def format_rule(rule: FairShareRule) -> str:
    """Serialize a rule back to the textual syntax (parse round-trips)."""
    prefix = "" if rule.resource is ResourceType.CPU else f"{rule.resource.value}|"
    pct = repr(float(rule.percent))  # repr round-trips exactly through parse
    return f"{prefix}{rule.provider}:{rule.consumer}={pct}%{rule.kind.value}"
