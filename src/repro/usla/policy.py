"""Policy evaluation: entitlements, headroom, admission decisions.

The decision points consult a :class:`PolicyEngine` when making
USLA-aware site selections: given the current usage picture, may this
VO (group, user) take more of this provider's resource, and how much
headroom is left?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.usla.fairshare import FairShareRule, ResourceType, ShareKind

__all__ = ["PolicyDecision", "PolicyEngine"]


@dataclass(frozen=True)
class PolicyDecision:
    """Outcome of an admission check."""

    allowed: bool
    headroom_fraction: float  # provider-resource fraction still entitled
    binding_rule: Optional[FairShareRule]  # rule that bound, if any
    reason: str = ""


class PolicyEngine:
    """Indexes fair-share rules and answers admission/entitlement queries.

    Rules are indexed by (provider, consumer, resource).  Multiple rules
    for the same key compose conservatively: the effective cap is the
    minimum over targets and upper limits.
    """

    def __init__(self, rules: Iterable[FairShareRule] = ()):
        self._rules: dict[tuple[str, str, ResourceType], list[FairShareRule]] = {}
        for r in rules:
            self.add_rule(r)

    def add_rule(self, rule: FairShareRule) -> None:
        key = (rule.provider, rule.consumer, rule.resource)
        self._rules.setdefault(key, []).append(rule)

    def remove_rules(self, provider: str, consumer: str,
                     resource: ResourceType = ResourceType.CPU) -> int:
        """Drop all rules for a key; returns how many were removed."""
        return len(self._rules.pop((provider, consumer, resource), []))

    def rules_for(self, provider: str, consumer: Optional[str] = None,
                  resource: ResourceType = ResourceType.CPU
                  ) -> list[FairShareRule]:
        if consumer is not None:
            return list(self._rules.get((provider, consumer, resource), []))
        return [r for (p, _c, res), rs in self._rules.items()
                for r in rs if p == provider and res == resource]

    def __len__(self) -> int:
        return sum(len(rs) for rs in self._rules.values())

    def __iter__(self):
        for rs in self._rules.values():
            yield from rs

    # -- queries -----------------------------------------------------------
    def entitled_fraction(self, provider: str, consumer: str,
                          resource: ResourceType = ResourceType.CPU,
                          default: float = 1.0) -> float:
        """The effective cap for consumer at provider (min over rules).

        With no applicable target/upper rule, the consumer is entitled
        to ``default`` (opportunistic use of free resources — the
        paper's environment model: "free resources are acquired when
        available").
        """
        caps = [r.fraction for r in self.rules_for(provider, consumer, resource)
                if r.kind in (ShareKind.TARGET, ShareKind.UPPER_LIMIT)]
        return min(caps) if caps else default

    def guaranteed_fraction(self, provider: str, consumer: str,
                            resource: ResourceType = ResourceType.CPU) -> float:
        """The floor promised by lower-limit rules (0 when none)."""
        floors = [r.fraction for r in self.rules_for(provider, consumer, resource)
                  if r.kind is ShareKind.LOWER_LIMIT]
        return max(floors) if floors else 0.0

    def check_admission(self, provider: str, consumer: str,
                        usage_fraction: float,
                        request_fraction: float = 0.0,
                        resource: ResourceType = ResourceType.CPU
                        ) -> PolicyDecision:
        """May ``consumer`` take ``request_fraction`` more at ``provider``?

        Targets and upper limits cap admission; the binding rule is the
        tightest one.  Consumers with no rules are admitted (grids are
        opportunistic by default).
        """
        if usage_fraction < 0 or request_fraction < 0:
            raise ValueError("usage and request fractions must be >= 0")
        rules = [r for r in self.rules_for(provider, consumer, resource)
                 if r.kind in (ShareKind.TARGET, ShareKind.UPPER_LIMIT)]
        if not rules:
            return PolicyDecision(True, 1.0 - usage_fraction, None,
                                  "no applicable rule; opportunistic admission")
        binding = min(rules, key=lambda r: r.fraction)
        headroom = binding.fraction - usage_fraction
        if usage_fraction + request_fraction <= binding.fraction:
            return PolicyDecision(True, headroom, binding, "within share")
        return PolicyDecision(False, headroom, binding,
                              f"over {binding.kind.name.lower()} "
                              f"{binding.percent:g}%")

    def violations(self, provider: str,
                   usage_by_consumer: dict[str, float],
                   resource: ResourceType = ResourceType.CPU,
                   tolerance: float = 0.0) -> list[tuple[FairShareRule, float]]:
        """All (rule, observed) pairs violated by an observed usage map."""
        out = []
        for consumer, usage in usage_by_consumer.items():
            for rule in self.rules_for(provider, consumer, resource):
                if rule.violated_by(usage, tolerance=tolerance):
                    out.append((rule, usage))
        return out
