"""Per-decision-point USLA repository.

Answers the paper's storage question — "how USLAs can be stored,
retrieved, and disseminated efficiently in a large distributed
environment" — with a versioned publish/discover store.  Merging two
stores keeps the highest version per agreement name, so dissemination
strategy 1 (exchange USLAs *and* usage) is a pairwise merge that is
commutative, associative, and idempotent; the sync tests assert those
properties.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.usla.agreement import Agreement
from repro.usla.policy import PolicyEngine

__all__ = ["UslaStore"]


class UslaStore:
    """Versioned agreement repository with discovery queries."""

    def __init__(self, owner: str = ""):
        self.owner = owner
        self._agreements: dict[str, Agreement] = {}
        #: Monotone mutation counter.  Consumers that cache derived
        #: views (the engine's flattened policy) compare against it
        #: instead of relying on every mutation site to remember a
        #: manual invalidation call — the negotiation path published
        #: straight into the store and left a decision point answering
        #: availability queries from a stale entitlement cache.
        self.mutations = 0

    # -- publish / retrieve ------------------------------------------------
    def publish(self, agreement: Agreement) -> None:
        """Insert or replace; replacing requires a strictly newer version."""
        existing = self._agreements.get(agreement.name)
        if existing is not None and agreement.version <= existing.version:
            raise ValueError(
                f"agreement {agreement.name!r} v{agreement.version} does not "
                f"supersede stored v{existing.version}")
        self._agreements[agreement.name] = agreement
        self.mutations += 1

    def get(self, name: str) -> Agreement:
        try:
            return self._agreements[name]
        except KeyError:
            raise KeyError(f"no agreement named {name!r}") from None

    def remove(self, name: str) -> None:
        if self._agreements.pop(name, None) is not None:
            self.mutations += 1

    def __len__(self) -> int:
        return len(self._agreements)

    def __contains__(self, name: str) -> bool:
        return name in self._agreements

    def __iter__(self):
        return iter(self._agreements.values())

    def snapshot_state(self) -> dict:
        """Canonical store state for snapshot digests (JSON-able)."""
        return {
            "owner": self.owner,
            "mutations": self.mutations,
            "agreements": sorted(
                [name, ag.version] for name, ag in self._agreements.items()),
        }

    # -- discovery ------------------------------------------------------------
    def discover(self, provider: Optional[str] = None,
                 consumer: Optional[str] = None,
                 now: Optional[float] = None) -> list[Agreement]:
        """Find agreements by party, optionally excluding expired ones."""
        out = []
        for ag in self._agreements.values():
            if provider is not None and ag.context.provider != provider:
                continue
            if consumer is not None and ag.context.consumer != consumer:
                continue
            if now is not None and ag.is_expired(now):
                continue
            out.append(ag)
        return out

    def policy_engine(self) -> PolicyEngine:
        """Flatten every stored agreement into a fresh policy engine."""
        engine = PolicyEngine()
        for ag in self._agreements.values():
            for rule in ag.all_rules():
                engine.add_rule(rule)
        return engine

    # -- dissemination ------------------------------------------------------
    def merge_from(self, agreements: Iterable[Agreement]) -> int:
        """Last-writer-wins merge by version; returns agreements adopted."""
        adopted = 0
        for ag in agreements:
            existing = self._agreements.get(ag.name)
            if existing is None or ag.version > existing.version:
                self._agreements[ag.name] = ag
                adopted += 1
        if adopted:
            self.mutations += 1
        return adopted

    def export(self) -> list[dict]:
        """Wire form for the sync protocol (the 'simple schema')."""
        return [ag.to_dict() for ag in self._agreements.values()]

    @staticmethod
    def import_wire(payload: list[dict]) -> list[Agreement]:
        return [Agreement.from_dict(d) for d in payload]
