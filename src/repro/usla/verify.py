"""Post-hoc USLA compliance verification.

"Both providers and consumers want to verify that USLAs are applied
correctly" — this module checks delivered CPU shares (from site
accounting) against the fair-share rules and produces a per-consumer
compliance report, used in integration tests and the fair-share
example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.usla.fairshare import FairShareRule, ShareKind

__all__ = ["ComplianceReport", "verify_usage", "verify_goals"]


@dataclass
class ConsumerCompliance:
    """Observed vs entitled share for one consumer under one provider."""

    provider: str
    consumer: str
    observed_fraction: float
    target_fraction: float | None = None
    upper_fraction: float | None = None
    lower_fraction: float | None = None
    violations: list[str] = field(default_factory=list)

    @property
    def compliant(self) -> bool:
        return not self.violations

    @property
    def target_error(self) -> float | None:
        """Signed deviation from the target share (None without a target)."""
        if self.target_fraction is None:
            return None
        return self.observed_fraction - self.target_fraction


@dataclass
class ComplianceReport:
    """Verification result over a full usage snapshot."""

    entries: list[ConsumerCompliance] = field(default_factory=list)

    @property
    def compliant(self) -> bool:
        return all(e.compliant for e in self.entries)

    @property
    def violations(self) -> list[str]:
        return [v for e in self.entries for v in e.violations]

    def entry(self, provider: str, consumer: str) -> ConsumerCompliance:
        for e in self.entries:
            if e.provider == provider and e.consumer == consumer:
                return e
        raise KeyError(f"no compliance entry for ({provider!r}, {consumer!r})")

    def summary(self) -> str:
        lines = [f"{'provider':<14}{'consumer':<18}{'observed':>9}"
                 f"{'target':>8}{'status':>12}"]
        for e in self.entries:
            target = f"{e.target_fraction:.0%}" if e.target_fraction is not None else "-"
            status = "OK" if e.compliant else "VIOLATED"
            lines.append(f"{e.provider:<14}{e.consumer:<18}"
                         f"{e.observed_fraction:>8.1%}{target:>8}{status:>12}")
        return "\n".join(lines)


def verify_usage(rules: list[FairShareRule],
                 usage: dict[tuple[str, str], float],
                 tolerance: float = 0.02) -> ComplianceReport:
    """Check observed usage fractions against fair-share rules.

    Parameters
    ----------
    rules:
        The governing fair-share rules.
    usage:
        Observed usage as ``{(provider, consumer): fraction}`` — e.g.
        the share of grid CPU-seconds each VO received during a run.
        Pairs governed by rules but absent from ``usage`` are treated
        as zero usage (relevant for lower limits).
    tolerance:
        Slack applied to limit checks (delivered shares are noisy).
    """
    by_pair: dict[tuple[str, str], list[FairShareRule]] = {}
    for r in rules:
        by_pair.setdefault((r.provider, r.consumer), []).append(r)
    return _build_report(by_pair, usage, tolerance)


def _build_report(by_pair, usage, tolerance) -> ComplianceReport:

    report = ComplianceReport()
    pairs = sorted(set(by_pair) | set(usage))
    for provider, consumer in pairs:
        observed = usage.get((provider, consumer), 0.0)
        entry = ConsumerCompliance(provider=provider, consumer=consumer,
                                   observed_fraction=observed)
        for rule in by_pair.get((provider, consumer), []):
            if rule.kind is ShareKind.TARGET:
                entry.target_fraction = rule.fraction
            elif rule.kind is ShareKind.UPPER_LIMIT:
                entry.upper_fraction = rule.fraction
            elif rule.kind is ShareKind.LOWER_LIMIT:
                entry.lower_fraction = rule.fraction
            if rule.violated_by(observed, tolerance=tolerance):
                entry.violations.append(
                    f"{provider}:{consumer} observed {observed:.1%} violates "
                    f"{rule.kind.name.lower()} {rule.percent:g}%")
        report.entries.append(entry)
    return report


def verify_goals(agreement, result) -> dict[str, bool]:
    """Check an agreement's monitoring goals against a finished run.

    The paper "express[es] allocations as WS-Agreement goals allowing
    the specification of rules with a finer granularity" over "a simple
    schema that allows for monitoring resources and goal
    specifications".  This helper evaluates those goals against the
    metrics an :class:`~repro.experiments.runner.ExperimentResult` (or
    anything exposing the same accessors) actually delivered:

    ======================  =======================================
    goal metric             measured as
    ======================  =======================================
    ``utilization``         ``result.utilization("all")``
    ``accuracy``            ``result.accuracy("handled")``
    ``qtime_s``             ``result.qtime("all")``
    ``throughput_qps``      peak windowed throughput
    ``response_s``          mean query response
    ======================  =======================================
    """
    d = result.diperf() if hasattr(result, "diperf") else None
    observations = {
        "utilization": result.utilization("all"),
        "accuracy": result.accuracy("handled"),
        "qtime_s": result.qtime("all") if hasattr(result, "qtime") else None,
    }
    if d is not None:
        observations["throughput_qps"] = d.throughput_stats().peak
        observations["response_s"] = d.response_stats().average
    observations = {k: v for k, v in observations.items() if v is not None}
    return agreement.check_goals(observations)
