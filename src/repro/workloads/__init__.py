"""Synthetic composite workloads and execution traces.

The paper "used composite workloads that overlay work for [10] VOs and
[10] groups per VO", with jobs "submitted every second from a
submission host" by ~120 hosts over one hour.  Since we have no access
to the original Grid3 traces, :mod:`repro.workloads.models` provides
Grid3-era-shaped synthetic job attribute distributions (heavy-tailed
durations, mostly single-CPU jobs), and
:mod:`repro.workloads.generator` pre-generates deterministic per-host
job streams with vectorized numpy draws.

:mod:`repro.workloads.trace` records query/job events into columnar
tables — the input format shared by the metrics module and GRUB-SIM.
"""

from repro.workloads.generator import (
    HostWorkload,
    WorkloadGenerator,
    workload_from_job_trace,
)
from repro.workloads.models import JobModel
from repro.workloads.profiles import (ARRIVAL_PROFILES, ArrivalProfile,
                                      arrival_profile,
                                      arrival_profile_names)
from repro.workloads.trace import QUERY_FIELDS, JOB_FIELDS, TraceRecorder

__all__ = [
    "ARRIVAL_PROFILES",
    "ArrivalProfile",
    "HostWorkload",
    "JOB_FIELDS",
    "JobModel",
    "QUERY_FIELDS",
    "TraceRecorder",
    "WorkloadGenerator",
    "arrival_profile",
    "arrival_profile_names",
    "workload_from_job_trace",
]
