"""Composite workload generation.

One :class:`HostWorkload` is the deterministic job stream of one
submission host: arrival times (the paper's fixed one-job-per-second
cadence, optionally Poisson), and per-job VO/group/user assignments and
attributes, all pre-drawn as numpy arrays (vectorized per the HPC
guides) with :class:`~repro.grid.job.Job` objects materialized lazily
as the simulation consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

import numpy as np

from repro.grid.job import Job
from repro.grid.vo import VORegistry
from repro.workloads.models import JobModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.profiles import ArrivalProfile

__all__ = ["HostWorkload", "WorkloadGenerator"]


@dataclass
class HostWorkload:
    """Pre-generated job stream for one submission host."""

    host: str
    arrivals: np.ndarray       # absolute submission times, seconds
    vo_names: list[str]        # per job
    group_names: list[str]
    user_names: list[str]
    cpus: np.ndarray
    durations: np.ndarray
    #: When set, job ``index`` gets ``jid_base + index`` instead of the
    #: process-global counter — run-deterministic ids, so artifacts
    #: that embed jids (span exports) are byte-identical across runs.
    jid_base: Optional[int] = None

    def __len__(self) -> int:
        return len(self.arrivals)

    def job_at(self, index: int) -> Job:
        """Materialize the index-th job (lazily, at its arrival)."""
        job = Job(
            vo=self.vo_names[index],
            group=self.group_names[index],
            user=self.user_names[index],
            cpus=int(self.cpus[index]),
            duration_s=float(self.durations[index]),
            submission_host=self.host,
        )
        if self.jid_base is not None:
            job.jid = self.jid_base + index
        return job

    def __iter__(self) -> Iterator[tuple[float, int]]:
        """Yield (arrival_time, index) pairs in time order."""
        for i, t in enumerate(self.arrivals):
            yield float(t), i


class WorkloadGenerator:
    """Builds composite workloads over the VO hierarchy.

    Parameters
    ----------
    vos:
        The VO registry of the target grid (jobs are spread across all
        VOs and groups — the paper's "composite workloads that overlay
        work for [10] VOs and [10] groups per VO").
    model:
        Job attribute distributions.
    rng:
        Named stream from the experiment's :class:`RngRegistry`.
    """

    def __init__(self, vos: VORegistry, model: JobModel,
                 rng: np.random.Generator):
        if len(vos) == 0:
            raise ValueError("VO registry is empty")
        self.vos = vos
        self.model = model
        self.rng = rng
        # Flatten the hierarchy once for vectorized assignment.
        self._triples: list[tuple[str, str, str]] = []
        for vo in vos:
            for group in vo.groups.values():
                if group.users:
                    for user in group.users:
                        self._triples.append((vo.name, group.name, user.name))
                else:
                    self._triples.append((vo.name, group.name,
                                          f"{group.name}-anon"))
        if not self._triples:
            raise ValueError("VO registry has no groups")

    def host_workload(self, host: str, duration_s: float,
                      interarrival_s: float = 1.0,
                      start_s: float = 0.0,
                      poisson: bool = False,
                      diurnal_amplitude: float = 0.0,
                      diurnal_period_s: float = 86400.0,
                      profile: Optional["ArrivalProfile"] = None
                      ) -> HostWorkload:
        """The job stream one submission host issues during the run.

        Fixed cadence by default ("jobs were submitted every second
        from a submission host"); ``poisson=True`` draws exponential
        gaps with the same mean instead.  ``diurnal_amplitude`` in
        ``[0, 1)`` thins arrivals sinusoidally over ``diurnal_period_s``
        (production grids see strong day/night submission cycles) —
        mean rate is preserved at the peak, and off-peak arrivals are
        dropped with probability ``amplitude * (1 - cos) / 2``.

        ``profile`` (an :class:`~repro.workloads.profiles.ArrivalProfile`)
        overrides the shape knobs wholesale and adds periodic burst
        windows: arrivals are drawn dense at ``interarrival /
        burst_factor`` and thinned to the base rate outside bursts.
        """
        burst_factor, burst_period_s, burst_duty = 1.0, 0.0, 0.25
        if profile is not None:
            resolved = profile.resolve(duration_s)
            poisson = resolved.poisson
            interarrival_s = interarrival_s * resolved.interarrival_scale
            diurnal_amplitude = resolved.diurnal_amplitude
            if resolved.diurnal_period_s > 0:
                diurnal_period_s = resolved.diurnal_period_s
            burst_factor = resolved.burst_factor
            burst_period_s = resolved.burst_period_s
            burst_duty = resolved.burst_duty
        if duration_s <= 0 or interarrival_s <= 0:
            raise ValueError("duration_s and interarrival_s must be > 0")
        if not (0.0 <= diurnal_amplitude < 1.0):
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if burst_factor > 1.0 and burst_period_s > 0:
            # Dense draw at the in-burst rate; off-burst arrivals are
            # thinned back down to the base rate below.
            interarrival_s = interarrival_s / burst_factor
        if poisson:
            # Draw enough exponential gaps to cover the window.
            est = int(duration_s / interarrival_s * 1.5) + 10
            gaps = self.rng.exponential(interarrival_s, size=est)
            arrivals = start_s + np.cumsum(gaps)
            arrivals = arrivals[arrivals < start_s + duration_s]
        else:
            arrivals = start_s + np.arange(0.0, duration_s, interarrival_s)
        if diurnal_amplitude > 0.0 and len(arrivals):
            phase = 2.0 * np.pi * arrivals / diurnal_period_s
            drop_p = diurnal_amplitude * (1.0 - np.cos(phase)) / 2.0
            keep = self.rng.random(len(arrivals)) >= drop_p
            arrivals = arrivals[keep]
        if burst_factor > 1.0 and burst_period_s > 0 and len(arrivals):
            in_burst = (arrivals % burst_period_s) < \
                burst_duty * burst_period_s
            keep = in_burst | \
                (self.rng.random(len(arrivals)) < 1.0 / burst_factor)
            arrivals = arrivals[keep]
        n = len(arrivals)
        picks = self.rng.integers(0, len(self._triples), size=n)
        vo_names, group_names, user_names = [], [], []
        for p in picks:
            v, g, u = self._triples[int(p)]
            vo_names.append(v)
            group_names.append(g)
            user_names.append(u)
        return HostWorkload(
            host=host,
            arrivals=arrivals,
            vo_names=vo_names,
            group_names=group_names,
            user_names=user_names,
            cpus=self.model.draw_cpus(self.rng, n),
            durations=self.model.draw_durations(self.rng, n),
        )

    def fleet(self, hosts: Sequence[str], duration_s: float,
              interarrival_s: float = 1.0,
              start_offsets: Optional[dict[str, float]] = None,
              poisson: bool = False,
              profile: Optional["ArrivalProfile"] = None
              ) -> dict[str, HostWorkload]:
        """Workloads for a whole client fleet (DiPerF ramps set offsets)."""
        offsets = start_offsets or {}
        return {
            h: self.host_workload(h, duration_s=duration_s,
                                  interarrival_s=interarrival_s,
                                  start_s=offsets.get(h, 0.0),
                                  poisson=poisson, profile=profile)
            for h in hosts
        }


def workload_from_job_trace(trace, host: str = "replay",
                            user_suffix: str = "u0") -> HostWorkload:
    """Rebuild a replayable :class:`HostWorkload` from a recorded trace.

    Takes the job table of a :class:`~repro.workloads.trace.TraceRecorder`
    (e.g. loaded via ``load_jobs_csv``) and reconstructs the submission
    stream: creation times become arrivals; VO, CPU counts, and runtimes
    are reproduced verbatim.  This is how a recorded run is replayed
    against a different broker configuration (the trace-driven
    counterpart to the synthetic generator; GRUB-SIM does the same with
    query traces).
    """
    import numpy as np  # local: keep module import surface unchanged

    jobs = trace.job_arrays()
    if len(jobs["jid"]) == 0:
        raise ValueError("trace contains no jobs to replay")
    created = jobs["created_at"]
    keep = ~np.isnan(created)
    order = np.argsort(created[keep], kind="stable")

    def col(name):
        return jobs[name][keep][order]

    vo_names = [str(v) for v in col("vo")]
    return HostWorkload(
        host=host,
        arrivals=col("created_at").astype(np.float64),
        vo_names=vo_names,
        group_names=[f"{v}-g0" for v in vo_names],
        user_names=[f"{v}-{user_suffix}" for v in vo_names],
        cpus=col("cpus").astype(np.int64),
        durations=col("duration_s").astype(np.float64),
    )
