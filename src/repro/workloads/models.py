"""Job attribute distributions.

Grid3-era physics workloads (the paper's motivating load: LHC
experiment production) are dominated by single-CPU jobs with
heavy-tailed runtimes from minutes to hours.  The default model is
calibrated so the canonical experiment keeps the emulated 40k-CPU grid
in the tens-of-percent utilization band the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["JobModel"]


@dataclass(frozen=True)
class JobModel:
    """Distributions for per-job CPU count and runtime.

    Attributes
    ----------
    duration_mean_s:
        Mean job runtime (lognormal with shape ``duration_sigma``).
    duration_sigma:
        Lognormal shape; ~1.0 gives the minutes-to-hours spread of
        production physics workloads.
    cpu_choices / cpu_weights:
        Discrete CPU-count distribution; Grid3 jobs were predominantly
        single-CPU with a small multi-CPU tail.
    min_duration_s:
        Floor on runtimes (sub-second "jobs" are monitoring artifacts,
        not work).
    """

    duration_mean_s: float = 800.0
    duration_sigma: float = 1.0
    cpu_choices: tuple[int, ...] = (1, 2, 4, 8, 16)
    cpu_weights: tuple[float, ...] = (0.40, 0.25, 0.15, 0.12, 0.08)
    min_duration_s: float = 30.0

    def __post_init__(self):
        if self.duration_mean_s <= 0:
            raise ValueError("duration_mean_s must be > 0")
        if len(self.cpu_choices) != len(self.cpu_weights):
            raise ValueError("cpu_choices and cpu_weights length mismatch")
        if abs(sum(self.cpu_weights) - 1.0) > 1e-9:
            raise ValueError(f"cpu_weights must sum to 1, got {sum(self.cpu_weights)}")
        if any(c < 1 for c in self.cpu_choices):
            raise ValueError("cpu counts must be >= 1")

    def draw_durations(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vectorized runtime draws with the requested *mean*."""
        mu = np.log(self.duration_mean_s) - 0.5 * self.duration_sigma ** 2
        d = rng.lognormal(mu, self.duration_sigma, size=n)
        return np.maximum(d, self.min_duration_s)

    def draw_cpus(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(np.array(self.cpu_choices, dtype=np.int64), size=n,
                          p=np.array(self.cpu_weights))

    def scaled(self, duration_factor: float) -> "JobModel":
        """A copy with runtimes scaled (for scaled-down test configs)."""
        return JobModel(duration_mean_s=self.duration_mean_s * duration_factor,
                        duration_sigma=self.duration_sigma,
                        cpu_choices=self.cpu_choices,
                        cpu_weights=self.cpu_weights,
                        min_duration_s=min(self.min_duration_s,
                                           self.duration_mean_s * duration_factor / 4))
