"""Named arrival profiles: steady, diurnal, bursty.

The paper's workloads are steady (one job per second per host).  The
elastic brokering plane needs load that *moves*: production grids see
strong day/night submission cycles and flash crowds, and an autoscaler
only earns its keep when demand breathes.  A profile is a small frozen
recipe over the :class:`~repro.workloads.generator.WorkloadGenerator`
knobs — Poisson vs fixed cadence, sinusoidal diurnal thinning, and
periodic burst windows — resolved against the run horizon so "one
day/night cycle" means one cycle of *this* run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["ArrivalProfile", "ARRIVAL_PROFILES", "arrival_profile",
           "arrival_profile_names"]


@dataclass(frozen=True)
class ArrivalProfile:
    """One named arrival-pattern recipe (frozen, sweepable)."""

    name: str
    #: Exponential gaps instead of the paper's fixed cadence.
    poisson: bool = False
    #: Multiplies the experiment's base interarrival (>1 = lighter).
    interarrival_scale: float = 1.0
    #: Sinusoidal thinning depth in [0, 1): 0.9 means the trough keeps
    #: ~10% of peak arrivals.
    diurnal_amplitude: float = 0.0
    #: Cycle length; <= 0 resolves to the run horizon (one full cycle).
    diurnal_period_s: float = 0.0
    #: Rate multiplier inside burst windows (1 = no bursts).
    burst_factor: float = 1.0
    #: Burst cycle length; <= 0 resolves to 1/6 of the run horizon.
    burst_period_s: float = 0.0
    #: Fraction of each burst cycle spent bursting.
    burst_duty: float = 0.25

    def __post_init__(self):
        if not self.name:
            raise ValueError("profile needs a name")
        if self.interarrival_scale <= 0:
            raise ValueError("interarrival_scale must be > 0")
        if not (0.0 <= self.diurnal_amplitude < 1.0):
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if not (0.0 < self.burst_duty < 1.0):
            raise ValueError("burst_duty must be in (0, 1)")

    @property
    def bursty(self) -> bool:
        return self.burst_factor > 1.0

    def resolve(self, duration_s: float) -> "ArrivalProfile":
        """Pin run-relative periods against a concrete horizon."""
        if duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        diurnal = self.diurnal_period_s
        if self.diurnal_amplitude > 0 and diurnal <= 0:
            diurnal = float(duration_s)
        burst = self.burst_period_s
        if self.bursty and burst <= 0:
            burst = max(1.0, math.floor(duration_s / 6.0))
        return replace(self, diurnal_period_s=diurnal, burst_period_s=burst)


#: The named registry.  ``steady`` is the paper's workload; ``diurnal``
#: breathes through one day/night cycle per run (trough at mid-run);
#: ``bursty`` rides 4x flash crowds a quarter of the time.
ARRIVAL_PROFILES: dict[str, ArrivalProfile] = {
    "steady": ArrivalProfile(name="steady"),
    "diurnal": ArrivalProfile(name="diurnal", poisson=True,
                              diurnal_amplitude=0.9),
    "bursty": ArrivalProfile(name="bursty", poisson=True,
                             burst_factor=4.0, burst_duty=0.25),
}


def arrival_profile(name: str) -> ArrivalProfile:
    try:
        return ARRIVAL_PROFILES[name]
    except KeyError:
        raise ValueError(f"unknown workload profile {name!r}; expected one "
                         f"of {arrival_profile_names()}") from None


def arrival_profile_names() -> tuple[str, ...]:
    return tuple(sorted(ARRIVAL_PROFILES))
