"""Columnar execution traces.

Everything downstream — the five paper metrics, the DiPerF summary
tables, and GRUB-SIM's saturation replay — consumes the same two
tables recorded here:

* **queries** — one row per brokering query: when the client sent it,
  when (if ever) the response arrived, which decision point served it,
  and whether the client's timeout expired first;
* **jobs** — one row per job with its full lifecycle timestamps and
  brokering annotations (handled flag, scheduling accuracy).

Rows accumulate in plain Python lists (cheap appends in the hot path)
and convert to numpy arrays once at analysis time, per the
vectorize-the-post-processing guidance in the HPC guides.
"""

from __future__ import annotations

import csv
import math
from typing import Optional

import numpy as np

from repro.grid.job import Job, JobState

__all__ = ["TraceRecorder", "QUERY_FIELDS", "JOB_FIELDS"]

QUERY_FIELDS = ("sent_at", "responded_at", "response_s", "timed_out",
                "client", "decision_point")
JOB_FIELDS = ("jid", "vo", "created_at", "dispatched_at", "started_at",
              "completed_at", "cpus", "duration_s", "site", "handled",
              "accuracy", "queue_time_s", "failed")

_NAN = float("nan")


class TraceRecorder:
    """Accumulates query and job rows during a run."""

    def __init__(self) -> None:
        self._queries: list[tuple] = []
        self._jobs: list[tuple] = []

    # -- recording ---------------------------------------------------------
    def record_query(self, sent_at: float, responded_at: Optional[float],
                     timed_out: bool, client: str, decision_point: str) -> None:
        response = (responded_at - sent_at) if responded_at is not None else _NAN
        self._queries.append((sent_at,
                              responded_at if responded_at is not None else _NAN,
                              response, timed_out, client, decision_point))

    def record_job(self, job: Job) -> None:
        """Record a job once it reaches a terminal or end-of-run state."""
        qt = job.queue_time_s
        self._jobs.append((
            job.jid, job.vo,
            job.created_at if job.created_at is not None else _NAN,
            job.dispatched_at if job.dispatched_at is not None else _NAN,
            job.started_at if job.started_at is not None else _NAN,
            job.completed_at if job.completed_at is not None else _NAN,
            job.cpus, job.duration_s,
            job.site or "",
            job.handled_by_gruber,
            job.scheduling_accuracy if job.scheduling_accuracy is not None else _NAN,
            qt if qt is not None else _NAN,
            job.state is JobState.FAILED,
        ))

    @property
    def n_queries(self) -> int:
        return len(self._queries)

    @property
    def n_jobs(self) -> int:
        return len(self._jobs)

    # -- columnar access -----------------------------------------------------
    def query_arrays(self) -> dict[str, np.ndarray]:
        """Queries as named columns (empty arrays when nothing recorded)."""
        if not self._queries:
            return {
                "sent_at": np.empty(0), "responded_at": np.empty(0),
                "response_s": np.empty(0),
                "timed_out": np.empty(0, dtype=bool),
                "client": np.empty(0, dtype=object),
                "decision_point": np.empty(0, dtype=object),
            }
        cols = list(zip(*self._queries))
        return {
            "sent_at": np.asarray(cols[0], dtype=np.float64),
            "responded_at": np.asarray(cols[1], dtype=np.float64),
            "response_s": np.asarray(cols[2], dtype=np.float64),
            "timed_out": np.asarray(cols[3], dtype=bool),
            "client": np.asarray(cols[4], dtype=object),
            "decision_point": np.asarray(cols[5], dtype=object),
        }

    def job_arrays(self) -> dict[str, np.ndarray]:
        if not self._jobs:
            float_cols = ("created_at", "dispatched_at", "started_at",
                          "completed_at", "duration_s", "accuracy",
                          "queue_time_s")
            out: dict[str, np.ndarray] = {k: np.empty(0) for k in float_cols}
            out.update({"jid": np.empty(0, dtype=np.int64),
                        "cpus": np.empty(0, dtype=np.int64),
                        "vo": np.empty(0, dtype=object),
                        "site": np.empty(0, dtype=object),
                        "handled": np.empty(0, dtype=bool),
                        "failed": np.empty(0, dtype=bool)})
            return out
        cols = list(zip(*self._jobs))
        return {
            "jid": np.asarray(cols[0], dtype=np.int64),
            "vo": np.asarray(cols[1], dtype=object),
            "created_at": np.asarray(cols[2], dtype=np.float64),
            "dispatched_at": np.asarray(cols[3], dtype=np.float64),
            "started_at": np.asarray(cols[4], dtype=np.float64),
            "completed_at": np.asarray(cols[5], dtype=np.float64),
            "cpus": np.asarray(cols[6], dtype=np.int64),
            "duration_s": np.asarray(cols[7], dtype=np.float64),
            "site": np.asarray(cols[8], dtype=object),
            "handled": np.asarray(cols[9], dtype=bool),
            "accuracy": np.asarray(cols[10], dtype=np.float64),
            "queue_time_s": np.asarray(cols[11], dtype=np.float64),
            "failed": np.asarray(cols[12], dtype=bool),
        }

    # -- persistence (GRUB-SIM replays saved traces) -------------------------
    def save_queries_csv(self, path: str) -> None:
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(QUERY_FIELDS)
            writer.writerows(self._queries)

    @staticmethod
    def load_queries_csv(path: str) -> "TraceRecorder":
        rec = TraceRecorder()
        with open(path, newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            if tuple(header) != QUERY_FIELDS:
                raise ValueError(f"unexpected query-trace header {header!r}")
            for row in reader:
                sent, responded = float(row[0]), float(row[1])
                rec.record_query(
                    sent_at=sent,
                    responded_at=None if math.isnan(responded) else responded,
                    timed_out=row[3] == "True",
                    client=row[4],
                    decision_point=row[5],
                )
        return rec

    def save_jobs_csv(self, path: str) -> None:
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(JOB_FIELDS)
            writer.writerows(self._jobs)

    @staticmethod
    def load_jobs_csv(path: str) -> "TraceRecorder":
        """Load a saved job table (offline analysis / workload replay)."""
        rec = TraceRecorder()
        with open(path, newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            if tuple(header) != JOB_FIELDS:
                raise ValueError(f"unexpected job-trace header {header!r}")
            for row in reader:
                rec._jobs.append((
                    int(row[0]), row[1],
                    float(row[2]), float(row[3]), float(row[4]), float(row[5]),
                    int(row[6]), float(row[7]), row[8],
                    row[9] == "True", float(row[10]), float(row[11]),
                    row[12] == "True",
                ))
        return rec
