"""Tests for the analytic queueing models, plus DES-vs-theory validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import closed_loop_equilibrium, machine_repairman, mmc_metrics
from repro.sim import RngRegistry, Server, Simulator


class TestMMC:
    def test_mm1_textbook(self):
        # M/M/1 with rho = 0.5: R = 1/(mu - lambda) = 2/mu.
        m = mmc_metrics(arrival_rate=0.5, service_rate=1.0, c=1)
        assert m.response_s == pytest.approx(2.0)
        assert m.utilization == 0.5
        assert m.mean_in_system == pytest.approx(1.0)

    def test_more_servers_cut_waiting(self):
        single = mmc_metrics(1.5, 1.0, c=2)
        double = mmc_metrics(1.5, 1.0, c=4)
        assert double.response_s < single.response_s

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            mmc_metrics(2.0, 1.0, c=1)
        with pytest.raises(ValueError):
            mmc_metrics(-1.0, 1.0, c=1)


class TestMachineRepairman:
    def test_single_client_no_queueing(self):
        # One client: R = service time exactly.
        m = machine_repairman(n_clients=1, think_s=10.0, service_rate=0.5)
        assert m.response_s == pytest.approx(2.0)
        # Cycle = think + service; throughput = 1/cycle.
        assert m.throughput == pytest.approx(1.0 / 12.0)

    def test_saturation_limit(self):
        # Many clients, tiny think: throughput -> c * mu.
        m = machine_repairman(n_clients=100, think_s=1.0, service_rate=0.5,
                              c=1)
        assert m.throughput == pytest.approx(0.5, rel=0.01)
        assert m.utilization == pytest.approx(1.0, rel=0.01)

    def test_zero_think_degenerate(self):
        m = machine_repairman(n_clients=10, think_s=0.0, service_rate=1.0,
                              c=2)
        assert m.throughput == pytest.approx(2.0)
        assert m.response_s == pytest.approx(5.0)

    def test_littles_law_consistency(self):
        m = machine_repairman(n_clients=20, think_s=5.0, service_rate=0.4,
                              c=3)
        assert m.mean_in_system == pytest.approx(
            m.throughput * m.response_s, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            machine_repairman(0, 1.0, 1.0)


class TestClosedLoopBounds:
    def test_bounds_at_extremes(self):
        # Heavy saturation: X = c*mu.
        heavy = closed_loop_equilibrium(1000, 1.0, 1.0, c=2)
        assert heavy.throughput == 2.0
        # Light load: X = N / (think + service).
        light = closed_loop_equilibrium(2, 10.0, 1.0, c=4)
        assert light.throughput == pytest.approx(2.0 / 11.0)

    def test_bound_upper_bounds_exact(self):
        for n in (5, 20, 80):
            exact = machine_repairman(n, 5.0, 0.5, c=2)
            bound = closed_loop_equilibrium(n, 5.0, 0.5, c=2)
            assert bound.throughput >= exact.throughput - 1e-9


class TestDESAgreesWithTheory:
    """The simulation kernel reproduces the machine-repairman closed form."""

    def _simulate(self, n_clients, think_s, service_rate, c,
                  horizon=200000.0, seed=1):
        sim = Simulator()
        rng = RngRegistry(seed)
        server = Server(sim, capacity=c)
        completions = []

        def client(i):
            crng = rng.stream(f"c{i}")
            while sim.now < horizon:
                yield float(crng.exponential(think_s))
                t0 = sim.now
                yield server.acquire()
                try:
                    yield float(crng.exponential(1.0 / service_rate))
                finally:
                    server.release()
                completions.append(sim.now - t0)

        for i in range(n_clients):
            sim.process(client(i))
        sim.run(until=horizon)
        throughput = len(completions) / horizon
        response = sum(completions) / len(completions)
        return throughput, response

    @pytest.mark.parametrize("n,think,mu,c", [
        (5, 10.0, 0.5, 1),    # light load
        (30, 2.0, 0.5, 1),    # saturated single server
        (20, 5.0, 0.4, 3),    # multi-server middle regime
    ])
    def test_throughput_and_response_match(self, n, think, mu, c):
        sim_thr, sim_resp = self._simulate(n, think, mu, c)
        theory = machine_repairman(n, think, mu, c)
        assert sim_thr == pytest.approx(theory.throughput, rel=0.05)
        assert sim_resp == pytest.approx(theory.response_s, rel=0.08)


@given(n=st.integers(1, 60),
       think=st.floats(0.5, 50.0, allow_nan=False),
       mu=st.floats(0.05, 5.0, allow_nan=False),
       c=st.integers(1, 8))
@settings(max_examples=100, deadline=None)
def test_machine_repairman_sanity(n, think, mu, c):
    m = machine_repairman(n, think, mu, c)
    assert 0 < m.throughput <= c * mu + 1e-9
    assert m.throughput <= n / think + 1e-9 or True  # cycle bound
    assert m.response_s >= 1.0 / mu - 1e-9
    assert 0 <= m.utilization <= 1 + 1e-9
    assert 0 <= m.mean_in_system <= n + 1e-9
