"""Smoke tests for the scale benchmark harness (benchmarks/bench_scale.py).

Committed BENCH numbers must be reproducible from any invoking shell:
measured cells run in subprocesses with a *pinned* environment
(``PYTHONHASHSEED=0``, repo ``REPRO_*`` toggles stripped).  These tests
gate that pinning plus the shard-axis plumbing (digest consistency,
speedup-floor gate) without paying for a real sweep.
"""

import json

import pytest

from benchmarks import bench_scale


class TestCellEnv:
    def test_pins_hashseed_and_strips_repro_toggles(self, monkeypatch):
        monkeypatch.setenv("PYTHONHASHSEED", "random")
        monkeypatch.setenv("REPRO_BENCH_DURATION", "60")
        monkeypatch.setenv("REPRO_CHAOS_DURATION", "60")
        monkeypatch.setenv("UNRELATED", "kept")
        env = bench_scale._cell_env()
        assert env["PYTHONHASHSEED"] == "0"
        assert not any(k.startswith("REPRO_") for k in env)
        assert env["UNRELATED"] == "kept"

    def test_isolated_cells_run_under_pinned_env(self, monkeypatch):
        """The subprocess entry must receive exactly ``_cell_env()``."""
        monkeypatch.setenv("REPRO_BENCH_DURATION", "9999")
        seen = {}

        class _Proc:
            returncode = 0
            stdout = json.dumps({"ok": True}) + "\n"
            stderr = ""

        def fake_run(cmd, capture_output, text, env):
            seen["cmd"] = cmd
            seen["env"] = env
            return _Proc()

        monkeypatch.setattr(bench_scale.subprocess, "run", fake_run)
        out = bench_scale._run_cell_isolated(
            dict(multiplier=1, dps=3, duration_s=60.0, optimized=True))
        assert out == {"ok": True}
        assert seen["env"]["PYTHONHASHSEED"] == "0"
        assert "REPRO_BENCH_DURATION" not in seen["env"]
        assert "--cell" in seen["cmd"]


class TestShardAxis:
    def test_shard_cell_reports_digest_and_rates(self):
        row = bench_scale.run_shard_cell(
            multiplier=1, dps=3, duration_s=60.0, n_shards=3)
        assert row["n_shards"] == 3 and row["mode"] == "lockstep"
        assert row["events"] > 0 and row["events_per_s"] > 0
        assert len(row["digest"]) == 8  # crc32 hex

    def test_shard_gate_accepts_consistent_fast_rows(self):
        rows = [{"multiplier": 10, "dps": 10, "digest_consistent": True,
                 "speedup_vs_base": bench_scale.SHARD4_SPEEDUP_FLOOR + 1}]
        ok, problems = bench_scale.shard_gate(rows)
        assert ok and problems == []

    def test_shard_gate_rejects_divergence_and_slow_rows(self):
        rows = [
            {"multiplier": 10, "dps": 10, "digest_consistent": False,
             "speedup_vs_base": 99.0},
            {"multiplier": 10, "dps": 10, "digest_consistent": True,
             "speedup_vs_base": 0.5},
        ]
        ok, problems = bench_scale.shard_gate(rows)
        assert not ok
        assert len(problems) == 2
