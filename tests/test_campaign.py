"""Resumable campaign runner tests (repro.experiments.campaign)."""

import json
import os

import pytest

from repro.experiments.campaign import (
    CAMPAIGN_PRESETS,
    campaign_configs,
    campaign_manifest,
    run_campaign,
    _attach_cell_dirs,
    _cell_worker,
)
from repro.experiments.configs import smoke_config
from repro.experiments.parallel import run_parallel, summarize, summary_digest
from repro.experiments.runner import (abort_experiment, build_experiment,
                                      run_experiment)


def _cells(duration_s=120.0):
    return [smoke_config(decision_points=k, n_clients=4,
                         duration_s=duration_s, name=f"cell-{k}dp")
            for k in (1, 2)]


class TestPresets:
    def test_known_presets(self):
        for preset in CAMPAIGN_PRESETS:
            configs = campaign_configs(preset, duration_s=60.0)
            assert configs
            assert len({c.name for c in configs}) == len(configs)

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown campaign preset"):
            campaign_configs("nope")


class TestRunCampaign:
    def test_aggregate_shape_and_files(self, tmp_path):
        out = str(tmp_path)
        report = run_campaign(_cells(), out, checkpoint_every_s=40.0,
                              max_workers=1)
        assert report["bench"] == "campaign"
        assert report["pass_campaign"]
        assert [r["name"] for r in report["cells"]] == \
            ["cell-1dp", "cell-2dp"]
        on_disk = json.load(open(os.path.join(out, "aggregate.json")))
        assert on_disk == report
        manifest = json.load(open(os.path.join(out, "manifest.json")))
        assert manifest["completed"] == ["cell-1dp", "cell-2dp"]
        for name in ("cell-1dp", "cell-2dp"):
            cell = os.path.join(out, "cells", name)
            assert os.path.exists(os.path.join(cell, "result.json"))
            assert os.listdir(os.path.join(cell, "checkpoints"))

    def test_records_match_plain_runs(self, tmp_path):
        cells = _cells()
        report = run_campaign(cells, str(tmp_path),
                              checkpoint_every_s=40.0, max_workers=1)
        for config, record in zip(cells, report["cells"]):
            # Checkpointing rides the run but must not change results…
            # except it adds checkpoint tick events, so compare against
            # a checkpointed plain run of the same cell.
            plain = summarize(run_experiment(config.with_(
                checkpoint_every_s=40.0,
                checkpoint_dir=str(tmp_path / "plain" / config.name))))
            assert record["summary_digest"] == summary_digest(plain)
            assert record["n_jobs"] == plain.n_jobs

    def test_relaunch_reuses_cells_and_aggregate_is_identical(
            self, tmp_path):
        out = str(tmp_path)
        first = run_campaign(_cells(), out, checkpoint_every_s=40.0,
                             max_workers=1)
        marker = os.path.join(out, "cells", "cell-1dp", "result.json")
        stamp = os.path.getmtime(marker)
        again = run_campaign(_cells(), out, checkpoint_every_s=40.0,
                             max_workers=1)
        assert again == first
        assert os.path.getmtime(marker) == stamp  # cached, not re-run

    def test_interrupted_cell_resumes_from_checkpoint(self, tmp_path):
        out = str(tmp_path)
        reference = run_campaign(_cells(), out, checkpoint_every_s=40.0,
                                 max_workers=1)
        agg_ref = open(os.path.join(out, "aggregate.json")).read()
        # Simulate a SIGTERM'd cell: completed marker gone, checkpoints
        # survive.
        cell = os.path.join(out, "cells", "cell-2dp")
        os.remove(os.path.join(cell, "result.json"))
        manifest = campaign_manifest(out, _cells())
        assert manifest["resumable"] == ["cell-2dp"]
        relaunch = run_campaign(_cells(), out, checkpoint_every_s=40.0,
                                max_workers=1)
        assert relaunch == reference
        assert open(os.path.join(out, "aggregate.json")).read() == agg_ref
        record = json.load(open(os.path.join(cell, "result.json")))
        assert record["resumed_from"]  # provenance survives in the cell

    def test_duplicate_names_rejected(self, tmp_path):
        cells = [smoke_config(name="dup"), smoke_config(name="dup")]
        with pytest.raises(ValueError, match="unique"):
            run_campaign(cells, str(tmp_path))

    def test_empty_campaign_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="at least one"):
            run_campaign([], str(tmp_path))


# -- retry/checkpoint interaction (satellite 2) --------------------------
# The worker must be module-level so run_parallel's pools can pickle it;
# fork (asserted in the test) carries module globals into workers.

def _die_once_worker(config):
    """Kills its first worker process mid-cell — after checkpoints are
    on disk — then defers to the real campaign worker on retry."""
    marker = os.path.join(os.path.dirname(config.checkpoint_dir),
                          "died-once")
    if config.name == "cell-2dp" and not os.path.exists(marker):
        built = build_experiment(config)
        built.sim.run(until=config.duration_s * 0.6)
        abort_experiment(built, RuntimeError("simulated worker death"))
        open(marker, "w").write("x")
        os._exit(1)
    return _cell_worker(config)


class TestRetryResumesFromOwnCheckpoint:
    def test_retried_cell_resumes_not_reruns(self, tmp_path):
        import multiprocessing
        assert "fork" in multiprocessing.get_all_start_methods()
        out = str(tmp_path)
        cells = _cells()
        prepared = _attach_cell_dirs(cells, out, checkpoint_every_s=40.0)
        results = run_parallel(prepared, max_workers=2,
                               worker=_die_once_worker)
        assert all(isinstance(r, dict) for r in results), results
        record = {r["name"]: r for r in results}["cell-2dp"]
        # The retry generation found the dead worker's checkpoints and
        # resumed instead of re-running from scratch…
        assert record["resumed_from"]
        # …and resumed to the exact digest of an uninterrupted run.
        clean = summarize(run_experiment(prepared[1]))
        assert record["summary_digest"] == summary_digest(clean)


class TestFailedCellInAggregate:
    def test_permanent_failure_reported_not_raised(self, tmp_path,
                                                   monkeypatch):
        import repro.experiments.campaign as camp

        def fake_run_parallel(configs, max_workers=None, worker=None):
            from repro.experiments.parallel import FailedCell
            out = [worker(c) for c in configs[:-1]]
            out.append(FailedCell(config=configs[-1],
                                  error="worker process died (twice)"))
            return out

        monkeypatch.setattr(camp, "run_parallel", fake_run_parallel)
        report = run_campaign(_cells(), str(tmp_path),
                              checkpoint_every_s=40.0, max_workers=2)
        assert not report["pass_campaign"]
        assert report["failed"] == ["cell-2dp"]
        assert [r["name"] for r in report["cells"]] == ["cell-1dp"]
