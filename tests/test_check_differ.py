"""Integration tests for differential replay (`digruber diff`).

Each named pair is an equivalence claim made by an earlier change;
these smokes hold every claim to "zero divergence, or name the first
divergent event".  Durations are short — the point is exercising the
machinery, not soak coverage (CI runs longer pairs).
"""

import pytest

from repro.check import PAIRS, run_pair
from repro.check.differ import _diff_config, _run_journaled


class TestPairsIdentical:
    def test_fast_paths_pair_identical(self):
        report = run_pair("fast-paths", duration_s=120.0)
        assert report.identical, report.describe()
        # A silent no-op journal would also "match"; require real events.
        assert len(report.journal_a) > 50
        assert report.journal_a.digest == report.journal_b.digest

    def test_batch_dispatch_pair_identical(self):
        report = run_pair("batch-dispatch", duration_s=120.0)
        assert report.identical, report.describe()
        assert len(report.journal_a) > 50
        assert report.journal_a.digest == report.journal_b.digest

    def test_vectorized_sites_pair_identical(self):
        report = run_pair("vectorized-sites", duration_s=120.0)
        assert report.identical, report.describe()
        assert len(report.journal_a) > 50
        assert report.journal_a.digest == report.journal_b.digest

    def test_indexed_view_pair_identical(self):
        report = run_pair("indexed-view", duration_s=120.0)
        assert report.identical, report.describe()
        assert len(report.journal_a) > 50

    def test_spans_pair_identical_with_ctx_only_on_one_side(self):
        report = run_pair("spans", duration_s=120.0)
        assert report.identical, report.describe()
        # Side A runs spans-off, side B spans-on: digests agree even
        # though only B's entries carry span context.
        assert not any(e.ctx for e in report.journal_a.entries)
        assert any(e.ctx for e in report.journal_b.entries)

    def test_workers_pair_identical(self):
        # Satellite: run_parallel with 1 worker vs 4 workers produces
        # identical per-run summary digests, in deterministic order.
        report = run_pair("workers", duration_s=90.0)
        assert report.identical, report.describe()
        kinds = [e.kind for e in report.journal_a.entries]
        assert kinds and set(kinds) == {"run.summary"}
        names_a = [e.detail.split("|")[0] for e in report.journal_a.entries]
        names_b = [e.detail.split("|")[0] for e in report.journal_b.entries]
        assert names_a == names_b  # result order == input order

    def test_delta_sync_pair_converges(self):
        report = run_pair("delta-sync", duration_s=160.0)
        assert report.identical, report.describe()
        assert all(e.kind == "dp.final" for e in report.journal_a.entries)
        assert len(report.journal_a) == 4  # one terminal digest per DP


class TestInjection:
    def test_injected_divergence_is_named_with_span_context(self):
        report = run_pair("fast-paths", duration_s=120.0, inject=40)
        assert not report.identical
        ea, eb = report.divergence
        assert ea.index == eb.index == 40
        assert eb.detail.endswith("|INJECTED")
        # _diff_config runs spans-on, so the report names the causal
        # span of the first divergent event.
        text = report.describe()
        assert "DIVERGED" in text
        assert "#40" in text

    def test_identical_report_text(self):
        report = run_pair("delta-sync", duration_s=160.0)
        assert "IDENTICAL" in report.describe()


class TestApi:
    def test_unknown_pair_rejected(self):
        with pytest.raises(ValueError, match="unknown pair"):
            run_pair("no-such-pair")

    def test_pair_registry_matches_cli(self):
        assert sorted(PAIRS) == ["autoscale-frozen", "batch-dispatch",
                                 "delta-sync", "fast-paths", "indexed-view",
                                 "resume", "resume-sharded",
                                 "sharded-2", "sharded-4", "spans",
                                 "telemetry", "vectorized-sites", "workers"]
        # The CLI's --pair choices must stay in lockstep with the
        # registry (an unlisted pair is unreachable from the shell).
        from repro.cli import build_parser
        parser = build_parser()
        for pair in sorted(PAIRS):
            args = parser.parse_args(["diff", "--pair", pair])
            assert args.pair == pair

    def test_same_config_reruns_identically(self):
        # The foundation the pairs stand on: the journaled run itself
        # is deterministic.
        a = _run_journaled(_diff_config(90.0, seed=3))
        b = _run_journaled(_diff_config(90.0, seed=3))
        assert a.digest == b.digest and len(a) == len(b) > 0

    def test_seed_changes_the_run(self):
        a = _run_journaled(_diff_config(90.0, seed=3))
        b = _run_journaled(_diff_config(90.0, seed=4))
        assert a.digest != b.digest
