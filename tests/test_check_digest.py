"""Tests for the chained event digest and divergence bisection."""

import pytest

from repro.check import EventJournal, first_divergence
from repro.check.differ import inject_divergence


def journal_of(events):
    j = EventJournal()
    for time, kind, detail in events:
        j.record(time, kind, detail)
    return j


EVENTS = [(float(i), "evt", f"payload-{i}") for i in range(50)]


class TestJournal:
    def test_digest_chains(self):
        a = journal_of(EVENTS)
        b = journal_of(EVENTS)
        assert a.digest == b.digest
        assert len(a) == 50

    def test_digest_depends_on_order(self):
        a = journal_of(EVENTS)
        b = journal_of(list(reversed(EVENTS)))
        assert a.digest != b.digest

    def test_empty_digest_is_zero(self):
        assert EventJournal().digest == 0
        assert EventJournal().crc_at(0) == 0

    def test_crc_at_matches_prefix_replay(self):
        full = journal_of(EVENTS)
        for n in (0, 1, 7, 25, 50):
            prefix = journal_of(EVENTS[:n])
            assert full.crc_at(n) == prefix.digest

    def test_ctx_excluded_from_digest(self):
        a = EventJournal()
        a.record(1.0, "evt", "x", ctx="trace=abc span=def")
        b = EventJournal()
        b.record(1.0, "evt", "x")
        assert a.digest == b.digest

    def test_ctx_surfaces_in_describe(self):
        j = EventJournal()
        e = j.record(1.0, "evt", "x", ctx="trace=abc span=def")
        assert "[trace=abc span=def]" in e.describe()


class TestFirstDivergence:
    def test_identical_returns_none(self):
        assert first_divergence(journal_of(EVENTS), journal_of(EVENTS)) is None

    def test_both_empty(self):
        assert first_divergence(EventJournal(), EventJournal()) is None

    def test_mid_divergence_located_exactly(self):
        a = journal_of(EVENTS)
        mutated = list(EVENTS)
        mutated[23] = (23.0, "evt", "corrupted")
        b = journal_of(mutated)
        ea, eb = first_divergence(a, b)
        assert ea.index == eb.index == 23
        assert ea.detail == "payload-23"
        assert eb.detail == "corrupted"

    def test_divergence_at_first_entry(self):
        a = journal_of(EVENTS)
        mutated = [(0.0, "evt", "different")] + EVENTS[1:]
        ea, eb = first_divergence(a, journal_of(mutated))
        assert ea.index == 0 and eb.detail == "different"

    def test_divergence_at_last_entry(self):
        a = journal_of(EVENTS)
        mutated = EVENTS[:-1] + [(49.0, "evt", "tail")]
        ea, eb = first_divergence(a, journal_of(mutated))
        assert ea.index == 49 and eb.detail == "tail"

    def test_strict_prefix_b_shorter(self):
        a = journal_of(EVENTS)
        b = journal_of(EVENTS[:30])
        ea, eb = first_divergence(a, b)
        assert eb is None
        assert ea.index == 30

    def test_strict_prefix_a_shorter(self):
        ea, eb = first_divergence(journal_of(EVENTS[:10]),
                                  journal_of(EVENTS))
        assert ea is None
        assert eb.index == 10

    def test_time_differences_diverge(self):
        # Same payload at a different simulated time is a divergence:
        # event *timing* is part of run identity.
        a = journal_of([(1.0, "evt", "x")])
        b = journal_of([(1.5, "evt", "x")])
        assert first_divergence(a, b) is not None


class TestInjectDivergence:
    def test_injection_diverges_at_index(self):
        a = journal_of(EVENTS)
        b = inject_divergence(journal_of(EVENTS), 17)
        ea, eb = first_divergence(a, b)
        assert ea.index == eb.index == 17
        assert eb.detail.endswith("|INJECTED")

    def test_injection_preserves_length_and_ctx(self):
        src = EventJournal()
        for t, k, d in EVENTS:
            src.record(t, k, d, ctx=f"span-{int(t)}")
        b = inject_divergence(src, 5)
        assert len(b) == len(src)
        assert b.entries[5].ctx == "span-5"

    def test_injection_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            inject_divergence(journal_of(EVENTS), 5000)
