"""Tests for the online invariant checker (`run --check`)."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.check import InvariantChecker, InvariantViolation
from repro.core import DecisionPoint, DIGruberDeployment
from repro.grid import Cluster, GridBuilder, Job, Site
from repro.net import ConstantLatency, GT3_PROFILE, Network
from repro.sim import RngRegistry, Simulator
from repro.usla import Agreement, AgreementContext, ServiceTerm
from repro.usla.fairshare import FairShareRule, ShareKind


@pytest.fixture
def sim():
    return Simulator()


def make_site(sim, cpus=8, name="s0"):
    return Site(sim, name, [Cluster(f"{name}-c0", cpus)])


def make_job(cpus=1, duration=50.0, vo="vo0"):
    return Job(vo=vo, group="g0", user="u0", cpus=cpus, duration_s=duration)


def rules_of(violations):
    return [v.rule for v in violations]


class TestWiring:
    def test_bad_interval_rejected(self, sim):
        with pytest.raises(ValueError):
            InvariantChecker(sim, interval_s=0.0)

    def test_double_install_rejected(self, sim):
        c = InvariantChecker(sim)
        c.install()
        with pytest.raises(RuntimeError):
            c.install()

    def test_install_runs_periodic_checkpoints(self, sim):
        c = InvariantChecker(sim, interval_s=10.0)
        c.install()
        sim.run(until=45.0)
        assert c.checks_run == 4  # t=10, 20, 30, 40
        assert c.violations == []

    def test_uninstall_stops_checkpoints(self, sim):
        c = InvariantChecker(sim, interval_s=10.0)
        c.install()
        sim.run(until=25.0)
        c.uninstall()
        sim.run(until=100.0)
        assert c.checks_run == 2


class TestSiteInvariants:
    def test_clean_site_passes(self, sim):
        c = InvariantChecker(sim)
        site = make_site(sim)
        c.watch_site(site)
        site.submit(make_job(cpus=2))
        site.submit(make_job(cpus=2, duration=200.0))
        sim.run(until=100.0)
        assert c.check() == []

    def test_busy_sum_violation_detected(self, sim):
        c = InvariantChecker(sim)
        site = make_site(sim)
        c.watch_site(site)
        site.submit(make_job(cpus=2, duration=500.0))
        sim.run(until=10.0)
        site.busy_cpus += 1  # corrupt: no running job holds this CPU
        found = rules_of(c.check())
        assert "site.busy_sum" in found

    def test_busy_bounds_violation_detected(self, sim):
        c = InvariantChecker(sim)
        site = make_site(sim, cpus=2)
        c.watch_site(site)
        site.busy_cpus = -1
        assert "site.busy_bounds" in rules_of(c.check())

    def test_job_conservation_violation_detected(self, sim):
        c = InvariantChecker(sim)
        site = make_site(sim)
        c.watch_site(site)
        site.submit(make_job())
        sim.run()
        site.jobs_completed += 1  # phantom completion
        assert "site.job_conservation" in rules_of(c.check())

    def test_uncredited_cpu_seconds_detected(self, sim):
        # The exact shape of the preemption-accounting bug: CPU-seconds
        # delivered but never credited to any VO.
        c = InvariantChecker(sim)
        site = make_site(sim)
        c.watch_site(site)
        site.submit(make_job(cpus=4, duration=50.0))
        sim.run()
        site.vo_cpu_seconds["vo0"] -= 25.0
        assert "site.cpu_seconds" in rules_of(c.check())

    def test_preempted_job_accounting_passes(self, sim):
        c = InvariantChecker(sim)
        site = make_site(sim)
        c.watch_site(site)
        job = make_job(cpus=4, duration=100.0)
        site.submit(job)
        sim.run(until=30.0)
        site.fail_running_job(job.jid)
        sim.run(until=60.0)
        assert c.check() == []


class TestKernelInvariants:
    def test_clock_monotone_rule(self, sim):
        c = InvariantChecker(sim)
        sim.schedule(10.0, lambda: None)
        sim.run()
        c._last_now = sim.now + 5.0  # simulate a clock that jumped back
        assert "kernel.clock_monotone" in rules_of(c.check())

    def test_heap_dead_rule(self, sim):
        c = InvariantChecker(sim)
        sim._dead = len(sim._heap) + 7
        assert "kernel.heap_dead" in rules_of(c.check())


class TestClientInvariants:
    def _client(self, n_jobs=2, duration=50.0, run_for=None):
        jobs = []
        for i in range(n_jobs):
            j = make_job(duration=duration)
            j.mark_dispatched(0.0, "s0")
            j.mark_running(0.0)
            j.mark_completed(duration if run_for is None else run_for)
            jobs.append(j)
        return SimpleNamespace(
            node_id="h0", jobs=jobs, busy=False, backlog_len=0,
            n_handled=n_jobs, n_fallback_timeout=0, n_abandoned=0,
            n_retries=0, backlog_peak=0,
            workload=SimpleNamespace(
                arrivals=np.zeros(n_jobs, dtype=float)))

    def test_clean_client_passes(self, sim):
        c = InvariantChecker(sim)
        c.watch_client(self._client())
        assert c.check() == []

    def test_job_conservation_violation(self, sim):
        c = InvariantChecker(sim)
        client = self._client()
        client.n_handled -= 2  # two jobs unaccounted for
        c.watch_client(client)
        assert "client.job_conservation" in rules_of(c.check())

    def test_truncated_execution_detected(self, sim):
        # The stale-completion-timer bug signature: a COMPLETED job
        # whose measured execution time undershoots its duration.
        c = InvariantChecker(sim)
        client = self._client(duration=100.0, run_for=60.0)
        c.watch_client(client)
        assert "client.job_duration" in rules_of(c.check())

    def test_negative_counter_detected(self, sim):
        c = InvariantChecker(sim)
        client = self._client()
        client.n_retries = -1
        c.watch_client(client)
        assert "client.counter_bounds" in rules_of(c.check())


def make_dp(sim, rng, net, grid, node_id="dp0", **kw):
    defaults = dict(monitor_interval_s=600.0, sync_interval_s=60.0)
    defaults.update(kw)
    return DecisionPoint(sim, net, node_id, grid, GT3_PROFILE,
                         rng.stream(f"dp:{node_id}"), **defaults)


@pytest.fixture
def env():
    sim = Simulator()
    rng = RngRegistry(11)
    net = Network(sim, ConstantLatency(0.05))
    grid = GridBuilder(sim, rng.stream("grid")).uniform(
        n_sites=4, cpus_per_site=16)
    return sim, rng, net, grid


class TestDecisionPointInvariants:
    def test_clean_dp_passes(self, env):
        sim, rng, net, grid = env
        dp = make_dp(sim, rng, net, grid)
        c = InvariantChecker(sim)
        c.watch_dp(dp)
        dp.engine.record_local_dispatch(site=grid.site_names[0], vo="vo0",
                                        cpus=2, now=0.0)
        assert c.check() == []

    def test_watermark_bound_violation(self, env):
        sim, rng, net, grid = env
        dp = make_dp(sim, rng, net, grid)
        c = InvariantChecker(sim)
        c.watch_dp(dp)
        dp.sync._peer_marks["dp9"] = 999  # beyond anything learned
        assert "sync.watermark_bound" in rules_of(c.check())

    def test_watermark_monotone_violation(self, env):
        sim, rng, net, grid = env
        dp = make_dp(sim, rng, net, grid)
        c = InvariantChecker(sim)
        c.watch_dp(dp)
        c._last_marks[("dp0", "dp9")] = 5
        dp.sync._peer_marks["dp9"] = 0
        assert "sync.watermark_monotone" in rules_of(c.check())

    def test_policy_cache_incoherence_detected(self, env):
        sim, rng, net, grid = env
        dp = make_dp(sim, rng, net, grid, usla_aware=True)
        site = grid.site_names[0]
        dp.engine.usla_store.publish(Agreement(
            name="a1", context=AgreementContext(provider=site,
                                                consumer="vo0"),
            terms=[ServiceTerm("cpu-share",
                               FairShareRule(site, "vo0", 40.0,
                                             ShareKind.UPPER_LIMIT))]))
        dp.engine._policy()  # build + cache the flattened policy
        c = InvariantChecker(sim)
        c.watch_dp(dp)
        assert c.check() == []
        # Corrupt the cache while leaving the mutation counters in
        # agreement: exactly the state the self-invalidation cannot see.
        from repro.usla.policy import PolicyEngine
        dp.engine._policy_cache = PolicyEngine()
        assert "usla.policy_coherence" in rules_of(c.check())

    def test_deployment_watch_is_live(self, env):
        # Decision points added mid-run by the reconfiguration observer
        # must be checked too; a construction-time snapshot misses them.
        sim, rng, net, grid = env
        dep = DIGruberDeployment(sim, net, grid, GT3_PROFILE, rng,
                                 n_decision_points=1)
        c = InvariantChecker(sim)
        c.watch_deployment(dep)
        assert c.check() == []
        added = dep.add_decision_point()
        added.sync._peer_marks["dpX"] = 123
        found = c.check()
        assert "sync.watermark_bound" in rules_of(found)
        assert found[0].subject == str(added.node_id)


class TestReporting:
    def test_strict_mode_raises(self, sim):
        c = InvariantChecker(sim, strict=True)
        site = make_site(sim)
        c.watch_site(site)
        site.busy_cpus = -3
        with pytest.raises(InvariantViolation, match="site.busy_bounds"):
            c.check()

    def test_nonstrict_counts_and_traces(self, sim):
        c = InvariantChecker(sim)
        site = make_site(sim)
        c.watch_site(site)
        site.busy_cpus = -3
        c.check()
        assert len(c.violations) >= 1
        assert sim.metrics.counter("check.violations").value >= 1

    def test_summary_formats(self, sim):
        c = InvariantChecker(sim)
        c.check()
        assert "1 checkpoint(s), OK" in c.summary()
        site = make_site(sim)
        c.watch_site(site)
        site.busy_cpus = -3
        c.check()
        assert "violation(s)" in c.summary()
        assert "site.busy_bounds" in c.summary()


class TestCheckedExperiment:
    def test_smoke_run_has_zero_violations_strict(self):
        # The acceptance bar: a canonical smoke run under the strict
        # checker completes with every invariant holding throughout.
        from repro.experiments.configs import smoke_config
        from repro.experiments.runner import run_experiment
        config = smoke_config(decision_points=3, n_clients=10,
                              duration_s=300.0, sync_interval_s=30.0,
                              check_enabled=True, check_strict=True,
                              check_interval_s=30.0)
        result = run_experiment(config)
        assert result.checker is not None
        assert result.checker.violations == []
        assert result.checker.checks_run >= 10
        assert result.n_jobs > 0

    def test_checker_off_by_default(self):
        from repro.experiments.configs import smoke_config
        from repro.experiments.runner import run_experiment
        result = run_experiment(smoke_config(duration_s=60.0))
        assert result.checker is None
