"""Tests for the AST determinism lint (`repro.check.lint`)."""

from pathlib import Path

import pytest

from repro.check.lint import lint_paths, lint_source, main


def rules(source):
    return [f.rule for f in lint_source(source)]


class TestWallClock:
    def test_time_time_flagged(self):
        assert rules("import time\nt = time.time()\n") == ["wall-clock"]

    def test_monotonic_and_perf_counter_flagged(self):
        src = "import time\na = time.monotonic()\nb = time.perf_counter()\n"
        assert rules(src) == ["wall-clock", "wall-clock"]

    def test_datetime_now_flagged(self):
        src = "import datetime\nd = datetime.datetime.now()\n"
        assert rules(src) == ["wall-clock"]

    def test_utcnow_flagged(self):
        src = "from datetime import datetime\nd = datetime.utcnow()\n"
        assert rules(src) == ["wall-clock"]

    def test_sim_clock_not_flagged(self):
        # The simulated clock is the deterministic alternative.
        assert rules("now = sim.now\nt = self.sim.now\n") == []


class TestAmbientRandom:
    def test_import_random_flagged(self):
        assert rules("import random\n") == ["ambient-random"]

    def test_from_random_import_flagged(self):
        assert rules("from random import choice\n") == ["ambient-random"]

    def test_unrelated_import_ok(self):
        assert rules("import itertools\nfrom math import sqrt\n") == []


class TestUnseededNumpy:
    def test_bare_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules(src) == ["unseeded-numpy"]

    def test_seeded_default_rng_ok(self):
        src = ("import numpy as np\n"
               "a = np.random.default_rng(42)\n"
               "b = np.random.default_rng(seed=7)\n")
        assert rules(src) == []

    def test_np_random_seed_flagged(self):
        src = "import numpy as np\nnp.random.seed(1)\n"
        assert rules(src) == ["unseeded-numpy"]

    def test_module_level_draw_flagged(self):
        src = "import numpy as np\nx = np.random.uniform(0, 1)\n"
        assert rules(src) == ["unseeded-numpy"]

    def test_generator_machinery_ok(self):
        src = ("import numpy as np\n"
               "g = np.random.Generator(np.random.PCG64(3))\n"
               "s = np.random.SeedSequence(9)\n")
        assert rules(src) == []

    def test_instance_draw_ok(self):
        # Draws on an explicit Generator instance are the sanctioned
        # pattern (rng.uniform is not numpy.random.uniform).
        assert rules("x = rng.uniform(0, 1)\n") == []


class TestSetIteration:
    def test_for_over_set_call_flagged(self):
        assert rules("for x in set(items):\n    use(x)\n") == \
            ["set-iteration"]

    def test_for_over_set_literal_flagged(self):
        assert rules("for x in {1, 2, 3}:\n    use(x)\n") == \
            ["set-iteration"]

    def test_comprehension_over_set_flagged(self):
        assert rules("out = [f(x) for x in frozenset(items)]\n") == \
            ["set-iteration"]

    def test_set_algebra_flagged(self):
        src = "for x in set(a) | set(b):\n    use(x)\n"
        assert rules(src) == ["set-iteration"]

    def test_sorted_set_ok(self):
        assert rules("for x in sorted(set(items)):\n    use(x)\n") == []

    def test_list_iteration_ok(self):
        assert rules("for x in list(items):\n    use(x)\n") == []

    def test_plain_name_not_flagged(self):
        # A bare name might be a set, but flagging every name would
        # drown the signal; the lint targets the syntactically certain.
        assert rules("for x in items:\n    use(x)\n") == []


class TestSuppression:
    def test_marker_suppresses(self):
        src = "import time\nt = time.time()  # det: ok\n"
        assert rules(src) == []

    def test_marker_is_per_line(self):
        src = ("import time\n"
               "a = time.time()  # det: ok\n"
               "b = time.time()\n")
        assert rules(src) == ["wall-clock"]


class TestPaths:
    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "bad.py").write_text("import random\n")
        (tmp_path / "good.py").write_text("x = 1\n")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "worse.py").write_text("import time\nt = time.time()\n")
        findings = lint_paths([str(tmp_path)])
        assert sorted(f.rule for f in findings) == \
            ["ambient-random", "wall-clock"]

    def test_single_file(self, tmp_path):
        f = tmp_path / "one.py"
        f.write_text("from random import random\n")
        assert [x.rule for x in lint_paths([str(f)])] == ["ambient-random"]

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "ambient-random" in out

    def test_finding_str_is_clickable(self):
        f = lint_source("import random\n", path="src/x.py")[0]
        assert str(f).startswith("src/x.py:1: [ambient-random]")


class TestRepoIsClean:
    def test_simulation_package_has_zero_findings(self):
        """The CI gate in test form: src/repro stays determinism-clean."""
        pkg = Path(__file__).resolve().parents[1] / "src" / "repro"
        findings = lint_paths([str(pkg)])
        assert findings == [], "\n".join(str(f) for f in findings)
