"""Tests for the ``digruber`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.command == "quickstart"

    def test_scalability_defaults(self):
        args = build_parser().parse_args(["scalability"])
        assert args.profile == "gt3"
        assert args.dps == [1, 3, 10]

    def test_scalability_overrides(self):
        args = build_parser().parse_args(
            ["scalability", "--profile", "gt4", "--dps", "1", "5",
             "--duration", "600"])
        assert args.profile == "gt4" and args.dps == [1, 5]
        assert args.duration == 600.0

    def test_accuracy_intervals(self):
        args = build_parser().parse_args(
            ["accuracy", "--intervals", "2", "8"])
        assert args.intervals == [2.0, 8.0]

    def test_bad_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--profile", "gt5"])

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "--dps", "4", "--clients", "10", "--topology", "ring",
             "--selector", "random"])
        assert (args.dps, args.clients, args.topology, args.selector) == \
            (4, 10, "ring", "random")

    def test_report_options(self):
        args = build_parser().parse_args(
            ["report", "--duration", "600", "--out", "r.md"])
        assert args.duration == 600.0 and args.out == "r.md"


class TestExecution:
    def test_run_command_executes(self, capsys):
        rc = main(["run", "--dps", "1", "--clients", "4", "--sites", "10",
                   "--cpus", "500", "--duration", "120"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "DiPerF" in out and "requests=" in out

    def test_grubsim_command_executes(self, capsys):
        rc = main(["grubsim", "--duration", "120"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "GRUB-SIM" in out


FIXTURE = "tests/fixtures/spans_smoke.jsonl"


class TestTraceCommand:
    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_trace_sample_validated(self):
        with pytest.raises(SystemExit):
            main(["run", "--duration", "60", "--trace-sample", "0"])

    def test_analyze(self, capsys):
        rc = main(["trace", "analyze", FIXTURE])
        out = capsys.readouterr().out
        assert rc == 0
        assert "traces=" in out and "decide staleness_s" in out

    def test_critical_path(self, capsys):
        rc = main(["trace", "critical-path", FIXTURE, "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "job 1 trace" in out and "staleness_s=" in out
        # The full causal chain renders submit through site queue.
        for name in ("submit", "brokering", "decide", "dispatch", "queue"):
            assert name in out

    def test_slowest(self, capsys):
        rc = main(["trace", "slowest", FIXTURE, "-n", "3"])
        out = capsys.readouterr().out
        assert rc == 0 and "total_s" in out

    def test_export_chrome(self, tmp_path, capsys):
        import json
        out_path = tmp_path / "chrome.json"
        rc = main(["trace", "export-chrome", FIXTURE, str(out_path)])
        assert rc == 0
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        assert {ev["ph"] for ev in doc["traceEvents"]} == {"M", "X"}

    def test_run_with_trace_spans_writes_jsonl(self, tmp_path, capsys):
        import json
        path = tmp_path / "spans.jsonl"
        rc = main(["run", "--dps", "1", "--clients", "2", "--sites", "4",
                   "--cpus", "200", "--duration", "120",
                   "--trace-spans", str(path)])
        out = capsys.readouterr().out
        assert rc == 0 and "spans written" in out
        spans = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert spans and {"submit", "brokering"} <= {s["name"] for s in spans}


TIMELINE_FIXTURE = "tests/fixtures/timeline_10x_diurnal.jsonl"
FLIGHT_FIXTURE = "tests/fixtures/flight_smoke.json"


class TestTopCommand:
    def test_replay_renders_committed_diurnal_timeline(self, capsys):
        rc = main(["top", TIMELINE_FIXTURE, "--replay", "--once"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "digruber top — timeline-10x-diurnal" in out
        assert "DP" in out and "dp4" in out  # fleet grew to 5 DPs
        assert "scale-up" in out            # autoscale events surfaced

    def test_replay_max_frames(self, capsys):
        rc = main(["top", TIMELINE_FIXTURE, "--max-frames", "2"])
        out = capsys.readouterr().out
        assert rc == 0 and out.count("digruber top") == 2

    def test_empty_timeline_exits_nonzero(self, tmp_path, capsys):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        assert main(["top", str(p), "--once"]) == 1

    def test_run_telemetry_then_top(self, tmp_path, capsys):
        path = tmp_path / "timeline.jsonl"
        rc = main(["run", "--dps", "1", "--clients", "2", "--sites", "4",
                   "--cpus", "200", "--duration", "120",
                   "--telemetry", str(path)])
        assert rc == 0
        assert "timeline" in capsys.readouterr().out
        rc = main(["top", str(path), "--once"])
        out = capsys.readouterr().out
        assert rc == 0 and "grid   util" in out


class TestPostmortemCommand:
    def test_postmortem_parses_committed_flight_dump(self, capsys):
        rc = main(["postmortem", FLIGHT_FIXTURE])
        out = capsys.readouterr().out
        assert rc == 0
        assert "postmortem: flight-smoke" in out
        assert "reason: strict-check" in out
        assert "site.busy_sum" in out

    def test_postmortem_rejects_non_flight_json(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text('{"nope": 1}')
        with pytest.raises(SystemExit):
            main(["postmortem", str(p)])

    def test_run_flight_dump_on_sharded_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "--duration", "60", "--shards", "2", "--dps", "2",
                  "--flight", str(tmp_path / "f.json")])
