"""Tests for the ``digruber`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.command == "quickstart"

    def test_scalability_defaults(self):
        args = build_parser().parse_args(["scalability"])
        assert args.profile == "gt3"
        assert args.dps == [1, 3, 10]

    def test_scalability_overrides(self):
        args = build_parser().parse_args(
            ["scalability", "--profile", "gt4", "--dps", "1", "5",
             "--duration", "600"])
        assert args.profile == "gt4" and args.dps == [1, 5]
        assert args.duration == 600.0

    def test_accuracy_intervals(self):
        args = build_parser().parse_args(
            ["accuracy", "--intervals", "2", "8"])
        assert args.intervals == [2.0, 8.0]

    def test_bad_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--profile", "gt5"])

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "--dps", "4", "--clients", "10", "--topology", "ring",
             "--selector", "random"])
        assert (args.dps, args.clients, args.topology, args.selector) == \
            (4, 10, "ring", "random")

    def test_report_options(self):
        args = build_parser().parse_args(
            ["report", "--duration", "600", "--out", "r.md"])
        assert args.duration == 600.0 and args.out == "r.md"


class TestExecution:
    def test_run_command_executes(self, capsys):
        rc = main(["run", "--dps", "1", "--clients", "4", "--sites", "10",
                   "--cpus", "500", "--duration", "120"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "DiPerF" in out and "requests=" in out

    def test_grubsim_command_executes(self, capsys):
        rc = main(["grubsim", "--duration", "120"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "GRUB-SIM" in out
