"""Property-based tests for dynamic client placement (repro.control)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.placement import (ConsistentHashPlacement,
                                     LeastLoadedPlacement, make_placement,
                                     migration_bound)

dp_sets = st.integers(min_value=1, max_value=12)
client_counts = st.integers(min_value=1, max_value=120)


def _dps(n):
    return [f"dp{i}" for i in range(n)]


def _clients(k):
    return [f"host{i:03d}" for i in range(k)]


# -- migration bound ---------------------------------------------------------

@given(k=client_counts, n=dp_sets)
def test_migration_bound_is_ceil_k_over_n(k, n):
    assert migration_bound(k, n) == max(1, math.ceil(k / n))


def test_migration_bound_no_dps_is_zero():
    assert migration_bound(10, 0) == 0


# -- consistent hashing ------------------------------------------------------

@given(k=client_counts, n=dp_sets)
@settings(max_examples=50, deadline=None)
def test_consistent_hash_join_moves_at_most_bound(k, n):
    """A single join moves at most ceil(K/N) clients per rebalance step.

    The issue's contract: the bound is *enforced* (voluntary moves are
    truncated), and for a ring a join only claims segments from its
    successors, so the demand itself is small too.
    """
    placement = ConsistentHashPlacement(vnodes=32)
    clients = _clients(k)
    before = placement.assign(clients, _dps(n))
    grown = _dps(n + 1)
    step = placement.rebalance(before, grown)
    bound = migration_bound(k, len(grown))
    assert not step.forced            # nobody was stranded
    assert len(step.moves) <= bound
    # Every voluntary move lands on the ring's true target.
    for client, target in step.moves.items():
        assert target == placement.assign_one(client, grown)


@given(k=client_counts, n=st.integers(min_value=2, max_value=12))
@settings(max_examples=50, deadline=None)
def test_consistent_hash_leave_forces_exactly_the_orphans(k, n):
    """Removing a decision point forces exactly its clients, no others."""
    placement = ConsistentHashPlacement(vnodes=32)
    clients = _clients(k)
    dps = _dps(n)
    before = placement.assign(clients, dps)
    gone = dps[0]
    survivors = dps[1:]
    step = placement.rebalance(before, survivors)
    orphans = {c for c, d in before.items() if d == gone}
    assert set(step.forced) == orphans
    # Minimal disruption: survivors' clients keep their owner.
    for client, target in step.moves.items():
        assert before[client] in survivors  # voluntary ⇒ wasn't orphaned
    for client, target in step.forced.items():
        assert target in survivors


@given(k=client_counts, n=dp_sets)
@settings(max_examples=30, deadline=None)
def test_consistent_hash_is_process_stable(k, n):
    """Two independent ring instances agree on every assignment."""
    a = ConsistentHashPlacement(vnodes=16)
    b = ConsistentHashPlacement(vnodes=16)
    clients, dps = _clients(k), _dps(n)
    assert a.assign(clients, dps) == b.assign(clients, dps)


# -- least-loaded ------------------------------------------------------------

@given(k=client_counts, n=dp_sets, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_least_loaded_deterministic_under_seed_pinning(k, n, seed):
    placement = LeastLoadedPlacement()
    clients, dps = _clients(k), _dps(n)
    a = placement.assign(clients, dps, rng=np.random.default_rng(seed))
    b = placement.assign(clients, dps, rng=np.random.default_rng(seed))
    assert a == b
    # Balanced by construction: counts differ by at most one.
    counts = {d: 0 for d in dps}
    for d in a.values():
        counts[d] += 1
    assert max(counts.values()) - min(counts.values()) <= 1


@given(k=client_counts, n=st.integers(min_value=2, max_value=12),
       seed=st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_least_loaded_rebalance_respects_bound_and_levels(k, n, seed):
    placement = LeastLoadedPlacement()
    clients, dps = _clients(k), _dps(n)
    # Pathological start: everyone piled on one decision point.
    before = {c: dps[0] for c in clients}
    bound = migration_bound(k, n)
    step = placement.rebalance(before, dps, rng=np.random.default_rng(seed))
    assert not step.forced
    assert len(step.moves) <= bound
    # Whatever was withheld is declared, not silently dropped.
    after = dict(before)
    after.update(step.moves)
    counts = {d: 0 for d in dps}
    for d in after.values():
        counts[d] += 1
    residual = max(counts.values()) - min(counts.values()) - 1
    assert step.deferred == max(0, residual)


def test_least_loaded_evacuates_dead_dps_unbounded():
    placement = LeastLoadedPlacement()
    clients = _clients(30)
    before = {c: "dead" for c in clients}
    step = placement.rebalance(before, ["dp0", "dp1"], max_moves=1)
    # Forced moves are exempt from the voluntary bound.
    assert len(step.forced) == 30
    assert set(step.forced.values()) <= {"dp0", "dp1"}


def test_make_placement_rejects_unknown():
    import pytest
    with pytest.raises(ValueError):
        make_placement("nope")
